"""Unit tests for the CaRL parser (repro.carl.parser)."""

from __future__ import annotations

import pytest

from repro.carl.ast import (
    AggregateRule,
    CausalQuery,
    CausalRule,
    Comparison,
    Variable,
)
from repro.carl.errors import ParseError
from repro.carl.parser import parse_program, parse_query, parse_rule
from repro.datasets import TOY_REVIEW_PROGRAM


class TestDeclarations:
    def test_entity(self):
        program = parse_program("ENTITY Person(person);")
        assert len(program.entities) == 1
        assert program.entities[0].name == "Person"
        assert program.entities[0].key == "person"

    def test_relationship(self):
        program = parse_program("RELATIONSHIP Author(person, sub);")
        declaration = program.relationships[0]
        assert declaration.keys == ("person", "sub")
        assert declaration.references == (None, None)

    def test_relationship_with_explicit_references(self):
        program = parse_program("ENTITY Person(person); RELATIONSHIP Collab(a Person, b Person);")
        declaration = program.relationships[0]
        assert declaration.keys == ("a", "b")
        assert declaration.references == ("Person", "Person")

    def test_attribute_variants(self):
        program = parse_program(
            """
            ATTRIBUTE Prestige OF Person;
            LATENT ATTRIBUTE Quality OF Submission;
            ATTRIBUTE Size OF Hospital COLUMN bed_count;
            ATTRIBUTE Score[S] OF Submission;
            """
        )
        by_name = {a.name: a for a in program.attributes}
        assert not by_name["Prestige"].latent
        assert by_name["Quality"].latent
        assert by_name["Size"].column == "bed_count"
        assert by_name["Score"].subject == "Submission"


class TestRules:
    def test_simple_rule(self):
        rule = parse_rule("Prestige[A] <= Qualification[A] WHERE Person(A)")
        assert isinstance(rule, CausalRule)
        assert rule.head.name == "Prestige"
        assert rule.body[0].name == "Qualification"
        assert rule.condition.atoms[0].predicate == "Person"

    def test_multi_body_rule(self):
        rule = parse_rule("Quality[S] <= Qualification[A], Prestige[A] WHERE Author(A, S)")
        assert [atom.name for atom in rule.body] == ["Qualification", "Prestige"]

    def test_rule_without_condition(self):
        rule = parse_rule("Bill[P] <= Illness_Severity[P]")
        assert rule.condition.is_trivial

    def test_rule_with_comparison_in_condition(self):
        rule = parse_rule('Score[S] <= Quality[S] WHERE Submitted(S, C), Blind[C] = "single"')
        assert len(rule.condition.comparisons) == 1
        comparison = rule.condition.comparisons[0]
        assert comparison.operator == "="
        assert comparison.right == "single"

    def test_aggregate_rule_detection(self):
        rule = parse_rule("AVG_Score[A] <= Score[S] WHERE Author(A, S)")
        assert isinstance(rule, AggregateRule)
        assert rule.aggregate == "AVG"
        assert rule.head.name == "AVG_Score"

    def test_count_aggregate_rule(self):
        rule = parse_rule("COUNT_Score[A] <= Score[S] WHERE Author(A, S)")
        assert isinstance(rule, AggregateRule)
        assert rule.aggregate == "COUNT"

    def test_non_aggregate_underscore_name_is_plain_rule(self):
        rule = parse_rule("Admitted_to_large[P] <= Illness_Severity[P]")
        assert isinstance(rule, CausalRule)

    def test_rule_str_round_trips_through_parser(self):
        rule = parse_rule("Quality[S] <= Qualification[A], Prestige[A] WHERE Author(A, S)")
        reparsed = parse_rule(str(rule))
        assert reparsed == rule


class TestQueries:
    def test_ate_query(self):
        query = parse_query("Score[S] <= Prestige[A] ?")
        assert isinstance(query, CausalQuery)
        assert query.response.name == "Score"
        assert query.treatment.name == "Prestige"
        assert not query.is_peer_query

    def test_aggregated_response_query(self):
        query = parse_query("AVG_Score[A] <= Prestige[A] ?")
        assert query.response.name == "AVG_Score"

    def test_peer_query_all(self):
        query = parse_query("Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED")
        assert query.is_peer_query
        assert query.peer_condition.kind == "ALL"

    def test_peer_query_fraction(self):
        query = parse_query("Score[S] <= Prestige[A] ? WHEN MORE THAN 1/3 PEERS TREATED")
        assert query.peer_condition.kind == "MORE_THAN_PERCENT"
        assert query.peer_condition.value == pytest.approx(100.0 / 3.0)

    def test_peer_query_percent_and_counts(self):
        assert parse_query(
            "Y[X] <= T[X] ? WHEN LESS THAN 50 % PEERS TREATED"
        ).peer_condition.kind == "LESS_THAN_PERCENT"
        assert parse_query(
            "Y[X] <= T[X] ? WHEN AT LEAST 2 PEERS TREATED"
        ).peer_condition.value == 2
        assert parse_query(
            "Y[X] <= T[X] ? WHEN AT MOST 3 PEERS TREATED"
        ).peer_condition.kind == "AT_MOST"
        assert parse_query(
            "Y[X] <= T[X] ? WHEN EXACTLY 1 PEERS TREATED"
        ).peer_condition.kind == "EXACTLY"

    def test_query_with_where(self):
        query = parse_query(
            'Score[S] <= Prestige[A] ? WHERE Submitted(S, C), Blind[C] = "single"'
        )
        assert query.condition.atoms[0].predicate == "Submitted"
        assert query.condition.comparisons[0].right == "single"

    def test_query_with_treatment_threshold(self):
        query = parse_query("Score[S] <= Qualification[A] >= 30 ?")
        assert isinstance(query.treatment_threshold, Comparison)
        assert query.treatment_threshold.operator == ">="
        assert query.treatment_threshold.right == 30

    def test_query_variables(self):
        query = parse_query("Score[S] <= Prestige[A] ?")
        assert query.response.terms == (Variable("S"),)
        assert query.treatment.terms == (Variable("A"),)


class TestErrors:
    def test_missing_question_mark_parses_as_rule(self):
        with pytest.raises(ParseError):
            parse_query("Score[S] <= Prestige[A]")

    def test_query_with_two_treatments_rejected(self):
        with pytest.raises(ParseError):
            parse_query("Score[S] <= Prestige[A], Quality[S] ?")

    def test_when_clause_on_rule_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("Score[S] <= Prestige[A] WHEN ALL PEERS TREATED")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("Score[S] <= Prestige[A] WHERE Author(A, S) extra")

    def test_threshold_on_rule_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("Score[S] <= Qualification[A] >= 30 WHERE Author(A, S)")

    def test_multiple_statements_rejected_by_single_parsers(self):
        with pytest.raises(ParseError):
            parse_rule("A[X] <= B[X]; C[X] <= D[X]")
        with pytest.raises(ParseError):
            parse_query("A[X] <= B[X] ?; C[X] <= D[X] ?")

    def test_zero_denominator_fraction(self):
        with pytest.raises(ParseError):
            parse_query("Y[X] <= T[X] ? WHEN MORE THAN 1/0 PEERS TREATED")


class TestFullProgram:
    def test_toy_program_parses(self):
        program = parse_program(TOY_REVIEW_PROGRAM)
        assert {e.name for e in program.entities} == {"Person", "Submission", "Conference"}
        assert {r.name for r in program.relationships} == {"Author", "Submitted"}
        assert len(program.rules) == 4
        assert len(program.aggregate_rules) == 1
        latent = [a for a in program.attributes if a.latent]
        assert [a.name for a in latent] == ["Quality"]

    def test_program_str_reparses_equivalently(self):
        program = parse_program(TOY_REVIEW_PROGRAM)
        reparsed = parse_program(str(program))
        assert len(reparsed.rules) == len(program.rules)
        assert len(reparsed.aggregate_rules) == len(program.aggregate_rules)
        assert reparsed.entities == program.entities

    def test_queries_can_be_embedded_in_programs(self):
        program = parse_program("ENTITY Person(p); ATTRIBUTE X OF Person; X[A] <= X[A] ?")
        assert len(program.queries) == 1
