"""Known-bad determinism fixture: every statement here must flag det-set-iter.

Lives under a ``graph/`` path segment so the rule's default scope applies
without ``--everywhere``.  Not imported by anything; the lint tests parse it.
"""


def iterate_literal() -> list[int]:
    out = []
    for item in {3, 1, 2}:  # BAD: for-loop over a set literal
        out.append(item)
    return out


def iterate_via_name(edges: set[tuple[int, int]]) -> list[tuple[int, int]]:
    return [edge for edge in edges]  # BAD: comprehension over set-typed param


def iterate_constructed() -> tuple[int, ...]:
    nodes = set([4, 5, 6])
    return tuple(nodes)  # BAD: tuple() over a set-typed local


def iterate_algebra(a: set[int], b: set[int]) -> list[int]:
    return list(a | b)  # BAD: list() over a set-union expression


class GraphIndex:
    def __init__(self) -> None:
        self.nodes: set[str] = set()

    def names(self) -> str:
        return ",".join(self.nodes)  # BAD: str.join over a set attribute
