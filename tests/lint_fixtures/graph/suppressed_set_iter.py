"""Suppression fixture: the violation is disabled inline (and one via
disable-next-line); findings must carry ``suppressed=True``."""


def justified(frontier: set[int]) -> list[int]:
    # Feeds an order-insensitive reducer immediately downstream.
    return [x + 1 for x in frontier]  # repro-lint: disable=det-set-iter


def justified_next_line(frontier: set[int]) -> list[int]:
    # repro-lint: disable-next-line=det-set-iter
    return [x for x in frontier]
