"""Known-good determinism fixture: nothing here may flag det-set-iter."""


def order_insensitive(edges: set[tuple[int, int]]) -> int:
    total = len(edges)  # OK: len does not consume order
    if (1, 2) in edges:  # OK: membership
        total += 1
    return total


def sorted_first(nodes: set[str]) -> list[str]:
    return sorted(nodes)  # OK: sorted() imposes the order itself


def set_building(a: set[int], b: set[int]) -> set[int]:
    return set(a | b)  # OK: the result is itself unordered


def list_is_not_a_set(rows: list[int]) -> list[int]:
    ordered = [row for row in rows]  # OK: lists are ordered
    for row in ordered:
        pass
    return ordered


def scoped_names() -> list[int]:
    # A set-typed `items` in another function must not taint this list.
    items = [1, 2, 3]
    return [item for item in items]  # OK


def other_scope() -> set[int]:
    items = {1, 2, 3}
    return items
