"""Known-good fault-site fixture: registered sites (and dynamic names the
rule must skip) produce no findings."""

from repro.faults.injection import fault_point
from repro.faults.plan import FaultRule


def injects(site: str) -> None:
    fault_point("worker.crash", key="task-1")  # OK: registered site
    fault_point("store.enospc")  # OK
    FaultRule(site="worker.hang", at=(0,), delay=0.5)  # OK
    FaultRule("store.corrupt_read", p=0.1)  # OK: positional, registered
    fault_point(site)  # OK: dynamic name, runtime validation covers it
    FaultRule(site=site)  # OK: dynamic
