"""Known-good telemetry-schema fixture: conforming emits (and dynamic ones
the rule must skip) produce no findings."""

from repro.observability.telemetry import get_registry


def emits(name: str, meta: dict) -> None:
    registry = get_registry()
    registry.count("cache.hit", kind="grounding")  # OK: optional field
    registry.count("daemon.admit", tenant="alice")  # OK: required present
    registry.gauge("scheduler.queue_depth", 3)  # OK
    registry.histogram("scheduler.queue_wait", 0.25, kind="collect")  # OK
    span = registry.start_span("query", index=1, mode="warm")  # OK
    registry.finish_span(span)
    registry.count(name)  # OK: dynamic name, runtime validation covers it
    registry.count("daemon.reject", **meta)  # OK: splat may supply 'tenant'
    names = ["a", "b"]
    names.count("a")  # OK: list.count, not a telemetry registry receiver
