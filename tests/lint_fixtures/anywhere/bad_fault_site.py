"""Known-bad fault-site fixture (the rule is unscoped).

Violations, in order: a misspelled fault_point site, an unregistered
FaultRule site (keyword form), and an unregistered positional site.
"""

from repro.faults.injection import fault_point
from repro.faults.plan import FaultRule


def injects() -> None:
    fault_point("worker.crsh")  # BAD: typo, not in FAULT_SITES
    FaultRule(site="store.no_such_site", p=0.5)  # BAD: unregistered site
    FaultRule("worker.explode", at=(0,))  # BAD: unregistered, positional
