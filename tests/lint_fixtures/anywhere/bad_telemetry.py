"""Known-bad telemetry-schema fixture (the rule is unscoped).

Violations, in order: unregistered event, kind mismatch, disallowed
metadata field, missing required metadata, histogram kind mismatch.
"""

from repro.observability.telemetry import get_registry


def emits() -> None:
    registry = get_registry()
    registry.count("no.such.event")  # BAD: not in EVENTS
    registry.count("query", index=1)  # BAD: 'query' is a span, not a counter
    registry.gauge("daemon.sessions", 1, bogus=2)  # BAD: field not allowed
    registry.count("daemon.admit")  # BAD: required field 'tenant' missing
    registry.histogram("cache.hit", 0.5)  # BAD: 'cache.hit' is a counter
