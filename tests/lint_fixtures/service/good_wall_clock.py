"""Known-good fixture: monotonic clocks and a justified wall-clock use."""

import time


def span_timing() -> float:
    start = time.monotonic()  # OK
    return time.perf_counter() - start  # OK


def log_timestamp() -> float:
    # Correlated with external logs, never subtracted.
    return time.time()  # repro-lint: disable=det-wall-clock
