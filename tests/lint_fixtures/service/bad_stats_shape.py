"""Fixture: snapshot functions whose keys drift from the documented shape."""


class ShardScheduler:
    def stats(self):
        snapshot = {"live_records": 0, "live_tasks": 0}
        snapshot["queue_depth"] = 3  # BAD: not a documented ShardScheduler key
        return snapshot


class QuerySession:
    def stats(self):
        return {
            "executor": "process",
            "submitted": 1,
            "retries_left": 2,  # BAD: not a documented QuerySession key
        }


class CacheStats:
    def summary(self):
        summary = {"hits": 1, "misses": 0, "stores": 1}
        summary["evictions"] = 0  # BAD: not a documented CacheStats key
        return summary
