"""Known-good lock-discipline fixture: every guarded access holds the lock
(directly, via a ``*_locked`` helper, or via a def-line guarded-by marker),
and numpy work is staged outside lock scope."""

import threading

import numpy as np


class Widget:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict[int, str] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._unguarded = 0  # no annotation: the rule must ignore it

    def locked_access(self, key: int, value: str) -> None:
        with self._lock:
            if not self._closed:  # OK: lock held
                self._items[key] = value

    def _reap_locked(self) -> None:
        self._items.clear()  # OK: *_locked declares caller holds the lock

    def _reap(self) -> None:  # guarded-by: _lock
        self._items.clear()  # OK: def-line marker declares the contract

    def drive(self) -> None:
        with self._lock:
            self._reap_locked()
            self._reap()

    def closure_takes_lock(self):
        def later() -> int:
            with self._lock:
                return len(self._items)  # OK: closure acquires it itself
        return later

    def unguarded(self) -> int:
        self._unguarded += 1  # OK: not annotated
        return self._unguarded

    def numpy_outside_lock(self, values) -> float:
        with self._lock:
            staged = list(self._items.values())
        return float(np.sum(np.asarray(len(staged))))  # OK: lock released
