"""Known-bad fixture for det-wall-clock (scope service/)."""

import time


def span_timing() -> float:
    start = time.time()  # BAD: wall clock jumps under NTP/DST
    return time.time() - start  # BAD


def deadline(timeout: float) -> float:
    return time.time() + timeout  # BAD: deadlines must be monotonic
