"""Known-good boundedness fixture: bounded, reaped, swapped, justified, or
not long-lived — none of these may flag."""

from collections import deque


class ReapingScheduler:
    def __init__(self) -> None:
        self._inflight: dict[int, str] = {}  # OK: deleted at delivery
        self._recent: deque = deque(maxlen=64)  # OK: bounded
        self._buffer: list[str] = []  # OK: swap-reset below
        self._audit: list[str] = []  # unbounded-ok: test evidence, process-lifetime by design

    def handle(self, index: int, outcome: str) -> None:
        self._inflight[index] = outcome
        self._recent.append(outcome)
        self._buffer.append(outcome)
        self._audit.append(outcome)

    def deliver(self, index: int) -> str:
        return self._inflight.pop(index)

    def flush(self) -> list[str]:
        pending, self._buffer = self._buffer, []
        return pending


class ShortLivedHelper:
    """Not matched by the long-lived-class name pattern: never checked."""

    def __init__(self) -> None:
        self._rows: list[int] = []

    def push(self, row: int) -> None:
        self._rows.append(row)
