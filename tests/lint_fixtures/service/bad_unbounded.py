"""Known-bad boundedness fixture (scope service/): a long-lived class grows
containers that nothing ever shrinks."""


class BookkeepingDaemon:
    def __init__(self) -> None:
        self._history: dict[int, str] = {}  # BAD: grows per query, no reap
        self._log: list[str] = []  # BAD: append-only

    def handle(self, index: int, outcome: str) -> None:
        self._history[index] = outcome
        self._log.append(outcome)
