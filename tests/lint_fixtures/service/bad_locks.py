"""Known-bad lock-discipline fixture (scope service/).

Violations, in order: unlocked read, unlocked write, guarded access in a
nested function defined under the lock (runs later!), and a numpy call
inside lock scope.
"""

import threading

import numpy as np


class Widget:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: dict[int, str] = {}  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    def unlocked_read(self) -> int:
        return len(self._items)  # BAD: guarded attr read without the lock

    def unlocked_write(self) -> None:
        self._closed = True  # BAD: guarded attr written without the lock

    def closure_escapes_lock(self):
        with self._lock:
            def later() -> int:
                return len(self._items)  # BAD: closure runs after release
            return later

    def numpy_under_lock(self, values) -> float:
        with self._lock:
            return float(np.sum(values))  # BAD: bulk work inside the lock
