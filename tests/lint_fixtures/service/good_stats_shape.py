"""Fixture: snapshot functions that keep their documented shapes."""


class ShardScheduler:
    def stats(self):
        snapshot = {"live_records": 0, "live_tasks": 0}
        snapshot["circuit_open"] = 0
        return snapshot


class QuerySession:
    def stats(self):
        base = {"executor": "process", "submitted": 1, "delivered": 1}
        base["scheduler"] = {}
        return base


class SomeOtherClass:
    def stats(self):
        # Not a documented (class, function) pair: any keys are fine here.
        return {"whatever": 1, "shape": "free"}


class CacheStats:
    def summary(self):
        summary = {"hits": 1, "misses": 0, "stores": 1}
        for kind in ():
            summary[kind] = {}  # dynamic key: data, not shape
        return summary
