"""Known-good fixture: structural sort keys and hashlib digests don't flag."""

import hashlib


def structural_sort(body: list[tuple[str, tuple[int, ...]]]) -> list:
    return sorted(body, key=lambda node: (node[0], node[1]))  # OK


def named_key_function(rows: list, node_sort_key) -> list:
    return sorted(rows, key=node_sort_key)  # OK


def stable_fingerprint(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()  # OK: not builtin hash()
