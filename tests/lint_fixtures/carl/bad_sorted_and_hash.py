"""Known-bad fixture for det-sorted-str and det-builtin-hash (scope carl/)."""


def lexicographic_sort(body: list[tuple[str, tuple[int, ...]]]) -> list:
    return sorted(body, key=str)  # BAD: '(10,)' sorts before '(2,)'


def lexicographic_sort_repr(rows: list) -> None:
    rows.sort(key=repr)  # BAD: same bug via .sort


def salted_fingerprint(payload: tuple) -> int:
    return hash(payload)  # BAD: PYTHONHASHSEED-salted, never persist this
