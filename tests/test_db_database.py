"""Unit tests for the database container (repro.db.database)."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.schema import SchemaError
from repro.db.table import Table


@pytest.fixture()
def db() -> Database:
    database = Database("testdb")
    database.create_table("person", {"pid": "str", "age": "int"}, primary_key=["pid"])
    database.insert("person", [{"pid": "a", "age": 30}, {"pid": "b", "age": 40}])
    return database


class TestTableManagement:
    def test_create_and_lookup(self, db):
        assert "person" in db
        assert len(db.table("person")) == 2
        assert db["person"].name == "person"

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table("person", ["pid"])

    def test_add_existing_table(self, db):
        table = Table.from_rows("extra", [{"x": 1}])
        db.add_table(table)
        assert "extra" in db
        with pytest.raises(SchemaError):
            db.add_table(table)

    def test_unknown_table_error_lists_available(self, db):
        with pytest.raises(KeyError, match="person"):
            db.table("nope")

    def test_drop_table(self, db):
        db.drop_table("person")
        assert "person" not in db
        with pytest.raises(KeyError):
            db.drop_table("person")

    def test_insert_single_row(self, db):
        db.insert("person", {"pid": "c", "age": 12})
        assert len(db.table("person")) == 3

    def test_load_rows_infers_schema(self, db):
        db.load_rows("scores", [{"pid": "a", "value": 0.5}])
        assert db.table("scores").schema.column("value").dtype == "float"


class TestStatisticsAndCsv:
    def test_counts(self, db):
        assert db.total_rows() == 2
        assert db.total_attributes() == 2
        assert db.summary() == {"person": {"rows": 2, "columns": 2}}

    def test_csv_round_trip(self, db, tmp_path):
        written = db.export_csv(tmp_path)
        assert len(written) == 1 and written[0].name == "person.csv"

        restored = Database("restored")
        restored.import_csv("person", written[0], dtypes={"pid": "str", "age": "int"})
        assert restored.table("person").to_list() == db.table("person").to_list()

    def test_csv_import_coerces_types_by_default(self, db, tmp_path):
        paths = db.export_csv(tmp_path)
        restored = Database("restored")
        table = restored.import_csv("person", paths[0])
        ages = table.column("age")
        assert ages == [30, 40]

    def test_csv_import_empty_file_fails(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")
        with pytest.raises(SchemaError):
            Database().import_csv("empty", path)
