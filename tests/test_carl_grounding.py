"""Unit tests for grounding (repro.carl.grounding) against the Figure 2 toy data.

The expected grounded rules are spelled out in Example 3.6 of the paper; the
resulting graph is Figure 4, and its extension with AVG_Score nodes is
Figure 5.
"""

from __future__ import annotations

import pytest

from repro.carl.causal_graph import GroundedAttribute
from repro.carl.grounding import Grounder
from repro.carl.model import RelationalCausalModel
from repro.carl.parser import parse_program, parse_rule
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database


@pytest.fixture(scope="module")
def grounder() -> Grounder:
    program = parse_program(TOY_REVIEW_PROGRAM)
    model = RelationalCausalModel.from_program(program)
    instance = model.schema.bind(toy_review_database())
    return Grounder(model, instance)


def node(attribute: str, *key: object) -> GroundedAttribute:
    return GroundedAttribute(attribute, tuple(key))


class TestConditionEvaluation:
    def test_entity_condition(self, grounder):
        rule = parse_rule("Prestige[A] <= Qualification[A] WHERE Person(A)")
        bindings = grounder.condition_bindings(rule.condition)
        assert {b["A"] for b in bindings} == {"Bob", "Carlos", "Eva"}

    def test_relationship_condition(self, grounder):
        rule = parse_rule("Score[S] <= Prestige[A] WHERE Author(A, S)")
        bindings = grounder.condition_bindings(rule.condition)
        assert len(bindings) == 5

    def test_attribute_comparison_filters(self, grounder):
        rule = parse_rule(
            'Score[S] <= Quality[S] WHERE Submitted(S, C), Blind[C] = "double"'
        )
        bindings = grounder.condition_bindings(rule.condition)
        assert {b["S"] for b in bindings} == {"s2", "s3"}

    def test_variable_comparison_filters(self, grounder):
        rule = parse_rule('Score[S] <= Quality[S] WHERE Submitted(S, C), C = "ConfDB"')
        bindings = grounder.condition_bindings(rule.condition)
        assert {b["S"] for b in bindings} == {"s1"}


class TestRuleGrounding:
    def test_example_3_6_quality_groundings(self, grounder):
        rule = parse_rule("Quality[S] <= Qualification[A], Prestige[A] WHERE Author(A, S)")
        grounded = {g.head: set(g.body) for g in grounder.ground_rule(rule)}
        assert grounded[node("Quality", "s1")] == {
            node("Qualification", "Bob"),
            node("Qualification", "Eva"),
            node("Prestige", "Bob"),
            node("Prestige", "Eva"),
        }
        assert grounded[node("Quality", "s2")] == {
            node("Qualification", "Eva"),
            node("Prestige", "Eva"),
        }

    def test_example_3_6_prestige_groundings(self, grounder):
        rule = parse_rule("Prestige[A] <= Qualification[A] WHERE Person(A)")
        grounded = grounder.ground_rule(rule)
        assert len(grounded) == 3
        assert all(len(g.body) == 1 for g in grounded)

    def test_aggregate_rule_grounding(self, grounder):
        rule = parse_rule("AVG_Score[A] <= Score[S] WHERE Author(A, S)")
        grounded = {g.head: set(g.body) for g in grounder.ground_aggregate_rule(rule)}
        assert grounded[node("AVG_Score", "Eva")] == {
            node("Score", "s1"),
            node("Score", "s2"),
            node("Score", "s3"),
        }
        assert grounded[node("AVG_Score", "Bob")] == {node("Score", "s1")}


class TestGraphAssembly:
    def test_figure_5_graph_shape(self, grounder):
        graph = grounder.ground()
        # 3 authors x (Prestige, Qualification, AVG_Score) + 3 submissions x (Score, Quality)
        # + 2 conferences x Blind = 9 + 6 + 2 = 17 nodes.
        assert len(graph) == 17
        # Edges of Figure 5: 3 Qualification->Prestige, per-submission
        # Qualification/Prestige->Quality (2+1+2 each kind), Quality->Score (3),
        # Prestige->Score (5), Score->AVG_Score (5).
        assert graph.number_of_edges() == 26
        assert graph.is_aggregate(node("AVG_Score", "Eva"))
        assert not graph.is_aggregate(node("Score", "s1"))

    def test_graph_values_include_aggregates(self, grounder):
        graph = grounder.ground()
        values = grounder.grounded_attribute_values(graph)
        assert values[node("Score", "s1")] == pytest.approx(0.75)
        assert values[node("AVG_Score", "Bob")] == pytest.approx(0.75)
        assert values[node("AVG_Score", "Eva")] == pytest.approx((0.75 + 0.4 + 0.1) / 3)
        # Latent attributes have no observed value.
        assert node("Quality", "s1") not in values

    def test_graph_is_acyclic(self, grounder):
        graph = grounder.ground()
        graph.validate_acyclic()

    def test_directed_paths_match_figure_5(self, grounder):
        graph = grounder.ground()
        # Eva's prestige has a directed path to Bob's average score (highlighted
        # in Figure 5) because they co-authored s1.
        assert graph.has_directed_path(node("Prestige", "Eva"), node("AVG_Score", "Bob"))
        # Carlos never co-authors with Bob, so no such path exists.
        assert not graph.has_directed_path(node("Prestige", "Carlos"), node("AVG_Score", "Bob"))
