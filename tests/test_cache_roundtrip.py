"""Hypothesis round-trip tests for the artifact cache's serialization layer.

``save → load`` through a real on-disk :class:`ArtifactCache` (npz files,
memory-mapped numeric members) must be *exact* for every artifact kind:
NaN and infinity survive, empty tables survive, unicode column names and
string values survive, huge ints that overflow int64 survive (via the
object-array fallback), and value types are never coerced (an int stays an
int, a bool stays a bool).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    ArtifactCache,
    CacheKey,
    columnar_table_payload,
    grounding_payload,
    load_columnar_table,
    load_grounding,
    load_unit_table,
    unit_table_payload,
)
from repro.carl.causal_graph import GroundedAttribute, GroundedCausalGraph
from repro.carl.unit_table import UnitTable
from repro.db.schema import ColumnSchema, TableSchema
from repro.db.table import ColumnarTable

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
any_floats = st.floats(allow_nan=True, allow_infinity=True)
unicode_names = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), min_codepoint=1), min_size=1, max_size=8
)

VALUE_STRATEGIES = {
    "int": st.integers(min_value=-(2**70), max_value=2**70),
    "float": any_floats,
    "str": st.text(max_size=12),
    "bool": st.booleans(),
    "any": st.one_of(
        st.integers(min_value=-5, max_value=5),
        any_floats,
        st.text(max_size=6),
        st.booleans(),
        st.tuples(st.integers(min_value=-3, max_value=3), st.text(max_size=3)),
    ),
}


@st.composite
def columnar_tables(draw) -> ColumnarTable:
    n_columns = draw(st.integers(min_value=1, max_value=4))
    names = draw(
        st.lists(unicode_names, min_size=n_columns, max_size=n_columns, unique=True)
    )
    dtypes = draw(
        st.lists(
            st.sampled_from(sorted(VALUE_STRATEGIES)),
            min_size=n_columns,
            max_size=n_columns,
        )
    )
    nullable = draw(
        st.lists(st.booleans(), min_size=n_columns, max_size=n_columns)
    )
    schema = TableSchema(
        name=draw(unicode_names),
        columns=tuple(
            ColumnSchema(name, dtype, nullable=null)
            for name, dtype, null in zip(names, dtypes, nullable)
        ),
    )
    table = ColumnarTable(schema)
    n_rows = draw(st.integers(min_value=0, max_value=8))
    for _ in range(n_rows):
        row = {}
        for name, dtype, null in zip(names, dtypes, nullable):
            if null and draw(st.booleans()):
                row[name] = None
            else:
                row[name] = draw(VALUE_STRATEGIES[dtype])
        table.insert(row)
    return table


grounded_keys = st.tuples(
    st.one_of(st.integers(min_value=-9, max_value=9), st.text(max_size=4))
)
grounded_values = st.one_of(
    any_floats,
    st.integers(min_value=-9, max_value=9),
    st.text(max_size=5),
    st.booleans(),
    st.none(),
)


@st.composite
def groundings(draw) -> tuple[GroundedCausalGraph, dict[GroundedAttribute, object]]:
    n_nodes = draw(st.integers(min_value=0, max_value=10))
    attributes = ["Å", "T", "Y", "AVG_Score"]
    nodes = []
    seen = set()
    for index in range(n_nodes):
        node = GroundedAttribute(
            draw(st.sampled_from(attributes)), (index, draw(st.text(max_size=3)))
        )
        if node in seen:
            continue
        seen.add(node)
        nodes.append(node)
    graph = GroundedCausalGraph()
    for node in nodes:
        aggregate = draw(st.sampled_from([None, None, "AVG", "SUM"]))
        graph.add_node(node, aggregate=aggregate)
    # Edges only from earlier to later nodes: acyclic by construction.
    for child_index in range(1, len(nodes)):
        for parent_index in range(child_index):
            if draw(st.booleans()) and draw(st.booleans()):
                graph.add_edge(nodes[parent_index], nodes[child_index])
    values = {
        node: draw(grounded_values) for node in nodes if draw(st.integers(0, 3)) > 0
    }
    return graph, values


@st.composite
def unit_tables(draw) -> UnitTable:
    n_units = draw(st.integers(min_value=1, max_value=6))
    n_peer = draw(st.integers(min_value=0, max_value=2))
    n_cov = draw(st.integers(min_value=0, max_value=3))
    array = lambda width: np.asarray(  # noqa: E731
        [
            [draw(any_floats) for _ in range(width)]
            for _ in range(n_units)
        ],
        dtype=float,
    ).reshape(n_units, width)
    return UnitTable(
        unit_keys=[(index, draw(st.text(max_size=3))) for index in range(n_units)],
        outcome=np.asarray([draw(any_floats) for _ in range(n_units)], dtype=float),
        treatment=np.asarray(
            [float(draw(st.integers(0, 1))) for _ in range(n_units)], dtype=float
        ),
        peer_treatment=array(n_peer),
        peer_counts=np.asarray(
            [float(draw(st.integers(0, 4))) for _ in range(n_units)], dtype=float
        ),
        covariates=array(n_cov),
        peer_columns=[f"peer_{index}" for index in range(n_peer)],
        covariate_columns=[f"cov_ü{index}" for index in range(n_cov)],
        treatment_attribute=draw(unicode_names),
        response_attribute=draw(unicode_names),
    )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
KEY = CacheKey(database="ab" * 32, program="cd" * 32, kind="grounding")


def roundtrip(tmp_path, payload: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Store + load through a real on-disk cache (exercises npz and mmap)."""
    cache = ArtifactCache(tmp_path / "cache")
    cache.store(KEY, payload)
    loaded = cache.load(KEY)
    assert loaded is not None
    return loaded


def value_token(value: object) -> str:
    """Exactness token: type plus repr (floats repr round-trips bits in py3)."""
    return f"{type(value).__name__}|{value!r}"


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
@settings(max_examples=40)
@given(table=columnar_tables())
def test_columnar_table_roundtrip_exact(tmp_path_factory, table):
    tmp_path = tmp_path_factory.mktemp("cache_rt")
    loaded = load_columnar_table(roundtrip(tmp_path, columnar_table_payload(table)))
    assert loaded.schema == table.schema
    assert len(loaded) == len(table)
    for column in table.columns:
        original = [value_token(value) for value in table.column(column)]
        restored = [value_token(value) for value in loaded.column(column)]
        assert restored == original


@settings(max_examples=40)
@given(grounding=groundings())
def test_grounding_roundtrip_exact(tmp_path_factory, grounding):
    graph, values = grounding
    tmp_path = tmp_path_factory.mktemp("cache_rt")
    loaded_graph, loaded_values = load_grounding(
        roundtrip(tmp_path, grounding_payload(graph, values))
    )
    assert loaded_graph.nodes == graph.nodes
    assert sorted(map(repr, loaded_graph.edges)) == sorted(map(repr, graph.edges))
    for node in graph.nodes:
        assert loaded_graph.aggregate_of(node) == graph.aggregate_of(node)
        assert loaded_graph.parents(node) == graph.parents(node)
    assert list(loaded_values) == list(values)  # same nodes, same order
    for node, value in values.items():
        assert value_token(loaded_values[node]) == value_token(value)


@settings(max_examples=40)
@given(unit_table=unit_tables())
def test_unit_table_roundtrip_exact(tmp_path_factory, unit_table):
    tmp_path = tmp_path_factory.mktemp("cache_rt")
    loaded = load_unit_table(roundtrip(tmp_path, unit_table_payload(unit_table)))
    assert loaded.equals(unit_table) and unit_table.equals(loaded)
    assert loaded.unit_keys == unit_table.unit_keys
    assert loaded.peer_columns == unit_table.peer_columns
    assert loaded.covariate_columns == unit_table.covariate_columns
    assert loaded.treatment_attribute == unit_table.treatment_attribute
    assert loaded.response_attribute == unit_table.response_attribute
    for field in ("outcome", "treatment", "peer_treatment", "peer_counts", "covariates"):
        original = getattr(unit_table, field)
        restored = getattr(loaded, field)
        assert restored.shape == original.shape
        # Bit-identical, NaN payloads and signed zeros included.
        assert np.asarray(restored).tobytes() == np.asarray(original).tobytes()


def test_unit_table_nan_inf_survive(tmp_path):
    unit_table = UnitTable(
        unit_keys=[("a",), ("b",), ("c",)],
        outcome=np.asarray([math.nan, math.inf, -0.0]),
        treatment=np.asarray([1.0, 0.0, 1.0]),
        peer_treatment=np.asarray([[math.nan], [0.5], [-math.inf]]),
        peer_counts=np.asarray([1.0, 1.0, 1.0]),
        covariates=np.empty((3, 0)),
        peer_columns=["peer_mean"],
        covariate_columns=[],
        treatment_attribute="T",
        response_attribute="Y",
    )
    loaded = load_unit_table(roundtrip(tmp_path, unit_table_payload(unit_table)))
    assert math.isnan(loaded.outcome[0]) and math.isinf(loaded.outcome[1])
    assert math.copysign(1.0, loaded.outcome[2]) == -1.0
    assert math.isnan(loaded.peer_treatment[0, 0])
    assert loaded.peer_treatment[2, 0] == -math.inf


def test_empty_grounding_roundtrip(tmp_path):
    graph, values = GroundedCausalGraph(), {}
    loaded_graph, loaded_values = load_grounding(
        roundtrip(tmp_path, grounding_payload(graph, values))
    )
    assert len(loaded_graph) == 0 and loaded_values == {}


def test_format_version_mismatch_is_an_error(tmp_path):
    import json

    from repro.cache.serialization import SerializationError, read_meta

    payload = {"meta": np.asarray(json.dumps({"format": -1, "kind": "grounding"}))}
    with pytest.raises(SerializationError):
        read_meta(payload)
