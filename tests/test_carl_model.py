"""Unit tests for the relational causal model (repro.carl.model)."""

from __future__ import annotations

import pytest

from repro.carl.errors import ModelError
from repro.carl.model import RelationalCausalModel
from repro.carl.parser import parse_program, parse_rule
from repro.carl.schema import RelationalCausalSchema
from repro.datasets import TOY_REVIEW_PROGRAM


@pytest.fixture()
def toy_model() -> RelationalCausalModel:
    program = parse_program(TOY_REVIEW_PROGRAM)
    return RelationalCausalModel.from_program(program)


class TestValidation:
    def test_toy_model_loads(self, toy_model):
        assert len(toy_model.rules) == 4
        assert len(toy_model.aggregate_rules) == 1

    def test_unknown_attribute_in_rule(self):
        schema = RelationalCausalSchema.from_program(parse_program(TOY_REVIEW_PROGRAM))
        model = RelationalCausalModel(schema)
        with pytest.raises(ModelError, match="Fame"):
            model.add_rule(parse_rule("Fame[A] <= Qualification[A] WHERE Person(A)"))

    def test_arity_mismatch(self):
        schema = RelationalCausalSchema.from_program(parse_program(TOY_REVIEW_PROGRAM))
        model = RelationalCausalModel(schema)
        with pytest.raises(ModelError, match="argument"):
            model.add_rule(parse_rule("Prestige[A, B] <= Qualification[A] WHERE Person(A), Person(B)"))

    def test_unsafe_rule_rejected(self):
        schema = RelationalCausalSchema.from_program(parse_program(TOY_REVIEW_PROGRAM))
        model = RelationalCausalModel(schema)
        with pytest.raises(ModelError, match="unsafe"):
            model.add_rule(parse_rule("Score[S] <= Prestige[A] WHERE Person(A)"))

    def test_recursive_rule_rejected(self):
        schema = RelationalCausalSchema.from_program(parse_program(TOY_REVIEW_PROGRAM))
        model = RelationalCausalModel(schema)
        with pytest.raises(ModelError, match="recursive"):
            model.add_rule(parse_rule("Score[S] <= Score[S2] WHERE Author(A, S), Author(A, S2)"))

    def test_attribute_level_cycle_rejected(self):
        schema = RelationalCausalSchema.from_program(parse_program(TOY_REVIEW_PROGRAM))
        model = RelationalCausalModel(schema)
        model.add_rule(parse_rule("Prestige[A] <= Qualification[A] WHERE Person(A)"))
        with pytest.raises(ModelError):
            model.add_rule(parse_rule("Qualification[A] <= Prestige[A] WHERE Person(A)"))

    def test_derived_attribute_cannot_be_rule_head(self, toy_model):
        with pytest.raises(ModelError, match="derived"):
            toy_model.add_rule(parse_rule("AVG_Score[A] <= Prestige[A] WHERE Person(A)"))


class TestImplicitConditions:
    def test_shorthand_rule_gets_subject_atoms(self):
        # The paper's NIS rules are written without WHERE; the implicit
        # condition grounds over the subject predicates.
        program = parse_program(
            """
            ENTITY Admission(adm);
            ATTRIBUTE Bill OF Admission;
            ATTRIBUTE Severity OF Admission;
            Bill[P] <= Severity[P];
            """
        )
        model = RelationalCausalModel.from_program(program)
        condition = model.rules[0].condition
        assert [atom.predicate for atom in condition.atoms] == ["Admission"]
        assert not condition.is_trivial


class TestDerivedAttributes:
    def test_aggregate_rule_registers_derived(self, toy_model):
        derived = toy_model.derived_attributes["AVG_Score"]
        assert derived.aggregate == "AVG"
        assert derived.base == "Score"
        assert derived.subject == "Person"
        assert toy_model.is_derived("AVG_Score")
        assert toy_model.subject_of("AVG_Score") == "Person"
        assert toy_model.is_observed("AVG_Score")

    def test_aggregate_over_latent_is_unobserved(self):
        program = parse_program(
            TOY_REVIEW_PROGRAM + "\nAVG_Quality[A] <= Quality[S] WHERE Author(A, S);"
        )
        model = RelationalCausalModel.from_program(program)
        assert not model.is_observed("AVG_Quality")

    def test_conflicting_derived_definitions_rejected(self, toy_model):
        with pytest.raises(ModelError, match="conflicting"):
            toy_model.add_aggregate_rule(
                parse_rule("AVG_Score[C] <= Score[S] WHERE Submitted(S, C)")
            )

    def test_aggregate_head_subject_inference_failure(self):
        schema = RelationalCausalSchema.from_program(parse_program(TOY_REVIEW_PROGRAM))
        model = RelationalCausalModel(schema)
        with pytest.raises(ModelError, match="not bound"):
            model.add_aggregate_rule(parse_rule("AVG_Score[Z] <= Score[S] WHERE Submission(S)"))


class TestDependencyGraph:
    def test_attribute_dependency_graph(self, toy_model):
        graph = toy_model.attribute_dependency_graph()
        assert graph.has_edge("Qualification", "Prestige")
        assert graph.has_edge("Quality", "Score")
        assert graph.has_edge("Score", "AVG_Score")
        assert graph.is_acyclic()

    def test_rules_with_head(self, toy_model):
        score_rules = toy_model.rules_with_head("Score")
        assert len(score_rules) == 2
        assert toy_model.rules_with_head("Qualification") == []
