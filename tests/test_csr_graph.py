"""Equivalence and round-trip tests for the CSR-backed grounded graph.

The dict-of-sets representation the grounded graph used to have is kept here
as an *in-test oracle*: Hypothesis builds random DAGs both ways and checks
that nodes, edges, parents/children, ancestor/descendant closures,
topological order and d-separation all agree between the oracle and the CSR
arrays.  A second group pins the CSR grounding payload round trip: stored
arrays come back identical (empty graphs, isolated nodes and aggregate nodes
included), and a loaded graph stays mutable.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ArtifactCache, CacheKey, grounding_payload, load_grounding
from repro.carl.causal_graph import GroundedAttribute, GroundedCausalGraph, GroundedRule
from repro.graph.csr import CSRGraph
from repro.graph.dag import DAG, CycleError
from repro.graph.dseparation import d_separated as dag_d_separated

ATTRIBUTES = ("T", "Y", "Z")


def node(index: int) -> GroundedAttribute:
    return GroundedAttribute(ATTRIBUTES[index % len(ATTRIBUTES)], (index,))


@st.composite
def random_dags(draw) -> tuple[GroundedCausalGraph, DAG]:
    """A random acyclic graph built both ways: CSR subject + DAG oracle.

    Edges only run from lower to higher index, so the graph is acyclic by
    construction; edge insertion order is shuffled to exercise the claim
    that the CSR compile is independent of input order.
    """
    n = draw(st.integers(min_value=0, max_value=10))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = [pair for pair in pairs if draw(st.booleans())]
    order = draw(st.permutations(chosen)) if chosen else []
    graph = GroundedCausalGraph()
    oracle = DAG()
    for index in range(n):
        graph.add_node(node(index))
        oracle.add_node(node(index))
    for parent, child in order:
        graph.add_edge(node(parent), node(child))
        oracle.add_edge(node(parent), node(child))
    return graph, oracle


class TestOracleEquivalence:
    @settings(max_examples=100)
    @given(graphs=random_dags())
    def test_structure_matches_oracle(self, graphs):
        graph, oracle = graphs
        assert graph.nodes == oracle.nodes
        assert len(graph) == len(oracle)
        assert set(graph.edges) == set(oracle.edges)
        assert graph.number_of_edges() == oracle.number_of_edges()
        for item in oracle.nodes:
            assert graph.parents(item) == oracle.parents(item)
            assert graph.children(item) == oracle.children(item)
            # The ordered accessors are the same sets in ascending id order.
            assert graph.parent_nodes(item) == sorted(
                oracle.parents(item), key=graph.index_of
            )
            assert graph.child_nodes(item) == sorted(
                oracle.children(item), key=graph.index_of
            )

    @settings(max_examples=100)
    @given(graphs=random_dags())
    def test_closures_match_oracle(self, graphs):
        graph, oracle = graphs
        for item in oracle.nodes:
            assert graph.ancestors(item) == oracle.ancestors(item)
            assert graph.descendants(item) == oracle.descendants(item)
            for other in oracle.nodes:
                assert graph.has_directed_path(item, other) == oracle.has_directed_path(
                    item, other
                )

    @settings(max_examples=100)
    @given(graphs=random_dags())
    def test_topological_order_is_valid_and_deterministic(self, graphs):
        graph, oracle = graphs
        order = graph.topological_order()
        assert sorted(order, key=graph.index_of) == oracle.nodes
        position = {item: index for index, item in enumerate(order)}
        for parent, child in oracle.edges:
            assert position[parent] < position[child]
        assert graph.topological_order() == order  # stable across calls

    @settings(max_examples=60)
    @given(graphs=random_dags(), data=st.data())
    def test_d_separation_matches_classic_bayes_ball(self, graphs, data):
        graph, oracle = graphs
        if len(oracle) == 0:
            assert graph.d_separated([], [])
            return
        nodes = oracle.nodes
        x = data.draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=2))
        y = data.draw(st.lists(st.sampled_from(nodes), min_size=1, max_size=2))
        given_nodes = data.draw(st.lists(st.sampled_from(nodes), max_size=3))
        expected = dag_d_separated(oracle, x, y, given_nodes)
        assert graph.d_separated(x, y, given_nodes) == expected


class TestCycleDetection:
    def test_cycle_raises(self):
        graph = GroundedCausalGraph()
        graph.add_edge(node(0), node(1))
        graph.add_edge(node(1), node(2))
        graph.add_edge(node(2), node(0))
        with pytest.raises(CycleError):
            graph.topological_order()
        with pytest.raises(CycleError):
            graph.validate_acyclic()

    def test_self_loop_rejected(self):
        graph = GroundedCausalGraph()
        with pytest.raises(ValueError):
            graph.add_edge(node(0), node(0))


class TestCSRPayloadRoundTrip:
    KEY = CacheKey(database="ab" * 32, program="cd" * 32, kind="grounding")

    def roundtrip(self, tmp_path, graph, values):
        cache = ArtifactCache(tmp_path / "cache")
        cache.store(self.KEY, grounding_payload(graph, values))
        loaded = cache.load(self.KEY)
        assert loaded is not None
        return loaded

    def test_csr_arrays_roundtrip_identical(self, tmp_path):
        graph = GroundedCausalGraph()
        graph.add_grounded_rule(GroundedRule(head=node(2), body=(node(0), node(1))))
        graph.add_grounded_rule(
            GroundedRule(head=node(3), body=(node(2),)), aggregate="AVG"
        )
        graph.add_node(node(4))  # isolated node
        payload = self.roundtrip(tmp_path, graph, {node(0): 1.5})
        loaded_graph, loaded_values = load_grounding(payload)
        original, reloaded = graph.csr(), loaded_graph.csr()
        for member in ("parent_indptr", "parent_indices", "child_indptr", "child_indices"):
            assert np.array_equal(getattr(original, member), getattr(reloaded, member))
        assert loaded_graph.nodes == graph.nodes
        assert loaded_graph.edges == graph.edges
        assert loaded_graph.attribute_names() == graph.attribute_names()
        for attribute in graph.attribute_names():
            assert loaded_graph.nodes_of(attribute) == graph.nodes_of(attribute)
        assert loaded_graph.aggregate_of(node(3)) == "AVG"
        assert loaded_values == {node(0): 1.5}

    def test_empty_graph_roundtrip(self, tmp_path):
        payload = self.roundtrip(tmp_path, GroundedCausalGraph(), {})
        loaded_graph, loaded_values = load_grounding(payload)
        assert len(loaded_graph) == 0
        assert loaded_graph.number_of_edges() == 0
        assert loaded_graph.topological_order() == []
        assert loaded_values == {}

    def test_isolated_nodes_only(self, tmp_path):
        graph = GroundedCausalGraph()
        for index in range(4):
            graph.add_node(node(index))
        payload = self.roundtrip(tmp_path, graph, {})
        loaded_graph, _ = load_grounding(payload)
        assert loaded_graph.nodes == graph.nodes
        assert loaded_graph.number_of_edges() == 0
        assert loaded_graph.parents(node(1)) == set()

    def test_loaded_graph_stays_mutable(self, tmp_path):
        # The engine splices dynamically-registered aggregate rules into a
        # cache-loaded graph; the CSR snapshot must recompile lazily.
        graph = GroundedCausalGraph()
        graph.add_grounded_rule(GroundedRule(head=node(1), body=(node(0),)))
        payload = self.roundtrip(tmp_path, graph, {})
        loaded_graph, _ = load_grounding(payload)
        loaded_graph.add_grounded_rule(
            GroundedRule(head=node(5), body=(node(1),)), aggregate="SUM"
        )
        assert loaded_graph.has_edge(node(1), node(5))
        assert loaded_graph.has_edge(node(0), node(1))
        assert loaded_graph.number_of_edges() == 2
        assert loaded_graph.ancestors(node(5)) == {node(0), node(1)}

    def test_payload_uses_int32_csr_arrays(self, tmp_path):
        graph = GroundedCausalGraph()
        graph.add_edge(node(0), node(1))
        payload = grounding_payload(graph, {})
        for member in ("parent_indptr", "parent_indices", "child_indptr", "child_indices"):
            assert payload[member].dtype == np.int32


class TestFromEdges:
    def test_duplicate_edges_are_deduplicated(self):
        csr = CSRGraph.from_edges(3, np.array([0, 0, 1]), np.array([2, 2, 2]))
        assert csr.n_edges == 2
        assert csr.parents_of(2).tolist() == [0, 1]

    def test_neighbour_lists_sorted_regardless_of_insertion(self):
        forward = CSRGraph.from_edges(4, np.array([2, 0, 1]), np.array([3, 3, 3]))
        backward = CSRGraph.from_edges(4, np.array([1, 0, 2]), np.array([3, 3, 3]))
        assert forward.parents_of(3).tolist() == backward.parents_of(3).tolist() == [0, 1, 2]
