"""Property-based tests for the CaRL language and the estimators."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carl.ast import PeerCondition
from repro.carl.parser import parse_query, parse_rule
from repro.inference.estimators import outcome_model_ate
from repro.inference.correlation import naive_difference

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
identifier = st.from_regex(r"[A-Z][A-Za-z0-9]{0,8}", fullmatch=True).filter(
    lambda name: name.upper()
    not in {
        "ENTITY",
        "RELATIONSHIP",
        "ATTRIBUTE",
        "LATENT",
        "OF",
        "COLUMN",
        "WHERE",
        "WHEN",
        "PEERS",
        "TREATED",
        "ALL",
        "NONE",
        "MORE",
        "LESS",
        "THAN",
        "AT",
        "MOST",
        "LEAST",
        "EXACTLY",
        "TRUE",
        "FALSE",
        "AVG",
        "SUM",
        "MIN",
        "MAX",
        "VAR",
        "STD",
        "ANY",
        "COUNT",
        "MEAN",
        "MEDIAN",
        "SKEW",
    }
)


# ----------------------------------------------------------------------
# parser round-trips
# ----------------------------------------------------------------------
@given(head=identifier, body=identifier, predicate=identifier, var_a=identifier, var_b=identifier)
@settings(max_examples=80, deadline=None)
def test_rule_str_round_trip(head, body, predicate, var_a, var_b):
    text = f"{head}[{var_a}] <= {body}[{var_b}] WHERE {predicate}({var_a}, {var_b})"
    rule = parse_rule(text)
    assert parse_rule(str(rule)) == rule


@given(response=identifier, treatment=identifier, var_a=identifier, var_b=identifier)
@settings(max_examples=80, deadline=None)
def test_query_str_round_trip(response, treatment, var_a, var_b):
    text = f"{response}[{var_a}] <= {treatment}[{var_b}] ?"
    query = parse_query(text)
    assert parse_query(str(query)) == query


@given(
    kind=st.sampled_from(["ALL", "NONE", "AT LEAST 2", "AT MOST 3", "EXACTLY 1", "MORE THAN 40 %"]),
    response=identifier,
    treatment=identifier,
)
@settings(max_examples=60, deadline=None)
def test_peer_query_round_trip(kind, response, treatment):
    text = f"{response}[X] <= {treatment}[Y] ? WHEN {kind} PEERS TREATED"
    query = parse_query(text)
    assert query.is_peer_query
    assert parse_query(str(query)).peer_condition == query.peer_condition


# ----------------------------------------------------------------------
# peer-condition invariants
# ----------------------------------------------------------------------
@given(
    kind=st.sampled_from(["AT_LEAST", "AT_MOST", "EXACTLY"]),
    value=st.integers(min_value=0, max_value=50),
    peer_count=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_peer_condition_fraction_is_a_probability(kind, value, peer_count):
    fraction = PeerCondition(kind, value).treated_fraction(peer_count)
    assert 0.0 <= fraction <= 1.0


@given(value=st.floats(min_value=0, max_value=500, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_percent_condition_fraction_is_a_probability(value):
    fraction = PeerCondition("MORE_THAN_PERCENT", value).treated_fraction(10)
    assert 0.0 <= fraction <= 1.0


# ----------------------------------------------------------------------
# estimator invariants
# ----------------------------------------------------------------------
@given(
    effect=st.floats(min_value=-5, max_value=5, allow_nan=False),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_regression_ate_recovers_effect_in_randomized_experiments(effect, seed):
    rng = np.random.default_rng(seed)
    n = 400
    treatment = np.zeros(n)
    treatment[: n // 2] = 1.0
    rng.shuffle(treatment)
    covariate = rng.normal(size=(n, 1))
    outcome = effect * treatment + covariate[:, 0] + rng.normal(scale=0.05, size=n)
    estimate = outcome_model_ate(outcome, treatment, covariate)
    assert abs(estimate.ate - effect) < 0.1


@given(
    shift=st.floats(min_value=-100, max_value=100, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_naive_difference_is_shift_invariant(shift, seed):
    rng = np.random.default_rng(seed)
    treatment = (rng.random(100) < 0.5).astype(float)
    if treatment.sum() in (0, 100):
        return
    outcome = rng.normal(size=100)
    base = naive_difference(treatment, outcome)["difference"]
    shifted = naive_difference(treatment, outcome + shift)["difference"]
    assert abs(base - shifted) < 1e-8
