"""Unit tests for embedding functions (repro.carl.embeddings)."""

from __future__ import annotations

import pytest

from repro.carl.embeddings import (
    EMBEDDINGS,
    CountEmbedding,
    MeanEmbedding,
    MedianEmbedding,
    MomentsEmbedding,
    PaddingEmbedding,
    SumEmbedding,
    get_embedding,
)


class TestMeanAndFriends:
    def test_mean_embedding(self):
        embedding = MeanEmbedding()
        assert embedding.apply([1.0, 2.0, 3.0]) == [2.0, 3.0]
        assert embedding.apply([]) == [0.0, 0.0]
        assert embedding.feature_names("x") == ["x_mean", "x_count"]
        assert embedding.dimension == 2

    def test_median_embedding(self):
        embedding = MedianEmbedding()
        assert embedding.apply([5.0, 1.0, 3.0]) == [3.0, 3.0]

    def test_count_embedding(self):
        assert CountEmbedding().apply([7, 8]) == [2.0]

    def test_sum_embedding(self):
        assert SumEmbedding().apply([1, 2, 3]) == [6.0, 3.0]

    def test_booleans_are_coerced(self):
        assert MeanEmbedding().apply([True, False]) == [0.5, 2.0]


class TestMoments:
    def test_order_three(self):
        embedding = MomentsEmbedding(order=3)
        features = embedding.apply([1.0, 2.0, 3.0])
        assert features[0] == pytest.approx(2.0)  # mean
        assert features[1] == pytest.approx(2.0 / 3.0)  # population variance
        assert features[2] == pytest.approx(0.0)  # symmetric -> no skew
        assert features[3] == 3.0  # count
        assert len(embedding.feature_names("p")) == 4

    def test_lower_orders(self):
        assert len(MomentsEmbedding(order=1).apply([1, 2])) == 2
        assert len(MomentsEmbedding(order=2).apply([1, 2])) == 3

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            MomentsEmbedding(order=0)
        with pytest.raises(ValueError):
            MomentsEmbedding(order=5)

    def test_empty_input(self):
        assert MomentsEmbedding().apply([]) == [0.0, 0.0, 0.0, 0.0]


class TestPadding:
    def test_fit_sets_width(self):
        embedding = PaddingEmbedding()
        embedding.fit([[1.0], [1.0, 2.0, 3.0], []])
        assert embedding.width == 3
        assert embedding.apply([5.0]) == [5.0, -1.0, -1.0, 1.0]

    def test_values_are_sorted_descending_and_truncated(self):
        embedding = PaddingEmbedding(width=2)
        assert embedding.apply([1.0, 9.0, 5.0]) == [9.0, 5.0, 3.0]

    def test_max_width_cap(self):
        embedding = PaddingEmbedding(max_width=4)
        embedding.fit([list(range(100))])
        assert embedding.width == 4

    def test_custom_fill(self):
        embedding = PaddingEmbedding(width=3, fill=0.0)
        assert embedding.apply([2.0]) == [2.0, 0.0, 0.0, 1.0]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PaddingEmbedding(width=0)

    def test_fixed_dimension_for_any_input_size(self):
        embedding = PaddingEmbedding(width=3)
        assert len(embedding.apply([])) == len(embedding.apply([1, 2, 3, 4, 5])) == 4


class TestRegistry:
    def test_registry_contains_paper_embeddings(self):
        # Section 5.2.2: mean/median, padding, moments.
        assert {"mean", "median", "moments", "padding"} <= set(EMBEDDINGS)

    def test_get_embedding_by_name(self):
        assert isinstance(get_embedding("mean"), MeanEmbedding)
        assert isinstance(get_embedding("MOMENTS", order=2), MomentsEmbedding)

    def test_get_embedding_passthrough(self):
        instance = MeanEmbedding()
        assert get_embedding(instance) is instance

    def test_unknown_embedding(self):
        with pytest.raises(ValueError, match="unknown embedding"):
            get_embedding("transformer")
