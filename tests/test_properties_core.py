"""Property-based tests (hypothesis) for the core data structures.

These check structural invariants of the DAG, d-separation, the embedding
functions and the aggregate functions over randomly generated inputs.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.aggregates import agg_avg, agg_max, agg_median, agg_min, agg_var
from repro.carl.embeddings import (
    MeanEmbedding,
    MedianEmbedding,
    MomentsEmbedding,
    PaddingEmbedding,
)
from repro.graph.dag import DAG
from repro.graph.dseparation import d_separated

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
float_lists = st.lists(finite_floats, max_size=30)
nonempty_float_lists = st.lists(finite_floats, min_size=1, max_size=30)


@st.composite
def random_dags(draw) -> DAG:
    """Random DAGs built by only adding edges from lower to higher node ids."""
    n_nodes = draw(st.integers(min_value=2, max_value=12))
    graph = DAG()
    for node in range(n_nodes):
        graph.add_node(node)
    possible_edges = [(i, j) for i in range(n_nodes) for j in range(i + 1, n_nodes)]
    edges = draw(st.lists(st.sampled_from(possible_edges), max_size=2 * n_nodes, unique=True))
    for parent, child in edges:
        graph.add_edge(parent, child)
    return graph


# ----------------------------------------------------------------------
# DAG invariants
# ----------------------------------------------------------------------
@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_dag_construction_is_acyclic_and_topologically_consistent(graph: DAG):
    order = graph.topological_order()
    assert sorted(order) == sorted(graph.nodes)
    position = {node: index for index, node in enumerate(order)}
    for parent, child in graph.edges:
        assert position[parent] < position[child]


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_dag_ancestor_descendant_duality(graph: DAG):
    for node in graph.nodes:
        for ancestor in graph.ancestors(node):
            assert node in graph.descendants(ancestor)


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_do_operator_removes_exactly_incoming_edges(graph: DAG):
    targets = [node for node in graph.nodes if node % 2 == 0]
    mutilated = graph.do(targets)
    for parent, child in graph.edges:
        if child in targets:
            assert not mutilated.has_edge(parent, child)
        else:
            assert mutilated.has_edge(parent, child)
    assert len(mutilated) == len(graph)


@given(random_dags(), st.data())
@settings(max_examples=60, deadline=None)
def test_d_separation_is_symmetric(graph: DAG, data):
    nodes = graph.nodes
    x = data.draw(st.sampled_from(nodes))
    y = data.draw(st.sampled_from(nodes))
    given_set = data.draw(st.lists(st.sampled_from(nodes), max_size=4, unique=True))
    assert d_separated(graph, x, y, given_set) == d_separated(graph, y, x, given_set)


@given(random_dags(), st.data())
@settings(max_examples=40, deadline=None)
def test_parents_block_all_paths_to_nondescendants(graph: DAG, data):
    """The local Markov property: a node is d-separated from its non-descendants
    given its parents — the graphical fact Theorem 5.2's sufficiency rests on."""
    node = data.draw(st.sampled_from(graph.nodes))
    non_descendants = (
        set(graph.nodes) - graph.descendants(node) - {node} - graph.parents(node)
    )
    if not non_descendants:
        return
    assert d_separated(graph, node, non_descendants, graph.parents(node))


# ----------------------------------------------------------------------
# embedding invariants
# ----------------------------------------------------------------------
@given(float_lists)
@settings(max_examples=100, deadline=None)
def test_embeddings_have_fixed_dimension(values):
    for embedding in (MeanEmbedding(), MedianEmbedding(), MomentsEmbedding(), PaddingEmbedding(width=5)):
        features = embedding.apply(values)
        assert len(features) == embedding.dimension
        assert all(isinstance(feature, float) for feature in features)
        assert all(math.isfinite(feature) for feature in features)


@given(nonempty_float_lists)
@settings(max_examples=100, deadline=None)
def test_mean_embedding_is_bounded_by_extremes(values):
    mean, count = MeanEmbedding().apply(values)
    assert min(values) - 1e-6 <= mean <= max(values) + 1e-6
    assert count == len(values)


@given(nonempty_float_lists)
@settings(max_examples=100, deadline=None)
def test_embeddings_are_permutation_invariant(values):
    reversed_values = list(reversed(values))
    for embedding in (MeanEmbedding(), MedianEmbedding(), MomentsEmbedding(), PaddingEmbedding(width=4)):
        assert embedding.apply(values) == embedding.apply(reversed_values)


# ----------------------------------------------------------------------
# aggregate invariants
# ----------------------------------------------------------------------
@given(nonempty_float_lists)
@settings(max_examples=100, deadline=None)
def test_aggregate_ordering_invariants(values):
    assert agg_min(values) <= agg_avg(values) <= agg_max(values)
    assert agg_min(values) <= agg_median(values) <= agg_max(values)
    assert agg_var(values) >= 0.0


@given(nonempty_float_lists, finite_floats)
@settings(max_examples=100, deadline=None)
def test_average_shift_equivariance(values, shift):
    shifted = [value + shift for value in values]
    assert agg_avg(shifted) == (agg_avg(values) + shift) or math.isclose(
        agg_avg(shifted), agg_avg(values) + shift, rel_tol=1e-9, abs_tol=1e-6
    )
