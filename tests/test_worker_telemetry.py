"""Cross-process trace stitching suite (``docs/observability.md``).

Contracts held here, per transport (fork-inherit, fork-rebuild via
``REPRO_SHARD_NO_INHERIT``, and true spawn in a subprocess):

* **merged counters** — worker-side cache activity (the ``unit_inputs``
  shard partials only workers touch) lands in the dispatcher's merged
  totals, identically across transports;
* **stitched parents** — every worker-recorded span carries a trace owned
  by a dispatcher ``query`` root and a parent that exists in that trace
  (the root itself on the pool path, the attempt's ``query.collect`` /
  ``query.finish`` span on the scheduler path);
* **determinism** — a subprocess run under different ``PYTHONHASHSEED``
  values produces the same merged event-name order, counter totals and
  fixed-value histogram buckets.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.carl.engine import CaRLEngine
from repro.carl.shard import NO_INHERIT_ENV
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database
from repro.observability import get_registry, reset_registry

SRC = Path(__file__).resolve().parents[1] / "src"

QUERIES = {
    "ate": "Score[S] <= Prestige[A] ?",
    "agg": "AVG_Score[A] <= Prestige[A] ?",
}

WORKER_SPANS = {
    "worker.collect",
    "worker.store",
    "worker.merge",
    "worker.materialize",
    "worker.estimate",
}


@pytest.fixture(autouse=True)
def fresh_registry():
    registry = reset_registry()
    yield registry
    reset_registry()


def fresh_engine() -> CaRLEngine:
    return CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM)


def answer_pool(monkeypatch, *, no_inherit: bool):
    if no_inherit:
        monkeypatch.setenv(NO_INHERIT_ENV, "1")
    else:
        monkeypatch.delenv(NO_INHERIT_ENV, raising=False)
    engine = fresh_engine()
    return engine.answer_all(QUERIES, jobs=2, executor="process", shards=2)


def unit_inputs_counters(registry) -> Counter:
    """Multiset of worker-side cache counter events about shard partials."""
    return Counter(
        (event["event"], event["value"])
        for event in registry.events(kind="counter")
        if event.get("meta", {}).get("kind") == "unit_inputs"
    )


def span_index(registry):
    spans = registry.spans()
    by_id = {span["span"]: span for span in spans}
    roots = {
        span["trace"]: span
        for span in spans
        if span["event"] == "query" and not span["parent"]
    }
    return spans, by_id, roots


# ----------------------------------------------------------------------
# pool path (answer_all) — fork inherit and fork rebuild
# ----------------------------------------------------------------------
@pytest.mark.parametrize("no_inherit", [False, True], ids=["fork-inherit", "fork-rebuild"])
def test_pool_run_ships_worker_spans_with_valid_parents(monkeypatch, no_inherit):
    answers = answer_pool(monkeypatch, no_inherit=no_inherit)
    assert set(answers) == set(QUERIES)
    registry = get_registry()
    spans, by_id, roots = span_index(registry)
    assert len(roots) == len(QUERIES)

    worker_spans = [span for span in spans if span["event"] in WORKER_SPANS]
    assert {span["event"] for span in worker_spans} >= {
        "worker.collect",
        "worker.store",
        "worker.merge",
        "worker.materialize",
        "worker.estimate",
    }
    for span in worker_spans:
        # Worker ids are role-prefixed (p<pid>.s<n>): globally unique.
        assert "." in span["span"]
        # Stitched: the trace belongs to a dispatcher root, and the parent
        # is a span that exists — here the root itself (the pool path
        # parents worker phases directly under the query root).
        assert span["trace"] in roots
        assert span["parent"] == roots[span["trace"]]["span"]

    # The merged stream is observable: one worker.span_batch counter per
    # merged batch, and worker-side cache partial traffic in the totals.
    assert registry.counters().get("worker.span_batch", 0) > 0
    assert sum(unit_inputs_counters(registry).values()) > 0
    # One query.duration histogram observation per answered query.
    buckets = registry.histograms()["query.duration"]
    assert sum(buckets.values()) == len(QUERIES)


def test_fork_inherit_and_rebuild_transports_merge_identical_counters(monkeypatch):
    answer_pool(monkeypatch, no_inherit=False)
    inherit_counts = unit_inputs_counters(get_registry())
    inherit_names = Counter(
        span["event"] for span in get_registry().spans() if span["event"] in WORKER_SPANS
    )

    reset_registry()
    answer_pool(monkeypatch, no_inherit=True)
    rebuild_counts = unit_inputs_counters(get_registry())
    rebuild_names = Counter(
        span["event"] for span in get_registry().spans() if span["event"] in WORKER_SPANS
    )

    # Same workload => the same shard-partial cache traffic and the same
    # worker phase spans, whether the engine crossed by fork or by artifact.
    assert inherit_counts == rebuild_counts
    assert inherit_names == rebuild_names


# ----------------------------------------------------------------------
# scheduler path (open_session) — parents are the attempt's spans
# ----------------------------------------------------------------------
def test_scheduler_run_reparents_worker_spans_under_attempt_spans(tmp_path):
    registry = get_registry()
    engine = CaRLEngine(
        toy_review_database(), TOY_REVIEW_PROGRAM, cache=tmp_path / "cache"
    )
    with engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        assert len(dict(session.as_completed())) == len(QUERIES)

    spans, by_id, roots = span_index(registry)
    worker_spans = [span for span in spans if span["event"] in WORKER_SPANS]
    assert worker_spans
    for span in worker_spans:
        assert span["trace"] in roots
        parent = by_id.get(span["parent"])
        # The scheduler ships (trace, attempt-span) with each task: worker
        # phases hang off the originating query.collect / query.finish span.
        assert parent is not None
        assert parent["event"] in ("query.collect", "query.finish")
        assert parent["trace"] == span["trace"]
    # Merged records carry the shipping worker's id for attribution.
    assert all("worker" in span for span in worker_spans)
    # Queue-wait histograms come from the dispatcher side of the same run.
    assert sum(registry.histograms()["scheduler.queue_wait"].values()) > 0


# ----------------------------------------------------------------------
# true spawn + hash-seed determinism (subprocess)
# ----------------------------------------------------------------------
_SPAWN_SCRIPT = """
import json
import multiprocessing
import sys

multiprocessing.set_start_method("spawn", force=True)

from repro.carl.engine import CaRLEngine
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database
from repro.observability import get_registry, histogram_bucket, reset_registry

QUERIES = {
    "ate": "Score[S] <= Prestige[A] ?",
    "agg": "AVG_Score[A] <= Prestige[A] ?",
}

registry = reset_registry()
engine = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM)
answers = engine.answer_all(QUERIES, jobs=1, executor="process", shards=2)
assert set(answers) == set(QUERIES)

events = registry.events()
unit_inputs = sorted(
    (event["event"], event["value"])
    for event in events
    if event.get("kind") == "counter"
    and event.get("meta", {}).get("kind") == "unit_inputs"
)
worker_spans = sorted(
    (span["event"], span["parent"] == root_span)
    for span in registry.spans()
    for root_span in [
        {r["trace"]: r["span"] for r in registry.spans("query")}.get(span["trace"])
    ]
    if span["event"].startswith("worker.")
)
print(json.dumps({
    "order": [event["event"] for event in events],
    "unit_inputs": unit_inputs,
    "worker_spans": worker_spans,
    "counters": registry.counters(),
    "fixed_buckets": [histogram_bucket(v) for v in (0.0001, 0.004, 0.25, 3.0, 70.0)],
}, sort_keys=True))
"""


def _run_spawn(hashseed: str) -> dict:
    env = {
        **os.environ,
        "PYTHONPATH": str(SRC),
        "PYTHONHASHSEED": hashseed,
    }
    env.pop(NO_INHERIT_ENV, None)
    proc = subprocess.run(
        [sys.executable, "-c", _SPAWN_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_spawn_workers_merge_and_order_is_hash_seed_independent():
    first = _run_spawn("0")
    second = _run_spawn("1")
    # Spawn workers really shipped events: worker spans and partial traffic.
    assert first["unit_inputs"]
    assert any(name.startswith("worker.") for name in first["order"])
    assert all(parented for _, parented in first["worker_spans"])
    # The merged stream is deterministic across interpreter hash seeds:
    # same event order, same totals, same fixed-value buckets.
    assert first["order"] == second["order"]
    assert first["unit_inputs"] == second["unit_inputs"]
    assert first["worker_spans"] == second["worker_spans"]
    assert first["counters"] == second["counters"]
    assert first["fixed_buckets"] == second["fixed_buckets"]

    # And the spawn transport agrees with fork on the partial-cache traffic.
    registry = reset_registry()
    engine = fresh_engine()
    engine.answer_all(QUERIES, jobs=1, executor="process", shards=2)
    fork_unit_inputs = sorted(
        [event["event"], event["value"]]  # JSON round-trip: lists, not tuples
        for event in registry.events(kind="counter")
        if event.get("meta", {}).get("kind") == "unit_inputs"
    )
    assert fork_unit_inputs == first["unit_inputs"]
