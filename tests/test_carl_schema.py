"""Unit tests for the relational causal schema and its binding (repro.carl.schema)."""

from __future__ import annotations

import pytest

from repro.carl.errors import SchemaBindingError
from repro.carl.parser import parse_program
from repro.carl.schema import RelationalCausalSchema
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database


@pytest.fixture()
def schema() -> RelationalCausalSchema:
    return RelationalCausalSchema.from_program(parse_program(TOY_REVIEW_PROGRAM))


class TestSchema:
    def test_names(self, schema):
        assert set(schema.entity_names) == {"Person", "Submission", "Conference"}
        assert set(schema.relationship_names) == {"Author", "Submitted"}
        assert "Prestige" in schema.attribute_names

    def test_observed_and_latent(self, schema):
        assert "Quality" in schema.latent_attribute_names
        assert "Quality" not in schema.observed_attribute_names
        assert schema.is_observed("Score")
        assert not schema.is_observed("Quality")

    def test_subject_and_column(self, schema):
        assert schema.subject_of("Prestige") == "Person"
        assert schema.attribute_column("Prestige") == "prestige"

    def test_predicate_info_entity(self, schema):
        info = schema.predicate("Person")
        assert info.is_entity
        assert info.keys == ("person",)

    def test_predicate_info_relationship_resolves_entities(self, schema):
        info = schema.predicate("Author")
        assert not info.is_entity
        assert info.referenced_entities == ("Person", "Submission")

    def test_explicit_references_resolve(self):
        program = parse_program(
            "ENTITY Person(person); RELATIONSHIP Collab(a Person, b Person);"
        )
        schema = RelationalCausalSchema.from_program(program)
        info = schema.predicate("Collab")
        assert info.referenced_entities == ("Person", "Person")

    def test_unknown_lookups_raise(self, schema):
        with pytest.raises(SchemaBindingError):
            schema.predicate("Nope")
        with pytest.raises(SchemaBindingError):
            schema.attribute("Nope")

    def test_duplicate_declarations_rejected(self):
        program = parse_program("ENTITY Person(p); ENTITY Person(p);")
        with pytest.raises(SchemaBindingError):
            RelationalCausalSchema.from_program(program)
        program = parse_program("ATTRIBUTE X OF Person; ATTRIBUTE X OF Person;")
        with pytest.raises(SchemaBindingError):
            RelationalCausalSchema.from_program(program)

    def test_unresolvable_relationship_key(self):
        program = parse_program("ENTITY Person(person); RELATIONSHIP Owns(person, thing);")
        schema = RelationalCausalSchema.from_program(program)
        with pytest.raises(SchemaBindingError, match="thing"):
            schema.predicate("Owns")

    def test_attribute_on_unknown_subject_fails_validation(self):
        program = parse_program("ENTITY Person(person); ATTRIBUTE X OF Ghost;")
        schema = RelationalCausalSchema.from_program(program)
        with pytest.raises(SchemaBindingError, match="Ghost"):
            schema.validate()


class TestBoundInstance:
    def test_bind_toy_database(self, schema):
        bound = schema.bind(toy_review_database())
        assert set(bound.skeleton.table_names) == {
            "Person",
            "Submission",
            "Conference",
            "Author",
            "Submitted",
        }
        # Skeleton tables only hold the key columns.
        assert bound.skeleton.table("Person").columns == ("person",)

    def test_units(self, schema):
        bound = schema.bind(toy_review_database())
        assert set(bound.units("Prestige")) == {("Bob",), ("Carlos",), ("Eva",)}
        assert set(bound.units("Score")) == {("s1",), ("s2",), ("s3",)}

    def test_attribute_values(self, schema):
        bound = schema.bind(toy_review_database())
        assert bound.attribute_value("Prestige", ("Bob",)) == 1
        assert bound.attribute_value("Score", ("s2",)) == pytest.approx(0.4)
        assert bound.attribute_value("Quality", ("s1",)) is None  # latent
        assert bound.attribute_values("Blind")[("ConfDB",)] == "single"

    def test_missing_table_raises(self, schema):
        database = toy_review_database()
        database.drop_table("Submitted")
        with pytest.raises(SchemaBindingError, match="Submitted"):
            schema.bind(database)

    def test_missing_attribute_column_raises(self):
        program = parse_program(
            "ENTITY Person(person); ATTRIBUTE Height OF Person;"
        )
        schema = RelationalCausalSchema.from_program(program)
        with pytest.raises(SchemaBindingError, match="height"):
            schema.bind(toy_review_database())

    def test_missing_key_column_raises(self):
        program = parse_program("ENTITY Person(name); ATTRIBUTE Prestige OF Person;")
        schema = RelationalCausalSchema.from_program(program)
        with pytest.raises(SchemaBindingError, match="name"):
            schema.bind(toy_review_database())
