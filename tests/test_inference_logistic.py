"""Unit tests for logistic regression (repro.inference.logistic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference.logistic import LogisticRegression, _sigmoid
from repro.inference.regression import RegressionError


@pytest.fixture()
def logistic_data():
    rng = np.random.default_rng(3)
    features = rng.normal(size=(600, 2))
    logits = 0.5 + 1.5 * features[:, 0] - 1.0 * features[:, 1]
    labels = (rng.random(600) < 1.0 / (1.0 + np.exp(-logits))).astype(float)
    return features, labels


class TestFit:
    def test_recovers_coefficients(self, logistic_data):
        features, labels = logistic_data
        model = LogisticRegression().fit(features, labels)
        assert model.converged
        assert model.intercept == pytest.approx(0.5, abs=0.3)
        assert model.coefficients[0] == pytest.approx(1.5, abs=0.4)
        assert model.coefficients[1] == pytest.approx(-1.0, abs=0.4)

    def test_probabilities_in_unit_interval(self, logistic_data):
        features, labels = logistic_data
        model = LogisticRegression().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)

    def test_classification_accuracy(self, logistic_data):
        features, labels = logistic_data
        model = LogisticRegression().fit(features, labels)
        accuracy = float((model.predict(features) == labels).mean())
        assert accuracy > 0.75

    def test_log_likelihood_is_finite(self, logistic_data):
        features, labels = logistic_data
        model = LogisticRegression().fit(features, labels)
        assert np.isfinite(model.log_likelihood(features, labels))

    def test_separable_data_does_not_blow_up(self):
        # Perfectly separable data: the ridge penalty keeps coefficients finite.
        features = np.array([[-2.0], [-1.0], [1.0], [2.0]])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        model = LogisticRegression(regularization=1e-3).fit(features, labels)
        assert np.all(np.isfinite(model.coefficients))
        assert model.predict_proba(np.array([[3.0]]))[0] > 0.5

    def test_1d_features_accepted(self):
        features = np.array([0.0, 1.0, 2.0, 3.0])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        model = LogisticRegression().fit(features, labels)
        assert model.coefficients.shape == (1,)


class TestValidation:
    def test_non_binary_labels_rejected(self):
        with pytest.raises(RegressionError):
            LogisticRegression().fit(np.ones((3, 1)), np.array([0.0, 0.5, 1.0]))

    def test_empty_input_rejected(self):
        with pytest.raises(RegressionError):
            LogisticRegression().fit(np.empty((0, 1)), np.empty(0))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RegressionError):
            LogisticRegression().predict_proba(np.ones((1, 1)))

    def test_sigmoid_is_clipped(self):
        assert _sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert _sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0, abs=1e-12)
