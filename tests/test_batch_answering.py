"""Regression tests for `answer_all` as a concurrent batch executor.

The historical bugs pinned here:

- ``answer_all`` silently dropped the ``backend``, ``bootstrap`` and ``seed``
  options that ``answer`` accepts, so batch answers could differ from
  one-at-a-time answers issued with the same options;
- ``diagnostics`` and ``conditional_effects`` ignored the per-query
  ``backend`` override that ``answer``/``unit_table`` honor;
- ``QueryAnswer.grounding_seconds`` reported the engine's mutable
  last-grounding time, wrongly charging every later answer (including pure
  cache hits that never ground) for work it did not do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.carl.engine import CaRLEngine
from repro.carl.errors import QueryError
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database

#: A batch mixing every query family: plain ATE, aggregate-unified response,
#: treatment threshold (two variants over the same attribute pair, which the
#: batch executor shares one graph walk for), and a peer-effects query.
QUERIES = {
    "ate": "Score[S] <= Prestige[A] ?",
    "agg": "AVG_Score[A] <= Prestige[A] ?",
    "thresh": "AVG_Score[A] <= Prestige[A] >= 1 ?",
    "peers": "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
}


def fresh_engine(**kwargs) -> CaRLEngine:
    return CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, **kwargs)


def result_key(answer):
    """Every numeric field of an answer that must match bit-for-bit."""
    result = answer.result
    if hasattr(result, "ate"):
        return (
            result.ate,
            result.naive_difference,
            result.treated_mean,
            result.control_mean,
            result.correlation,
            result.n_units,
            result.confidence_interval,
        )
    return (
        result.aie,
        result.are,
        result.aoe,
        result.naive_difference,
        result.correlation,
        result.n_units,
    )


class TestKwargsForwarding:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_batch_forwards_backend_bootstrap_seed(self, jobs):
        options = {"backend": "rows", "bootstrap": 20, "seed": 7}
        serial_engine = fresh_engine()
        serial = {
            name: serial_engine.answer(query, **options) for name, query in QUERIES.items()
        }
        batch = fresh_engine().answer_all(QUERIES, jobs=jobs, **options)
        assert list(batch) == list(QUERIES)
        for name in QUERIES:
            assert result_key(batch[name]) == result_key(serial[name]), name

    def test_bootstrap_actually_reaches_the_estimator(self):
        answers = fresh_engine().answer_all({"ate": QUERIES["ate"]}, bootstrap=10, seed=1)
        assert answers["ate"].result.confidence_interval is not None

    @pytest.mark.parametrize("seed", [1, 2])
    def test_seed_forwarded_to_bootstrap(self, seed):
        serial = fresh_engine().answer(QUERIES["ate"], bootstrap=25, seed=seed)
        batch = fresh_engine().answer_all({"ate": QUERIES["ate"]}, bootstrap=25, seed=seed)
        assert (
            batch["ate"].result.confidence_interval == serial.result.confidence_interval
        )


class TestConcurrentExecutor:
    def test_parallel_batch_identical_to_serial_columnar(self):
        serial_engine = fresh_engine()
        serial = {name: serial_engine.answer(query) for name, query in QUERIES.items()}
        batch = fresh_engine().answer_all(QUERIES, jobs=4)
        for name in QUERIES:
            assert result_key(batch[name]) == result_key(serial[name]), name

    def test_parallel_batch_grounds_once(self):
        engine = fresh_engine()
        engine.answer_all(QUERIES, jobs=4)
        assert engine.grounding_runs == 1

    def test_list_batch_keeps_index_keys(self):
        answers = fresh_engine().answer_all(list(QUERIES.values()), jobs=2)
        assert list(answers) == [str(index) for index in range(len(QUERIES))]

    def test_jobs_must_be_positive(self):
        with pytest.raises(QueryError, match="jobs"):
            fresh_engine().answer_all(QUERIES, jobs=0)
        with pytest.raises(QueryError, match="jobs"):
            fresh_engine().answer_all(QUERIES, jobs=-2)

    def test_jobs_none_selects_cpu_count(self):
        answers = fresh_engine().answer_all(QUERIES, jobs=None)
        assert set(answers) == set(QUERIES)

    def test_bad_query_raises_before_workers_start(self):
        engine = fresh_engine()
        with pytest.raises(Exception):
            engine.answer_all(["this is not a query"], jobs=4)
        assert engine.grounding_runs == 0


class TestGroundingAttribution:
    def test_first_answer_charged_later_answers_zero(self):
        engine = fresh_engine()
        first = engine.answer(QUERIES["ate"])
        second = engine.answer(QUERIES["agg"])
        assert first.grounding_seconds > 0.0
        assert second.grounding_seconds == 0.0

    def test_unit_table_cache_hit_reports_zero(self, tmp_path):
        fresh_engine(cache=tmp_path).answer(QUERIES["ate"])
        warm = fresh_engine(cache=tmp_path)
        answer = warm.answer(QUERIES["ate"])
        # The warm answer never touches the graph: no grounding happened, so
        # none may be reported.
        assert warm.grounding_runs == 0
        assert answer.grounding_seconds == 0.0

    def test_batch_answers_not_charged_for_shared_grounding(self):
        answers = fresh_engine().answer_all(QUERIES, jobs=4)
        # The one grounding ran up front in answer_all, before any worker.
        assert all(answer.grounding_seconds == 0.0 for answer in answers.values())


class TestBackendOverrideThreading:
    def test_diagnostics_honors_backend(self, toy_engine):
        rows = toy_engine.diagnostics(QUERIES["agg"], backend="rows")
        columnar = toy_engine.diagnostics(QUERIES["agg"], backend="columnar")
        assert [entry.name for entry in rows.covariates] == [
            entry.name for entry in columnar.covariates
        ]
        for mine, theirs in zip(rows.covariates, columnar.covariates):
            assert mine.smd_unadjusted == theirs.smd_unadjusted
            assert mine.smd_weighted == theirs.smd_weighted

    def test_diagnostics_rejects_unknown_backend(self, toy_engine):
        with pytest.raises(QueryError, match="backend"):
            toy_engine.diagnostics(QUERIES["agg"], backend="nope")

    def test_conditional_effects_honors_backend(self, toy_engine):
        rows = toy_engine.conditional_effects(QUERIES["agg"], backend="rows")
        columnar = toy_engine.conditional_effects(QUERIES["agg"], backend="columnar")
        assert np.array_equal(rows, columnar)

    def test_conditional_effects_rejects_unknown_backend(self, toy_engine):
        with pytest.raises(QueryError, match="backend"):
            toy_engine.conditional_effects(QUERIES["agg"], backend="nope")
