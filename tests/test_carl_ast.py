"""Unit tests for AST node behaviour (repro.carl.ast)."""

from __future__ import annotations

import pytest

from repro.carl.ast import (
    AttributeAtom,
    Comparison,
    Condition,
    PeerCondition,
    PredicateAtom,
    Program,
    RelationshipDeclaration,
    Variable,
)


class TestAtoms:
    def test_attribute_atom_str(self):
        atom = AttributeAtom("Score", (Variable("S"),))
        assert str(atom) == "Score[S]"

    def test_predicate_atom_with_constant(self):
        atom = PredicateAtom("Author", (Variable("A"), "s1"))
        assert str(atom) == 'Author(A, "s1")'
        assert atom.variables == (Variable("A"),)

    def test_atoms_are_hashable_and_comparable(self):
        a1 = AttributeAtom("Score", (Variable("S"),))
        a2 = AttributeAtom("Score", (Variable("S"),))
        assert a1 == a2
        assert hash(a1) == hash(a2)


class TestComparison:
    def test_operators(self):
        left = Variable("X")
        assert Comparison(left, "=", 3).evaluate(3)
        assert Comparison(left, "!=", 3).evaluate(4)
        assert Comparison(left, "<", 3).evaluate(2)
        assert Comparison(left, "<=", 3).evaluate(3)
        assert Comparison(left, ">", 3).evaluate(4)
        assert Comparison(left, ">=", 3).evaluate(3)

    def test_none_never_satisfies(self):
        assert not Comparison(Variable("X"), "=", None).evaluate(None)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            Comparison(Variable("X"), "~", 3)

    def test_str_quotes_strings(self):
        comparison = Comparison(AttributeAtom("Blind", (Variable("C"),)), "=", "single")
        assert str(comparison) == 'Blind[C] = "single"'


class TestCondition:
    def test_trivial_condition(self):
        assert Condition().is_trivial
        assert str(Condition()) == "TRUE"

    def test_variables_are_deduplicated_in_order(self):
        condition = Condition(
            atoms=(
                PredicateAtom("Author", (Variable("A"), Variable("S"))),
                PredicateAtom("Submitted", (Variable("S"), Variable("C"))),
            ),
            comparisons=(Comparison(AttributeAtom("Blind", (Variable("C"),)), "=", "x"),),
        )
        assert [v.name for v in condition.variables] == ["A", "S", "C"]


class TestRelationshipDeclaration:
    def test_default_references_match_arity(self):
        declaration = RelationshipDeclaration("Author", ("person", "sub"))
        assert declaration.references == (None, None)

    def test_reference_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RelationshipDeclaration("Author", ("person", "sub"), references=("Person",))


class TestPeerCondition:
    def test_all_and_none(self):
        assert PeerCondition("ALL").treated_fraction(5) == 1.0
        assert PeerCondition("NONE").treated_fraction(5) == 0.0

    def test_value_constraints(self):
        with pytest.raises(ValueError):
            PeerCondition("ALL", value=3)
        with pytest.raises(ValueError):
            PeerCondition("AT_LEAST")
        with pytest.raises(ValueError):
            PeerCondition("SOMETIMES", value=1)

    def test_percent_conditions(self):
        assert PeerCondition("MORE_THAN_PERCENT", 40).treated_fraction(10) == pytest.approx(0.4)
        assert PeerCondition("LESS_THAN_PERCENT", 250).treated_fraction(10) == 1.0

    def test_count_conditions_scale_by_peer_count(self):
        assert PeerCondition("AT_LEAST", 2).treated_fraction(4) == 0.5
        assert PeerCondition("AT_LEAST", 2).treated_fraction(1) == 1.0
        assert PeerCondition("EXACTLY", 3).treated_fraction(0) == 0.0

    def test_str_forms(self):
        assert str(PeerCondition("ALL")) == "ALL"
        assert str(PeerCondition("AT_MOST", 2)) == "AT MOST 2"
        assert "%" in str(PeerCondition("MORE_THAN_PERCENT", 30))


class TestProgram:
    def test_merge_concatenates(self):
        first = Program()
        second = Program()
        first.entities.append(RelationshipDeclaration("R", ("a", "b")))  # type: ignore[arg-type]
        merged = first.merge(second)
        assert len(merged.entities) == 1
        # merge returns a new object; mutating it does not affect the inputs
        merged.entities.clear()
        assert len(first.entities) == 1
