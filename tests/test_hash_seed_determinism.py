"""Cross-``PYTHONHASHSEED`` determinism of warm-cache answers.

The v1 grounding artifact relied on hash-driven ``set`` iteration matching
between the process that grounded and the process that loaded — which does
not hold when a spawn worker (or any later session) runs under a different
``PYTHONHASHSEED``.  The CSR layout makes every adjacency order a function
of node ids only, so a graph grounded under one hash seed and answered warm
under another must produce bit-identical results.

The test runs real subprocesses with pinned, *different* hash seeds against
one shared cache directory, evicts the unit-table artifacts in between so
the warm run has to redo the graph walks from the loaded grounding, and
compares every float field of every answer by exact bit pattern.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cache import ArtifactCache

SRC = Path(__file__).resolve().parent.parent / "src"

#: Answers one engine session over the quickstart query shapes (plain ATE,
#: effect triple under a peer condition, restricted ATE) and prints every
#: float field of every result as a hex bit pattern.
SESSION_SCRIPT = """
import json, sys
from repro import CaRLEngine
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database

queries = [
    "AVG_Score[A] <= Prestige[A] ?",
    "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
    'Score[S] <= Prestige[A] ? WHERE Submitted(S, C), Blind[C] = "double"',
]
engine = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=sys.argv[1])
answers = []
for query in queries:
    result = engine.answer(query).result
    answers.append(
        {
            name: float(value).hex()
            for name, value in sorted(vars(result).items())
            if isinstance(value, float)
        }
    )
print(json.dumps({"grounded": engine.grounder.ground_count, "answers": answers}))
"""


def run_session(tmp_path: Path, cache_root: Path, hash_seed: str) -> dict:
    script = tmp_path / "session.py"
    script.write_text(SESSION_SCRIPT)
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (str(SRC), env.get("PYTHONPATH")) if part
    )
    completed = subprocess.run(
        [sys.executable, str(script), str(cache_root)],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout)


def test_warm_answers_bit_identical_under_different_hash_seed(tmp_path):
    cache_root = tmp_path / "cache"

    cold = run_session(tmp_path, cache_root, hash_seed="1")
    assert cold["grounded"] == 1  # grounded once, artifacts stored

    # Evict the unit tables and shard partials but keep the grounding: the
    # warm session must redo peers/covariates/unit-table collection from the
    # *loaded* CSR graph, under a different hash seed.
    cache = ArtifactCache(cache_root)
    cleared_tables, _ = cache.clear(kind="unit_table")
    cache.clear(kind="unit_inputs")
    assert cleared_tables > 0

    warm = run_session(tmp_path, cache_root, hash_seed="4242")
    assert warm["grounded"] == 0  # answered from the warm grounding artifact
    assert warm["answers"] == cold["answers"]  # bit-identical, field by field
