"""Fault-injection suite (``docs/fault_injection.md``).

Contracts held here:

* **plan determinism** — whether a rule fires is a pure sha256 function of
  (seed, site, scope, occurrence): stable across calls, processes and
  ``PYTHONHASHSEED`` values; plans round-trip through JSON; unknown sites
  and malformed rules are rejected at construction;
* **injection runtime** — sites fire only under an installed plan,
  worker-only sites never fire (or count occurrences) outside a declared
  worker process, per-rule ``limit`` bounds fires, every fire is counted on
  the ``fault.injected`` telemetry event;
* **recovery** — under seeded plans the process scheduler absorbs worker
  crashes, hangs, torn writes, corrupt artifacts and ENOSPC: every query
  resolves bit-identical to the no-fault serial answer (or as a structured
  ``QueryError``), backed by retries-with-seeded-backoff, heartbeat hang
  detection, quarantine-and-rebuild, degrade-to-uncached and the pool
  circuit breaker's serial fallback;
* **replay** — the ``repro chaos`` harness produces the same digest for the
  same plan and seed across runs and across ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import types

import numpy as np
import pytest

from repro.cache.store import ArtifactCache, CacheKey
from repro.carl.engine import CaRLEngine
from repro.carl.errors import QueryError
from repro.carl.queries import QueryAnswer
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database
from repro.faults.injection import (
    PLAN_ENV,
    active_plan,
    clear_plan,
    fault_point,
    install_plan,
    set_role,
)
from repro.faults.plan import (
    FaultPlan,
    FaultRule,
    PlanError,
    rule_fires,
    seeded_fraction,
)
from repro.faults.sites import FAULT_SITES
from repro.observability.telemetry import reset_registry
from repro.service.scheduler import ShardScheduler

QUERIES = {
    "ate": "Score[S] <= Prestige[A] ?",
    "agg": "AVG_Score[A] <= Prestige[A] ?",
    "thresh": "AVG_Score[A] <= Prestige[A] >= 1 ?",
    "peers": "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
}


@pytest.fixture(autouse=True)
def no_leaked_plan():
    """No fault plan (or worker role, or telemetry) leaks across tests."""
    clear_plan()
    set_role("main")
    registry = reset_registry()
    yield registry
    clear_plan()
    set_role("main")
    reset_registry()


def fresh_engine(**kwargs) -> CaRLEngine:
    return CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, **kwargs)


def answer_fingerprint(answer: QueryAnswer):
    result = answer.result
    if hasattr(result, "ate"):
        fields = (
            result.ate, result.naive_difference, result.treated_mean,
            result.control_mean, result.correlation, result.n_units,
            result.n_treated, result.n_control, result.confidence_interval,
        )
    else:
        fields = (
            result.aie, result.are, result.aoe, result.naive_difference,
            result.correlation, result.n_units, result.mean_peer_count,
        )
    return repr(fields) + repr(answer.unit_table_summary)


@pytest.fixture(scope="module")
def serial_answers():
    engine = fresh_engine()
    return {
        name: answer_fingerprint(engine.answer(query))
        for name, query in QUERIES.items()
    }


def toy_key(kind: str = "grounding", detail: str = "") -> CacheKey:
    return CacheKey(database="ab12", program="cd34", kind=kind, detail=detail)


def toy_payload() -> dict[str, np.ndarray]:
    return {"values": np.arange(6, dtype=np.float64)}


# ----------------------------------------------------------------------
# the frozen site catalogue
# ----------------------------------------------------------------------
def test_fault_site_catalogue_is_frozen():
    """Site names and worker-only flags are a published contract: plans and
    the lint rule refer to them by name.  Extending is fine — update this
    pin deliberately; renames break recorded plans."""
    assert {
        name: site.worker_only for name, site in FAULT_SITES.items()
    } == {
        "worker.crash": True,
        "worker.hang": True,
        "worker.slow": True,
        "worker.result_stall": True,
        "store.corrupt_read": False,
        "store.enospc": False,
        "store.torn_write": True,
        "daemon.route_stall": False,
        "session.deliver_stall": False,
    }
    for site in FAULT_SITES.values():
        assert site.default_delay >= 0.0


# ----------------------------------------------------------------------
# plan construction + JSON round-trip
# ----------------------------------------------------------------------
def test_rule_rejects_malformed_inputs():
    with pytest.raises(PlanError, match="unknown fault site"):
        FaultRule(site="worker.explode")
    with pytest.raises(PlanError, match="probability"):
        FaultRule(site="worker.crash", p=1.5)
    with pytest.raises(PlanError, match="limit"):
        FaultRule(site="worker.crash", limit=-1)
    with pytest.raises(PlanError, match="delay"):
        FaultRule(site="worker.slow", delay=-0.5)


def test_plan_json_round_trip_is_exact():
    plan = FaultPlan(
        seed=42,
        rules=(
            FaultRule(site="worker.crash", p=0.25, limit=2, workers=(0, 3)),
            FaultRule(site="worker.hang", at=(1, 4), delay=0.5),
            FaultRule(site="store.enospc", at=(0,)),
        ),
    )
    assert FaultPlan.from_json(plan.to_json()) == plan
    # Lists from JSON normalize to the same tuples Python-built rules use.
    assert FaultPlan.from_json(plan.to_json()).to_json() == plan.to_json()


def test_plan_json_rejects_malformed_documents():
    with pytest.raises(PlanError, match="not valid JSON"):
        FaultPlan.from_json("{nope")
    with pytest.raises(PlanError, match="JSON object"):
        FaultPlan.from_json("[1, 2]")
    with pytest.raises(PlanError, match="'rules' must be a list"):
        FaultPlan.from_json('{"seed": 1, "rules": {}}')
    with pytest.raises(PlanError, match="unknown fields"):
        FaultPlan.from_json(
            '{"rules": [{"site": "worker.crash", "chance": 0.5}]}'
        )
    with pytest.raises(PlanError, match="object with a 'site'"):
        FaultPlan.from_json('{"rules": [{"p": 0.5}]}')


# ----------------------------------------------------------------------
# firing decisions: pure, seeded, scope-aware
# ----------------------------------------------------------------------
def test_seeded_fraction_is_stable_and_seed_sensitive():
    a = seeded_fraction(7, "worker.crash", "worker:0", 3)
    assert a == seeded_fraction(7, "worker.crash", "worker:0", 3)
    assert 0.0 <= a < 1.0
    assert a != seeded_fraction(8, "worker.crash", "worker:0", 3)
    assert a != seeded_fraction(7, "worker.crash", "worker:1", 3)


def test_rule_fires_pinning_and_probability():
    pinned = FaultRule(site="worker.crash", at=(2,))
    assert not rule_fires(pinned, 0, "worker:0", 0)
    assert rule_fires(pinned, 0, "worker:0", 2)

    by_worker = FaultRule(site="worker.crash", at=(0,), workers=(1,))
    assert not rule_fires(by_worker, 0, "main", 0)
    assert not rule_fires(by_worker, 0, "worker:0", 0)
    assert rule_fires(by_worker, 0, "worker:1", 0)

    always = FaultRule(site="worker.crash", p=1.0)
    never = FaultRule(site="worker.crash", p=0.0)
    for occurrence in range(5):
        assert rule_fires(always, 9, "worker:0", occurrence)
        assert not rule_fires(never, 9, "worker:0", occurrence)


def test_rule_fires_probabilistic_decision_matches_the_coin():
    rule = FaultRule(site="worker.crash", p=0.5)
    for occurrence in range(20):
        expected = seeded_fraction(3, "worker.crash", "worker:0", occurrence) < 0.5
        assert rule_fires(rule, 3, "worker:0", occurrence) is expected


# ----------------------------------------------------------------------
# the injection runtime
# ----------------------------------------------------------------------
def test_fault_point_without_plan_is_inert():
    assert fault_point("store.enospc") is None
    assert fault_point("worker.crash") is None


def test_fault_point_rejects_unregistered_site():
    with pytest.raises(PlanError, match="unregistered site"):
        fault_point("store.no_such_site")


def test_install_plan_mirrors_into_environment():
    plan = FaultPlan(seed=5, rules=(FaultRule(site="store.enospc", at=(0,)),))
    install_plan(plan)
    assert os.environ.get(PLAN_ENV) == plan.to_json()
    assert active_plan() == plan
    clear_plan()
    assert PLAN_ENV not in os.environ
    assert active_plan() is None


def test_environment_plan_is_inherited_and_broken_env_ignored():
    plan = FaultPlan(seed=5, rules=(FaultRule(site="store.enospc", p=1.0),))
    os.environ[PLAN_ENV] = plan.to_json()
    try:
        assert active_plan() == plan  # read lazily, as a child would
    finally:
        clear_plan()
    os.environ[PLAN_ENV] = "{broken"
    try:
        assert active_plan() is None  # never takes the host process down
        assert fault_point("store.enospc") is None
    finally:
        clear_plan()


def test_worker_only_sites_neither_fire_nor_count_outside_workers():
    install_plan(
        FaultPlan(seed=0, rules=(FaultRule(site="worker.crash", at=(0,)),))
    )
    # Dispatcher-side traffic through the shared code path: no fire, and no
    # occurrence consumed from the worker stream.
    for _ in range(3):
        assert fault_point("worker.crash") is None
    set_role("worker", 0)
    decision = fault_point("worker.crash")  # still occurrence 0
    assert decision is not None
    assert decision.rule.at == (0,)


def test_rule_limit_bounds_fires_per_process():
    install_plan(
        FaultPlan(seed=0, rules=(FaultRule(site="store.enospc", p=1.0, limit=2),))
    )
    fired = [fault_point("store.enospc") is not None for _ in range(4)]
    assert fired == [True, True, False, False]


def test_fault_decision_delay_prefers_rule_override():
    install_plan(
        FaultPlan(
            seed=0,
            rules=(
                FaultRule(site="session.deliver_stall", at=(0,), delay=1.25),
                FaultRule(site="session.deliver_stall", at=(1,)),
            ),
        )
    )
    assert fault_point("session.deliver_stall").delay == 1.25
    assert (
        fault_point("session.deliver_stall").delay
        == FAULT_SITES["session.deliver_stall"].default_delay
    )


def test_fires_are_counted_on_fault_injected_telemetry(no_leaked_plan):
    install_plan(
        FaultPlan(seed=0, rules=(FaultRule(site="store.enospc", at=(0,)),))
    )
    assert fault_point("store.enospc", key="grounding") is not None
    assert no_leaked_plan.counters()["fault.injected"] == 1
    (event,) = no_leaked_plan.events("fault.injected")
    assert event["meta"]["site"] == "store.enospc"
    assert event["meta"]["key"] == "grounding"


# ----------------------------------------------------------------------
# seeded backoff between retry requeues
# ----------------------------------------------------------------------
def backoff_task(attempts: int) -> types.SimpleNamespace:
    return types.SimpleNamespace(kind="collect", id=3, attempts=attempts)


def test_backoff_is_seeded_exponential_with_bounded_jitter():
    scheduler = ShardScheduler(None, jobs=1, shards=1, retries=2, backend="columnar")
    previous_exponential = 0.0
    for attempts in range(1, 8):
        delay = scheduler._backoff_seconds(backoff_task(attempts))
        exponential = min(2.0, 0.05 * 2 ** (attempts - 1))
        # jitter multiplier lands in [0.5, 1.0)
        assert exponential * 0.5 <= delay < exponential
        assert delay == scheduler._backoff_seconds(backoff_task(attempts))
        assert exponential >= previous_exponential  # capped, never shrinking
        previous_exponential = exponential


def test_backoff_is_deterministic_across_schedulers_and_disablable():
    a = ShardScheduler(None, jobs=1, shards=1, retries=2, backend="columnar")
    b = ShardScheduler(None, jobs=1, shards=1, retries=2, backend="columnar")
    assert a._backoff_seconds(backoff_task(2)) == b._backoff_seconds(backoff_task(2))
    seeded = ShardScheduler(
        None, jobs=1, shards=1, retries=2, backend="columnar", backoff_seed=1
    )
    assert a._backoff_seconds(backoff_task(2)) != seeded._backoff_seconds(
        backoff_task(2)
    )
    disabled = ShardScheduler(
        None, jobs=1, shards=1, retries=2, backend="columnar", backoff_base=0.0
    )
    assert disabled._backoff_seconds(backoff_task(5)) == 0.0


# ----------------------------------------------------------------------
# artifact store: ENOSPC degrade, quarantine, torn-write reap
# ----------------------------------------------------------------------
def test_enospc_degrades_store_then_self_heals(tmp_path, no_leaked_plan):
    cache = ArtifactCache(tmp_path / "cache")
    install_plan(
        FaultPlan(seed=0, rules=(FaultRule(site="store.enospc", at=(0,)),))
    )
    assert cache.store(toy_key(), toy_payload()) is None  # dropped, not raised
    assert cache.degraded
    assert cache.stats.store_error_count() == 1
    assert cache.stats.summary()["grounding"]["store_errors"] == 1
    assert no_leaked_plan.counters()["cache.store_error"] == 1
    assert no_leaked_plan.gauges()["cache.degraded"] == 1.0
    # The next store retries the disk; the first success clears the flag.
    assert cache.store(toy_key(), toy_payload()) is not None
    assert not cache.degraded
    assert no_leaked_plan.gauges()["cache.degraded"] == 0.0
    loaded = cache.load(toy_key())
    assert loaded is not None
    np.testing.assert_array_equal(loaded["values"], toy_payload()["values"])


def test_truncated_artifact_is_quarantined_not_reread(tmp_path):
    """Regression: a truncated npz used to fail every later load of the same
    key; now the corrupt file moves to ``quarantine/`` (a miss, counted) and
    the next store rebuilds the artifact."""
    cache = ArtifactCache(tmp_path / "cache")
    key = toy_key(kind="unit_table", detail="beef")
    path = cache.store(key, toy_payload())
    assert path is not None
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

    assert cache.load(key) is None  # a miss, never an exception
    assert not path.exists()  # moved out of the cache namespace
    assert cache.stats.quarantined_count("unit_table") == 1
    assert cache.stats.summary()["unit_table"]["quarantined"] == 1
    (quarantined,) = cache.quarantined_files()
    assert quarantined.name.endswith(".quarantined")
    assert not cache.contains(key)

    assert cache.store(key, toy_payload()) is not None  # rebuild succeeds
    assert cache.load(key) is not None


def test_corrupt_read_fault_site_drives_quarantine(tmp_path, no_leaked_plan):
    cache = ArtifactCache(tmp_path / "cache")
    key = toy_key()
    assert cache.store(key, toy_payload()) is not None
    install_plan(
        FaultPlan(seed=0, rules=(FaultRule(site="store.corrupt_read", at=(0,)),))
    )
    assert cache.load(key) is None
    assert cache.stats.quarantined_count() == 1
    assert no_leaked_plan.counters()["cache.quarantined"] == 1
    clear_plan()
    assert cache.store(key, toy_payload()) is not None
    assert cache.load(key) is not None


def test_reap_temp_files_removes_stale_torn_writes(tmp_path):
    cache = ArtifactCache(tmp_path / "cache")
    key = toy_key()
    assert cache.store(key, toy_payload()) is not None
    torn = cache.path_for(key).parent / f".{key.file_name}.dead1234.tmp"
    torn.write_bytes(b"half an artifact")
    assert cache.reap_temp_files(max_age_seconds=3600.0) == 0  # too fresh
    assert cache.reap_temp_files(max_age_seconds=0.0) == 1
    assert not torn.exists()
    assert cache.load(key) is not None  # real artifacts untouched


# ----------------------------------------------------------------------
# scheduler recovery under seeded plans (process pool)
# ----------------------------------------------------------------------
def run_session(engine, plan, queries, *, jobs=2, retries=3, hang_timeout=None,
                timeout=None, repeat=1, deadline=120.0):
    """Run ``queries`` through a process session under ``plan``; returns
    (outcomes-by-name, scheduler stats)."""
    install_plan(plan)
    try:
        kwargs = {} if hang_timeout is None else {"hang_timeout": hang_timeout}
        with engine.open_session(
            jobs=jobs, executor="process", retries=retries, **kwargs
        ) as session:
            submitted = {}
            for round_index in range(repeat):
                for name, text in queries.items():
                    index = session.submit(text, timeout=timeout)
                    submitted[index] = f"{name}#{round_index}"
            outcomes = {
                submitted[index]: outcome
                for index, outcome in session.as_completed(timeout=deadline)
            }
            stats = session.stats()["scheduler"]
        return outcomes, stats
    finally:
        clear_plan()


def assert_matches_serial(outcomes, serial_answers):
    for name, outcome in outcomes.items():
        assert isinstance(outcome, QueryAnswer), f"{name}: {outcome}"
        assert answer_fingerprint(outcome) == serial_answers[name.split("#", 1)[0]]


def test_worker_crash_once_is_retried_and_answers_match_serial(serial_answers):
    plan = FaultPlan(
        seed=11, rules=(FaultRule(site="worker.crash", workers=(0,), at=(0,)),)
    )
    outcomes, stats = run_session(fresh_engine(), plan, QUERIES)
    assert len(outcomes) == len(QUERIES)
    assert_matches_serial(outcomes, serial_answers)
    assert stats["worker_deaths"] == 1  # the replacement is not re-killed
    assert stats["retries"] >= 1


def test_hung_worker_is_detected_by_heartbeat_and_replaced(serial_answers):
    plan = FaultPlan(
        seed=0, rules=(FaultRule(site="worker.hang", workers=(0,), at=(0,)),)
    )
    queries = {"ate": QUERIES["ate"]}
    outcomes, stats = run_session(
        fresh_engine(), plan, queries, jobs=1, hang_timeout=1.0
    )
    assert_matches_serial(outcomes, serial_answers)
    assert stats["worker_hangs"] == 1
    assert stats["retries"] >= 1


def test_circuit_breaker_falls_back_to_serial_answers(serial_answers):
    # Every worker task crashes, forever: the pool is unusable.  The breaker
    # must trip and answer every query serially in-process, bit-identical.
    plan = FaultPlan(seed=0, rules=(FaultRule(site="worker.crash", p=1.0),))
    queries = {"ate": QUERIES["ate"], "agg": QUERIES["agg"]}
    outcomes, stats = run_session(
        fresh_engine(), plan, queries, jobs=1, retries=10
    )
    assert_matches_serial(outcomes, serial_answers)
    assert stats["circuit_open"] == 1
    assert stats["serial_fallbacks"] >= 1


def test_torn_write_never_visible_and_temp_reaped(tmp_path, serial_answers):
    # Worker 0 dies between its temp write and the atomic rename.  No reader
    # may ever see the partial artifact; the orphaned .tmp is reapable.
    root = tmp_path / "cache"
    plan = FaultPlan(
        seed=0, rules=(FaultRule(site="store.torn_write", workers=(0,), at=(0,)),)
    )
    outcomes, stats = run_session(
        fresh_engine(cache=ArtifactCache(root)), plan, QUERIES
    )
    assert_matches_serial(outcomes, serial_answers)
    assert stats["worker_deaths"] >= 1
    cache = ArtifactCache(root)
    assert cache.reap_temp_files(max_age_seconds=0.0) >= 1
    # Every artifact that did land decodes — nothing half-written is visible.
    for npz in sorted(root.rglob("*.npz")):
        np.load(npz, allow_pickle=False).close()


def test_deadline_expiry_kills_the_stuck_worker_and_pool_recovers(serial_answers):
    # Worker 0's first task sleeps far past the query deadline.  The expired
    # query must yield a structured timeout error AND free the pool slot (the
    # stuck worker is killed and replaced), so the next query still runs.
    plan = FaultPlan(
        seed=0,
        rules=(FaultRule(site="worker.slow", workers=(0,), at=(0,), delay=30.0),),
    )
    install_plan(plan)
    try:
        engine = fresh_engine()
        with engine.open_session(jobs=1, executor="process", retries=0) as session:
            slow = session.submit(QUERIES["ate"], timeout=0.75)
            outcomes = dict(session.as_completed(timeout=60.0))
            assert isinstance(outcomes[slow], QueryError)
            assert "timed out" in str(outcomes[slow])
            follow_up = session.submit(QUERIES["agg"])
            for index, outcome in session.as_completed(timeout=60.0):
                if index == follow_up:
                    assert isinstance(outcome, QueryAnswer)
                    assert (
                        answer_fingerprint(outcome) == serial_answers["agg"]
                    )
            stats = session.stats()["scheduler"]
            assert stats["timeouts"] == 1
            assert stats["workers_killed"] >= 1
    finally:
        clear_plan()


def test_storm_plan_answers_stay_bit_identical_warm_and_cold(serial_answers):
    from repro.faults.chaos import default_plan

    outcomes, stats = run_session(
        fresh_engine(), default_plan(seed=7), QUERIES, repeat=2
    )
    assert len(outcomes) == 2 * len(QUERIES)
    assert_matches_serial(outcomes, serial_answers)


# ----------------------------------------------------------------------
# the chaos harness: replay across runs and hash seeds
# ----------------------------------------------------------------------
def run_chaos_cli(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH")) if p
    )
    env.pop(PLAN_ENV, None)
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "chaos",
            "--demo", "toy", "--seed", "7", "--jobs", "2", "--repeat", "1",
            "--deadline", "240", "--json",
        ],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout)


def test_chaos_digest_replays_across_hash_seeds():
    first = run_chaos_cli("0")
    second = run_chaos_cli("1")
    assert first["verdict"] == "ok"
    assert second["verdict"] == "ok"
    assert first["digest"] == second["digest"]
    assert first["queries"] == len(QUERIES)
    assert not first["mismatches"] and not first["unresolved"]
