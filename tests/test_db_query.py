"""Unit tests for conjunctive-query evaluation (repro.db.query)."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.query import Atom, ConjunctiveQuery, QueryError, Variable


@pytest.fixture()
def review_db() -> Database:
    """The skeleton of the Figure 2 instance (key-only predicate tables)."""
    db = Database("skeleton")
    db.load_rows("Person", [{"person": p} for p in ("Bob", "Carlos", "Eva")])
    db.load_rows("Submission", [{"sub": s} for s in ("s1", "s2", "s3")])
    db.load_rows(
        "Author",
        [
            {"person": "Bob", "sub": "s1"},
            {"person": "Eva", "sub": "s1"},
            {"person": "Eva", "sub": "s2"},
            {"person": "Eva", "sub": "s3"},
            {"person": "Carlos", "sub": "s3"},
        ],
    )
    db.load_rows(
        "Submitted",
        [
            {"sub": "s1", "conf": "ConfDB"},
            {"sub": "s2", "conf": "ConfAI"},
            {"sub": "s3", "conf": "ConfAI"},
        ],
    )
    return db


def var(name: str) -> Variable:
    return Variable(name)


class TestEvaluation:
    def test_single_atom_enumerates_rows(self, review_db):
        query = ConjunctiveQuery([Atom("Person", (var("A"),))])
        bindings = query.evaluate(review_db)
        assert {binding["A"] for binding in bindings} == {"Bob", "Carlos", "Eva"}

    def test_join_over_shared_variable(self, review_db):
        query = ConjunctiveQuery(
            [Atom("Author", (var("A"), var("S"))), Atom("Submitted", (var("S"), var("C")))]
        )
        bindings = query.evaluate(review_db)
        assert len(bindings) == 5
        eva_confs = {b["C"] for b in bindings if b["A"] == "Eva"}
        assert eva_confs == {"ConfDB", "ConfAI"}

    def test_constant_in_atom_filters(self, review_db):
        query = ConjunctiveQuery([Atom("Author", (var("A"), "s3"))])
        bindings = query.evaluate(review_db)
        assert {b["A"] for b in bindings} == {"Eva", "Carlos"}

    def test_repeated_variable_requires_equality(self, review_db):
        # Author(A, S), Author(A, S2) with S = S2 forced by reuse of the same variable.
        query = ConjunctiveQuery(
            [Atom("Author", (var("A"), var("S"))), Atom("Author", (var("A"), var("S")))]
        )
        assert len(query.evaluate(review_db)) == 5

    def test_coauthorship_self_join(self, review_db):
        query = ConjunctiveQuery(
            [Atom("Author", (var("A"), var("S"))), Atom("Author", (var("B"), var("S")))]
        )
        bindings = query.evaluate(review_db)
        pairs = {(b["A"], b["B"]) for b in bindings}
        assert ("Bob", "Eva") in pairs and ("Eva", "Bob") in pairs
        assert ("Bob", "Carlos") not in pairs  # they never co-author

    def test_empty_result(self, review_db):
        query = ConjunctiveQuery([Atom("Author", ("Nobody", var("S")))])
        assert query.evaluate(review_db) == []

    def test_empty_query_returns_single_empty_binding(self, review_db):
        assert ConjunctiveQuery([]).evaluate(review_db) == [{}]

    def test_duplicate_bindings_are_removed(self, review_db):
        # Projection onto A of the authorship relation: Eva appears three times
        # in the table but only once per distinct binding of A.
        query = ConjunctiveQuery([Atom("Author", (var("A"), var("S")))])
        bindings = query.evaluate(review_db)
        assert len(bindings) == 5  # distinct (A, S) pairs

    def test_validation_unknown_table(self, review_db):
        query = ConjunctiveQuery([Atom("Nope", (var("X"),))])
        with pytest.raises(QueryError):
            query.evaluate(review_db)

    def test_validation_arity_mismatch(self, review_db):
        query = ConjunctiveQuery([Atom("Author", (var("A"),))])
        with pytest.raises(QueryError):
            query.evaluate(review_db)

    def test_variables_property(self):
        query = ConjunctiveQuery(
            [Atom("Author", (var("A"), var("S"))), Atom("Submitted", (var("S"), var("C")))]
        )
        assert [v.name for v in query.variables] == ["A", "S", "C"]

    def test_repr_is_readable(self):
        query = ConjunctiveQuery([Atom("Author", (var("A"), "s1"))])
        assert "Author(A, 's1')" in repr(query)


class TestVectorizedJoinEdges:
    """Shapes the numpy join must get right beyond the Hypothesis parity runs."""

    def both(self, query, db):
        rows = query.evaluate(db, backend="rows")
        columnar = query.evaluate(db, backend="columnar")
        assert rows == columnar  # identical bindings, identical order
        return columnar

    def test_cartesian_product_no_shared_variables(self, review_db):
        query = ConjunctiveQuery(
            [Atom("Person", (var("A"),)), Atom("Submission", (var("S"),))]
        )
        bindings = self.both(query, review_db)
        assert len(bindings) == 9  # 3 people x 3 submissions

    def test_all_constant_atom_acts_as_existence_filter(self, review_db):
        query = ConjunctiveQuery(
            [Atom("Person", (var("A"),)), Atom("Submitted", ("s1", "ConfDB"))]
        )
        assert len(self.both(query, review_db)) == 3
        query = ConjunctiveQuery(
            [Atom("Person", (var("A"),)), Atom("Submitted", ("s1", "ConfAI"))]
        )
        assert self.both(query, review_db) == []

    def test_empty_intermediate_result_short_circuits(self, review_db):
        query = ConjunctiveQuery(
            [Atom("Author", ("Nobody", var("S"))), Atom("Submitted", (var("S"), var("C")))]
        )
        assert self.both(query, review_db) == []

    def test_nan_join_keys_never_match(self):
        # IEEE semantics: NaN != NaN, so a NaN key joins nothing — even when
        # both sides hold the *same* NaN object (a dict would match it by
        # identity; the row backend's equality rechecks reject it).
        nan = float("nan")
        db = Database("nanjoin")
        db.load_rows("R", [{"a": 1, "b": nan}, {"a": 2, "b": 3.0}])
        db.load_rows("S", [{"b": nan, "c": 0}, {"b": 3.0, "c": 1}])
        query = ConjunctiveQuery([Atom("R", (var("X"), var("Y"))), Atom("S", (var("Y"), var("Z")))])
        assert self.both(query, db) == [{"X": 2, "Y": 3.0, "Z": 1}]
        # Multi-key join with one NaN component behaves the same.
        db2 = Database("nanjoin2")
        db2.load_rows("R", [{"a": nan, "b": 1}, {"a": 0.0, "b": 2}])
        db2.load_rows("S", [{"a": nan, "b": 1, "c": 9}, {"a": 0.0, "b": 2, "c": 8}])
        query = ConjunctiveQuery(
            [Atom("R", (var("X"), var("Y"))), Atom("S", (var("X"), var("Y"), var("Z")))]
        )
        assert self.both(query, db2) == [{"X": 0.0, "Y": 2, "Z": 8}]

    def test_repeated_new_variable_within_atom(self):
        db = Database("self")
        db.load_rows("Pairs", [{"a": 1, "b": 1}, {"a": 1, "b": 2}, {"a": 3, "b": 3}])
        query = ConjunctiveQuery([Atom("Pairs", (var("X"), var("X")))])
        assert self.both(query, db) == [{"X": 1}, {"X": 3}]

    def test_three_way_join_order_matches_rows_backend(self, review_db):
        query = ConjunctiveQuery(
            [
                Atom("Person", (var("A"),)),
                Atom("Author", (var("A"), var("S"))),
                Atom("Submitted", (var("S"), var("C"))),
            ]
        )
        bindings = self.both(query, review_db)
        assert len(bindings) == 5

    def test_columnar_backend_on_columnar_tables(self):
        db = Database("col", backend="columnar")
        db.load_rows("R", [{"x": i, "y": i % 3} for i in range(20)])
        db.load_rows("S", [{"y": y, "z": f"z{y}"} for y in range(3)])
        query = ConjunctiveQuery(
            [Atom("R", (var("X"), var("Y"))), Atom("S", (var("Y"), var("Z")))]
        )
        bindings = self.both(query, db)
        assert len(bindings) == 20
        assert all(binding["Z"] == f"z{binding['Y']}" for binding in bindings)
