"""Unit tests for linear regression (repro.inference.regression)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference.regression import LinearRegression, RegressionError, RidgeRegression


@pytest.fixture()
def linear_data():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(200, 3))
    coefficients = np.array([2.0, -1.0, 0.5])
    target = 4.0 + features @ coefficients + rng.normal(scale=0.01, size=200)
    return features, target, coefficients


class TestLinearRegression:
    def test_recovers_coefficients(self, linear_data):
        features, target, coefficients = linear_data
        model = LinearRegression().fit(features, target)
        assert model.intercept == pytest.approx(4.0, abs=0.01)
        assert np.allclose(model.coefficients, coefficients, atol=0.01)

    def test_predict(self, linear_data):
        features, target, _ = linear_data
        model = LinearRegression().fit(features, target)
        predictions = model.predict(features)
        assert predictions.shape == (200,)
        assert model.score(features, target) > 0.999

    def test_predict_single_row(self, linear_data):
        features, target, _ = linear_data
        model = LinearRegression().fit(features, target)
        single = model.predict(features[0])
        assert single.shape == (1,)

    def test_no_intercept(self):
        features = np.array([[1.0], [2.0], [3.0]])
        target = np.array([2.0, 4.0, 6.0])
        model = LinearRegression(fit_intercept=False).fit(features, target)
        assert model.intercept == 0.0
        assert model.coefficients[0] == pytest.approx(2.0)

    def test_rank_deficient_design_does_not_crash(self):
        features = np.ones((10, 2))  # two identical constant columns
        target = np.arange(10.0)
        model = LinearRegression().fit(features, target)
        assert np.all(np.isfinite(model.predict(features)))

    def test_residual_variance(self, linear_data):
        features, target, _ = linear_data
        model = LinearRegression().fit(features, target)
        assert model.residual_variance == pytest.approx(0.0001, rel=1.0)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RegressionError):
            LinearRegression().predict(np.ones((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(RegressionError):
            LinearRegression().fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(RegressionError):
            LinearRegression().fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(RegressionError):
            LinearRegression().fit(np.array([[np.nan]]), np.array([1.0]))

    def test_feature_count_mismatch_on_predict(self, linear_data):
        features, target, _ = linear_data
        model = LinearRegression().fit(features, target)
        with pytest.raises(RegressionError):
            model.predict(np.ones((2, 5)))

    def test_constant_target_r_squared(self):
        features = np.arange(10.0).reshape(-1, 1)
        target = np.full(10, 3.0)
        model = LinearRegression().fit(features, target)
        assert model.score(features, target) == 1.0


class TestRidgeRegression:
    def test_shrinks_towards_zero(self, linear_data):
        features, target, _ = linear_data
        ols = LinearRegression().fit(features, target)
        ridge = RidgeRegression(alpha=500.0).fit(features, target)
        assert np.all(np.abs(ridge.coefficients) < np.abs(ols.coefficients))

    def test_alpha_zero_matches_ols(self, linear_data):
        features, target, _ = linear_data
        ols = LinearRegression().fit(features, target)
        ridge = RidgeRegression(alpha=0.0).fit(features, target)
        assert np.allclose(ridge.coefficients, ols.coefficients, atol=1e-6)

    def test_negative_alpha_rejected(self):
        with pytest.raises(RegressionError):
            RidgeRegression(alpha=-1.0)

    def test_intercept_not_penalized(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(100, 1))
        target = 10.0 + 0.0 * features[:, 0] + rng.normal(scale=0.01, size=100)
        ridge = RidgeRegression(alpha=100.0).fit(features, target)
        assert ridge.intercept == pytest.approx(10.0, abs=0.05)
