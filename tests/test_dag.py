"""Unit tests for the DAG substrate (repro.graph.dag)."""

from __future__ import annotations

import pytest

from repro.graph.dag import DAG, CycleError


def chain(*nodes: str) -> DAG:
    graph = DAG()
    for parent, child in zip(nodes, nodes[1:]):
        graph.add_edge(parent, child)
    return graph


class TestConstruction:
    def test_add_node_is_idempotent(self):
        graph = DAG()
        graph.add_node("a")
        graph.add_node("a")
        assert len(graph) == 1

    def test_add_node_stores_metadata(self):
        graph = DAG()
        graph.add_node("a", kind="attribute")
        graph.add_node("a", extra=1)
        assert graph.node_data("a") == {"kind": "attribute", "extra": 1}

    def test_add_edge_creates_missing_nodes(self):
        graph = DAG()
        graph.add_edge("a", "b")
        assert "a" in graph and "b" in graph
        assert graph.has_edge("a", "b")

    def test_self_loop_is_rejected(self):
        graph = DAG()
        with pytest.raises(ValueError):
            graph.add_edge("a", "a")

    def test_remove_edge(self):
        graph = chain("a", "b", "c")
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.has_edge("b", "c")

    def test_remove_node_removes_incident_edges(self):
        graph = chain("a", "b", "c")
        graph.remove_node("b")
        assert "b" not in graph
        assert graph.children("a") == set()
        assert graph.parents("c") == set()

    def test_remove_missing_node_is_noop(self):
        graph = chain("a", "b")
        graph.remove_node("zzz")
        assert len(graph) == 2

    def test_copy_is_independent(self):
        graph = chain("a", "b")
        clone = graph.copy()
        clone.add_edge("b", "c")
        assert "c" not in graph
        assert clone.has_edge("a", "b")


class TestQueries:
    def test_parents_and_children(self):
        graph = DAG()
        graph.add_edge("x", "z")
        graph.add_edge("y", "z")
        assert graph.parents("z") == {"x", "y"}
        assert graph.children("x") == {"z"}
        assert graph.parents("unknown") == set()

    def test_roots_and_leaves(self):
        graph = chain("a", "b", "c")
        assert graph.roots() == ["a"]
        assert graph.leaves() == ["c"]

    def test_ancestors_and_descendants(self):
        graph = chain("a", "b", "c", "d")
        assert graph.ancestors("d") == {"a", "b", "c"}
        assert graph.descendants("a") == {"b", "c", "d"}
        assert graph.ancestors("a") == set()

    def test_ancestors_of_set_includes_the_set(self):
        graph = chain("a", "b", "c")
        assert graph.ancestors_of_set(["c"]) == {"a", "b", "c"}

    def test_has_directed_path(self):
        graph = chain("a", "b", "c")
        assert graph.has_directed_path("a", "c")
        assert not graph.has_directed_path("c", "a")
        assert graph.has_directed_path("b", "b")
        assert not graph.has_directed_path("a", "missing")

    def test_edges_and_counts(self):
        graph = chain("a", "b", "c")
        assert set(graph.edges) == {("a", "b"), ("b", "c")}
        assert graph.number_of_edges() == 2


class TestOrderingAndSurgery:
    def test_topological_order_respects_edges(self):
        graph = DAG()
        graph.add_edge("a", "c")
        graph.add_edge("b", "c")
        graph.add_edge("c", "d")
        order = graph.topological_order()
        assert order.index("a") < order.index("c") < order.index("d")
        assert order.index("b") < order.index("c")

    def test_cycle_detection(self):
        graph = DAG()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        assert not graph.is_acyclic()
        with pytest.raises(CycleError):
            graph.validate_acyclic()

    def test_acyclic_graph_validates(self):
        graph = chain("a", "b", "c")
        graph.validate_acyclic()
        assert graph.is_acyclic()

    def test_do_removes_incoming_edges_only(self):
        graph = DAG()
        graph.add_edge("z", "t")
        graph.add_edge("t", "y")
        graph.add_edge("z", "y")
        mutilated = graph.do(["t"])
        assert not mutilated.has_edge("z", "t")
        assert mutilated.has_edge("t", "y")
        assert mutilated.has_edge("z", "y")
        # The original graph is untouched.
        assert graph.has_edge("z", "t")

    def test_subgraph(self):
        graph = chain("a", "b", "c", "d")
        sub = graph.subgraph(["b", "c"])
        assert set(sub.nodes) == {"b", "c"}
        assert sub.has_edge("b", "c")
        assert sub.number_of_edges() == 1

    def test_subgraph_preserves_source_node_order(self):
        # Regression: the induced subgraph used to insert nodes in Python
        # `set` iteration order, which is hash-seed-dependent.  It must
        # follow the source graph's insertion order, whatever order the
        # requested nodes arrive in.
        graph = chain("a", "b", "c", "d", "e")
        sub = graph.subgraph(["e", "c", "a", "d"])
        assert sub.nodes == ["a", "c", "d", "e"]
        assert sub.edges == [("c", "d"), ("d", "e")]

    def test_iteration_matches_nodes(self):
        graph = chain("a", "b")
        assert list(iter(graph)) == graph.nodes


class TestDeterministicIteration:
    def test_edges_in_insertion_order(self):
        graph = DAG()
        graph.add_edge("z", "a")
        graph.add_edge("b", "a")
        graph.add_edge("z", "m")
        assert graph.edges == [("z", "a"), ("z", "m"), ("b", "a")]

    def test_topological_order_is_stable(self):
        graph = DAG()
        graph.add_edge("c", "x")
        graph.add_edge("a", "x")
        graph.add_edge("b", "x")
        assert graph.topological_order() == graph.topological_order()
        # Roots dequeue in insertion order, not hash order.
        assert graph.topological_order() == ["c", "a", "b", "x"]
