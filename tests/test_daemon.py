"""Multi-tenant daemon + long-lived-session hardening suite.

Contracts held here:

* **multi-tenant parity** — concurrent tenant sessions over one shared
  scheduler each receive answers bit-identical to the serial engine;
* **admission control** — a tenant over its token-bucket rate or in-flight
  bound gets a structured :class:`AdmissionError` (with a machine-readable
  ``reason``) at ``submit``, never a hang; rejections are counted;
* **fairness** — ready collect tasks drain round-robin across groups and
  finish tasks keep absolute priority (unit-tested on the scheduler's
  ready-queue directly);
* **bounded bookkeeping** — a session that submits and consumes 1k queries
  holds O(in-flight) state, not O(history): delivered/suppressed LRUs are
  capped, thread futures and deadlines are dropped at delivery, and the
  process scheduler reaps query records and task rows as they resolve;
* **backpressure** — ``max_pending`` turns an over-full session into a
  :class:`QueueFullError` (immediate, or after ``submit_timeout``);
* **concurrent session spawn** — opening one session never blocks behind
  another session's (possibly stalled) worker fork: the fork-inherited
  engine hand-off is token-keyed per scheduler, not a process-global slot;
* **drain/close** — ``drain()`` stops admission and waits for in-flight
  work; ``close()`` is idempotent and leaves no worker processes behind.
"""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.carl.engine import CaRLEngine
from repro.carl.errors import QueryError
from repro.carl.queries import QueryAnswer
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database
from repro.observability.telemetry import get_registry, reset_registry
from repro.service import (
    AdmissionError,
    QueryDaemon,
    QueueFullError,
    ShardScheduler,
    TokenBucket,
)
from repro.service.scheduler import _Task
from repro.service.session import DELIVERED_KEEP, SUPPRESSED_KEEP

QUERIES = {
    "ate": "Score[S] <= Prestige[A] ?",
    "agg": "AVG_Score[A] <= Prestige[A] ?",
    "thresh": "AVG_Score[A] <= Prestige[A] >= 1 ?",
    "peers": "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
}


def fresh_engine(**kwargs) -> CaRLEngine:
    return CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, **kwargs)


def answer_fingerprint(answer: QueryAnswer):
    result = answer.result
    if hasattr(result, "ate"):
        fields = (
            result.ate, result.naive_difference, result.treated_mean,
            result.control_mean, result.correlation, result.n_units,
            result.n_treated, result.n_control, result.confidence_interval,
        )
    else:
        fields = (
            result.aie, result.are, result.aoe, result.naive_difference,
            result.correlation, result.n_units, result.mean_peer_count,
        )
    return repr(fields) + repr(answer.unit_table_summary)


@pytest.fixture(autouse=True)
def fresh_registry():
    yield reset_registry()
    reset_registry()


@pytest.fixture(scope="module")
def serial_answers():
    engine = fresh_engine()
    return {name: engine.answer(query) for name, query in QUERIES.items()}


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------
def test_token_bucket_burst_and_refill():
    bucket = TokenBucket(rate=50.0, burst=2)
    assert bucket.try_acquire() and bucket.try_acquire()
    assert not bucket.try_acquire()  # burst spent, no time has passed
    time.sleep(0.05)  # 50/s refills ~2.5 tokens
    assert bucket.try_acquire()
    unlimited = TokenBucket(rate=None, burst=1)
    assert all(unlimited.try_acquire() for _ in range(100))
    with pytest.raises(QueryError, match="rate"):
        TokenBucket(rate=0.0, burst=1)
    with pytest.raises(QueryError, match="burst"):
        TokenBucket(rate=1.0, burst=0)


# ----------------------------------------------------------------------
# scheduler fairness (ready-queue unit tests)
# ----------------------------------------------------------------------
def _collect_task(task_id: int, group: str | None) -> _Task:
    return _Task(id=task_id, kind="collect", spec=None, queries=set(), group=group)


def test_ready_queue_drains_round_robin_across_groups():
    scheduler = ShardScheduler(fresh_engine(), jobs=1, shards=1, retries=0, backend="columnar")
    order = ["a", "a", "a", "a", "b", "b", "c"]
    for task_id, group in enumerate(order):
        scheduler._enqueue_ready_locked(_collect_task(task_id, group))
    groups = []
    while True:
        task_id = scheduler._pop_ready_locked()
        if task_id is None:
            break
        groups.append(order[task_id])
    # One task per group per rotation: a deep backlog in "a" cannot starve
    # "b" or "c" — their single tasks run within the first rotations.
    assert groups == ["a", "b", "c", "a", "b", "a", "a"]
    assert scheduler._ready_count == 0
    assert scheduler._ready_groups == {}  # drained groups leave no residue


def test_priority_tasks_jump_every_group():
    scheduler = ShardScheduler(fresh_engine(), jobs=1, shards=1, retries=0, backend="columnar")
    scheduler._enqueue_ready_locked(_collect_task(0, "a"))
    scheduler._enqueue_ready_locked(_collect_task(1, "b"))
    scheduler._priority.append(2)  # a finish task, enqueued last
    scheduler._ready_count += 1
    assert scheduler._pop_ready_locked() == 2  # finish first, always
    assert {scheduler._pop_ready_locked(), scheduler._pop_ready_locked()} == {0, 1}


# ----------------------------------------------------------------------
# multi-tenant daemon
# ----------------------------------------------------------------------
def test_daemon_multi_tenant_answers_are_bit_identical(serial_answers):
    engine = fresh_engine()
    names = list(QUERIES)
    with QueryDaemon(engine, jobs=2, shards=2) as daemon:
        sessions = {tenant: daemon.open_session(tenant=tenant) for tenant in "abc"}
        for session in sessions.values():
            for query in QUERIES.values():
                session.submit(query)
        for tenant, session in sessions.items():
            got = dict(session.as_completed())
            assert sorted(got) == [0, 1, 2, 3], tenant
            for index, outcome in got.items():
                assert isinstance(outcome, QueryAnswer), (tenant, outcome)
                assert answer_fingerprint(outcome) == answer_fingerprint(
                    serial_answers[names[index]]
                )
        stats = daemon.stats()
        assert stats["admitted"] == 3 * len(QUERIES)
        assert stats["rejected"] == 0
        assert stats["inflight"] == 0
        assert set(stats["tenants"]) == {"a", "b", "c"}
        # Bounded bookkeeping on the shared scheduler: everything reaped.
        assert stats["scheduler"]["live_records"] == 0
        assert stats["scheduler"]["live_tasks"] == 0
        for session in sessions.values():
            session.close()
        assert daemon.stats()["sessions"] == 0


def test_daemon_stats_tenants_preserve_session_open_order():
    """Pinned regression: the session registry is insertion-ordered.

    ``_sessions`` used to be a bare set, so ``stats()['tenants']`` (and the
    ``close()`` teardown sweep) enumerated sessions in PYTHONHASHSEED order.
    """
    engine = fresh_engine()
    order = ["banana", "apple", "cherry"]  # deliberately not sorted
    with QueryDaemon(engine, jobs=1, shards=1) as daemon:
        sessions = [daemon.open_session(tenant=tenant) for tenant in order]
        assert list(daemon.stats()["tenants"]) == order
        for session in sessions:
            session.close()


def test_daemon_sessions_run_concurrently(serial_answers):
    """Two tenants submitting from separate threads both complete."""
    engine = fresh_engine()
    outcomes = {}
    with QueryDaemon(engine, jobs=2, shards=2) as daemon:

        def run(tenant):
            with daemon.open_session(tenant=tenant) as session:
                session.submit(QUERIES["ate"])
                outcomes[tenant] = session.result(0, timeout=60.0)

        threads = [threading.Thread(target=run, args=(t,)) for t in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=90.0)
    assert set(outcomes) == {"a", "b"}
    for outcome in outcomes.values():
        assert answer_fingerprint(outcome) == answer_fingerprint(serial_answers["ate"])


def test_rate_limited_tenant_gets_structured_rejection():
    engine = fresh_engine()
    with QueryDaemon(engine, jobs=1, shards=1) as daemon:
        with daemon.open_session(tenant="slow", rate=0.001, burst=1) as session:
            first = session.submit(QUERIES["ate"])
            with pytest.raises(AdmissionError) as info:
                session.submit(QUERIES["agg"])
            assert info.value.reason == "rate"
            assert isinstance(info.value, QueryError)  # generic handlers still work
            # The rejected submit never produces an event; the admitted one
            # answers normally and the session is not poisoned.
            assert isinstance(session.result(first, timeout=60.0), QueryAnswer)
            assert session.outstanding() == 0
    counters = get_registry().counters()
    assert counters["daemon.reject"] == 1
    assert counters["daemon.admit"] == 1


def test_inflight_bound_rejects_before_rate(monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_TASK_DELAY", "0.3")
    engine = fresh_engine()
    with QueryDaemon(engine, jobs=1, shards=1) as daemon:
        with daemon.open_session(tenant="t", max_inflight=1) as session:
            session.submit(QUERIES["ate"])
            with pytest.raises(AdmissionError) as info:
                session.submit(QUERIES["agg"])
            assert info.value.reason == "inflight"
            assert isinstance(session.result(0, timeout=60.0), QueryAnswer)
            # Delivery freed the slot: the tenant may submit again.
            session.submit(QUERIES["ate"])
            assert isinstance(session.result(2, timeout=60.0), QueryAnswer)


def test_drain_stops_admission_and_waits_out_inflight_work():
    engine = fresh_engine()
    daemon = QueryDaemon(engine, jobs=1, shards=1)
    try:
        session = daemon.open_session(tenant="t")
        session.submit(QUERIES["ate"])
        assert daemon.drain(timeout=60.0) is True
        assert daemon.inflight() == 0
        with pytest.raises(AdmissionError) as info:
            session.submit(QUERIES["agg"])
        assert info.value.reason == "draining"
        with pytest.raises(QueryError, match="draining"):
            daemon.open_session(tenant="late")
        # The already-completed answer is still deliverable after drain.
        assert isinstance(session.result(0), QueryAnswer)
    finally:
        daemon.close()
    daemon.close()  # idempotent
    with pytest.raises(QueryError, match="closed"):
        daemon.open_session(tenant="next")


def test_closing_one_session_leaves_the_daemon_usable(serial_answers):
    engine = fresh_engine()
    with QueryDaemon(engine, jobs=2, shards=2) as daemon:
        first = daemon.open_session(tenant="first")
        first.submit(QUERIES["ate"])
        first.close()  # closes the facade, cancels in-flight — not the pool
        with daemon.open_session(tenant="second") as session:
            session.submit(QUERIES["ate"])
            outcome = session.result(0, timeout=60.0)
        assert answer_fingerprint(outcome) == answer_fingerprint(serial_answers["ate"])


# ----------------------------------------------------------------------
# bounded session bookkeeping
# ----------------------------------------------------------------------
def test_thousand_submits_keep_session_bookkeeping_flat():
    engine = fresh_engine()
    engine.answer = lambda query, **kwargs: object()  # cheap stand-in answer
    with engine.open_session(jobs=2) as session:
        for _ in range(1000):
            session.submit(QUERIES["ate"])
        delivered = dict(session.as_completed())
        assert len(delivered) == 1000
        # O(in-flight), not O(history): live maps are empty, history LRUs
        # are capped, per-future bookkeeping is dropped at delivery.
        assert session.outstanding() == 0
        assert len(session._live) == 0
        assert len(session._resolved) == 0
        assert len(session._delivered) <= DELIVERED_KEEP
        assert len(session._suppressed) <= SUPPRESSED_KEEP
        assert len(session._futures) == 0
        assert len(session._deadlines) == 0
        assert session.stats()["delivered"] == 1000


def test_process_scheduler_reaps_records_and_tasks(tmp_path):
    engine = fresh_engine(cache=tmp_path / "cache")
    with engine.open_session(jobs=2, executor="process", shards=2) as session:
        for _ in range(3):
            for query in QUERIES.values():
                session.submit(query)
        delivered = dict(session.as_completed())
        stats = session.stats()["scheduler"]
    assert len(delivered) == 3 * len(QUERIES)
    assert stats["live_records"] == 0
    assert stats["live_tasks"] == 0
    assert stats["records_reaped"] == 3 * len(QUERIES)
    assert stats["tasks_reaped"] >= stats["records_reaped"]  # finishes + collects
    assert stats["ready_tasks"] == 0


def test_result_of_reaped_delivered_query_raises():
    engine = fresh_engine()
    engine.answer = lambda query, **kwargs: object()
    with engine.open_session(jobs=1) as session:
        total = DELIVERED_KEEP + 10
        for _ in range(total):
            session.submit(QUERIES["ate"])
        assert len(dict(session.as_completed())) == total
        # Recent deliveries re-read idempotently; reaped ones raise.
        assert session.result(total - 1) is session.result(total - 1)
        with pytest.raises(QueryError, match="reaped"):
            session.result(0)
        with pytest.raises(QueryError, match="unknown"):
            session.result(total + 7)


# ----------------------------------------------------------------------
# submit backpressure
# ----------------------------------------------------------------------
def test_max_pending_raises_queue_full_immediately():
    engine = fresh_engine()
    release = threading.Event()
    original = engine.answer

    def gated(query, *args, **kwargs):
        release.wait(timeout=30.0)
        return original(query, *args, **kwargs)

    engine.answer = gated
    with engine.open_session(jobs=1, max_pending=2) as session:
        session.submit(QUERIES["ate"])
        session.submit(QUERIES["agg"])
        with pytest.raises(QueueFullError):
            session.submit(QUERIES["ate"])
        assert isinstance(QueueFullError("x"), QueryError)
        release.set()
        got = dict(session.as_completed())
        assert sorted(got) == [0, 1]  # the rejected submit left no residue
        # Consuming freed capacity: submitting works again.
        index = session.submit(QUERIES["ate"])
        assert isinstance(session.result(index, timeout=30.0), QueryAnswer)
    assert get_registry().counters()["session.queue_full"] == 1


def test_submit_timeout_blocks_bounded_then_raises():
    engine = fresh_engine()
    release = threading.Event()
    original = engine.answer

    def gated(query, *args, **kwargs):
        release.wait(timeout=30.0)
        return original(query, *args, **kwargs)

    engine.answer = gated
    with engine.open_session(jobs=1, max_pending=1, submit_timeout=0.15) as session:
        session.submit(QUERIES["ate"])
        started = time.monotonic()
        with pytest.raises(QueueFullError):
            session.submit(QUERIES["agg"])
        waited = time.monotonic() - started
        assert waited >= 0.1  # it blocked for the timeout, not instantly
        release.set()
        # Once the backlog drains, a blocking submit goes through.
        assert isinstance(session.result(0, timeout=30.0), QueryAnswer)
        index = session.submit(QUERIES["agg"])
        assert isinstance(session.result(index, timeout=30.0), QueryAnswer)


def test_bad_backpressure_options_are_rejected():
    engine = fresh_engine()
    with pytest.raises(QueryError, match="max_pending"):
        engine.open_session(max_pending=0)
    with pytest.raises(QueryError, match="submit_timeout"):
        engine.open_session(max_pending=1, submit_timeout=-1.0)


# ----------------------------------------------------------------------
# concurrent session spawn
# ----------------------------------------------------------------------
def test_second_session_progresses_while_first_is_mid_spawn(serial_answers):
    """A stalled worker fork in one session must not serialize every other
    session's spawn (the engine hand-off is token-keyed, not a global slot
    guarded by a process-wide lock)."""
    first_spawn_started = threading.Event()
    release_first_spawn = threading.Event()
    state = {"stalled": False}
    lock = threading.Lock()
    original_start = multiprocessing.Process.start

    def stalling_start(self):
        with lock:
            stall = not state["stalled"]
            state["stalled"] = True
        if stall:
            first_spawn_started.set()
            assert release_first_spawn.wait(timeout=30.0)
        return original_start(self)

    multiprocessing.Process.start = stalling_start
    try:
        outcome_b = {}
        engine_a, engine_b = fresh_engine(), fresh_engine()

        def open_a():
            with engine_a.open_session(jobs=1, executor="process", shards=1) as session:
                session.submit(QUERIES["ate"])
                outcome_b["a"] = session.result(0, timeout=60.0)

        thread_a = threading.Thread(target=open_a)
        thread_a.start()
        assert first_spawn_started.wait(timeout=30.0)
        # Session A is stalled inside its first worker fork.  Session B must
        # open, spawn and answer regardless.
        with engine_b.open_session(jobs=1, executor="process", shards=1) as session:
            session.submit(QUERIES["ate"])
            outcome_b["b"] = session.result(0, timeout=60.0)
        assert "a" not in outcome_b  # A is still stalled mid-spawn
        release_first_spawn.set()
        thread_a.join(timeout=90.0)
        assert not thread_a.is_alive()
    finally:
        multiprocessing.Process.start = original_start
        release_first_spawn.set()
    for outcome in outcome_b.values():
        assert answer_fingerprint(outcome) == answer_fingerprint(serial_answers["ate"])
