"""Estimator behavior on degenerate unit tables.

The columnar unit-table backend hands the estimators arrays straight from
bulk materialization, so degenerate shapes (all-treated, all-control,
zero-variance covariates, single-unit strata, empty covariate matrices)
must keep failing loudly — or succeeding finitely — exactly as before.
These tests pin that contract so vectorization can't silently regress it.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.inference.estimators import (
    ESTIMATORS,
    EstimatorError,
    estimate_ate,
    estimate_ate_from_unit_table,
)

ALL_ESTIMATORS = sorted(ESTIMATORS)


def _toy_data(n: int = 20, seed: int = 0):
    rng = np.random.default_rng(seed)
    treatment = (np.arange(n) % 2).astype(float)
    covariates = rng.normal(size=(n, 2))
    outcome = 2.0 * treatment + covariates @ np.array([0.5, -0.25]) + rng.normal(size=n) * 0.1
    return outcome, treatment, covariates


@pytest.mark.parametrize("estimator", ALL_ESTIMATORS)
def test_all_treated_raises(estimator):
    outcome = np.ones(10)
    treatment = np.ones(10)
    with pytest.raises(EstimatorError):
        estimate_ate(outcome, treatment, None, estimator=estimator)


@pytest.mark.parametrize("estimator", ALL_ESTIMATORS)
def test_all_control_raises(estimator):
    outcome = np.ones(10)
    treatment = np.zeros(10)
    with pytest.raises(EstimatorError):
        estimate_ate(outcome, treatment, None, estimator=estimator)


@pytest.mark.parametrize("estimator", ALL_ESTIMATORS)
def test_zero_units_raises(estimator):
    with pytest.raises(EstimatorError):
        estimate_ate(np.empty(0), np.empty(0), np.empty((0, 2)), estimator=estimator)


@pytest.mark.parametrize("estimator", ALL_ESTIMATORS)
def test_zero_variance_covariates_are_finite(estimator):
    """Constant (zero-variance) covariate columns must not blow up: the
    regression solver is minimum-norm and the propensity model standardizes
    constant columns to zeros."""
    outcome, treatment, _ = _toy_data()
    covariates = np.hstack([np.full((len(outcome), 1), 3.7), np.zeros((len(outcome), 1))])
    estimate = estimate_ate(outcome, treatment, covariates, estimator=estimator)
    assert math.isfinite(estimate.ate)
    assert estimate.n_treated + estimate.n_control == len(outcome)


@pytest.mark.parametrize("estimator", ALL_ESTIMATORS)
def test_empty_covariate_matrix_is_finite(estimator):
    outcome, treatment, _ = _toy_data()
    estimate = estimate_ate(outcome, treatment, np.empty((len(outcome), 0)), estimator=estimator)
    assert math.isfinite(estimate.ate)


@pytest.mark.parametrize("estimator", ALL_ESTIMATORS)
def test_two_units_one_per_arm(estimator):
    """The minimal estimable unit table: one treated, one control unit.

    Every estimator must either produce a finite contrast or raise a clean
    EstimatorError (e.g. when no stratum contains both arms) — never NaN."""
    outcome = np.array([1.0, 3.0])
    treatment = np.array([0.0, 1.0])
    covariates = np.array([[0.5], [0.5]])
    try:
        estimate = estimate_ate(outcome, treatment, covariates, estimator=estimator)
    except EstimatorError:
        return
    assert math.isfinite(estimate.ate)


def test_stratification_with_singleton_strata():
    """n=1 strata: when every stratum holds a single unit no within-stratum
    contrast exists and stratification must raise cleanly, not emit NaN."""
    outcome = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
    treatment = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
    covariates = np.arange(6, dtype=float).reshape(-1, 1)
    with pytest.raises(EstimatorError, match="no stratum"):
        estimate_ate(outcome, treatment, covariates, estimator="stratification", n_strata=6)


def test_stratification_with_tied_scores_recovers():
    """Tied propensity scores collapse units into shared strata, so the same
    request succeeds once the covariate stops separating every unit."""
    outcome = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
    treatment = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
    covariates = np.array([[0.0], [0.0], [1.0], [1.0], [2.0], [2.0]])
    estimate = estimate_ate(
        outcome, treatment, covariates, estimator="stratification", n_strata=6
    )
    assert math.isfinite(estimate.ate)
    assert estimate.details["n_strata_used"] >= 1


def test_perfectly_separated_treatment_stays_bounded():
    """A covariate that perfectly separates the arms: propensity clipping must
    keep IPW and AIPW weights (and hence the estimates) bounded."""
    n = 40
    treatment = np.repeat([0.0, 1.0], n // 2)
    covariates = treatment.reshape(-1, 1) * 10.0
    rng = np.random.default_rng(3)
    outcome = treatment * 2.0 + rng.normal(size=n) * 0.01
    for estimator in ("ipw", "aipw"):
        estimate = estimate_ate(outcome, treatment, covariates, estimator=estimator)
        assert math.isfinite(estimate.ate)
        assert abs(estimate.ate) < 1e3


def test_estimate_from_unit_table_matches_arrays(toy_engine):
    unit_table = toy_engine.unit_table("Score[S] <= Prestige[A] ?")
    direct = estimate_ate_from_unit_table(unit_table, estimator="ipw")
    via_arrays = estimate_ate(
        unit_table.outcome,
        unit_table.treatment,
        unit_table.adjustment_features(),
        estimator="ipw",
    )
    assert direct.ate == pytest.approx(via_arrays.ate, rel=1e-12)
    assert direct.n_units == len(unit_table)


def test_unknown_estimator_message_lists_options():
    with pytest.raises(EstimatorError, match="unknown estimator"):
        estimate_ate(np.ones(4), np.array([0.0, 1.0, 0.0, 1.0]), None, estimator="nope")
