"""Structured-telemetry suite (``docs/observability.md``).

Contracts held here:

* **frozen schema** — the event registry's exact contents (names, kinds,
  required/optional fields) are pinned; extending telemetry is a deliberate
  two-place change (schema + this snapshot), never silent drift;
* **validation** — every emission is checked against the registry: wrong
  names, kinds and metadata fields raise :class:`TelemetryError` in the
  emitting thread;
* **registry mechanics** — counters accumulate, gauges keep the last value,
  the ring buffer is bounded, span handles nest and finish idempotently,
  the JSON-lines sink round-trips through :func:`read_log`, and a forked
  child's inherited registry starts clean;
* **span-tree invariants** — every answered process-mode query emits
  exactly one ``query`` root with one ``query.ground`` and one
  ``query.finish`` child, nested monotonic timestamps, and ``query.collect``
  children only when collection actually ran: a warm (cached unit table)
  answer emits **zero** collect spans.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.carl.engine import CaRLEngine
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database
from repro.observability import (
    DARK_ENV,
    EVENTS,
    TelemetryError,
    TelemetryRegistry,
    bucket_percentile,
    bucket_upper_bound,
    dump_flight_recording,
    get_registry,
    histogram_bucket,
    merge_worker_batch,
    read_log,
    reset_registry,
    set_role,
    summarize_events,
    trace_context,
    validate_event,
)
from repro.observability.telemetry import HIST_MAX_EXP, HIST_MIN_EXP

QUERIES = {
    "ate": "Score[S] <= Prestige[A] ?",
    "agg": "AVG_Score[A] <= Prestige[A] ?",
    "thresh": "AVG_Score[A] <= Prestige[A] >= 1 ?",
    "peers": "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
}


def fresh_engine(**kwargs) -> CaRLEngine:
    return CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, **kwargs)


@pytest.fixture(autouse=True)
def fresh_registry():
    registry = reset_registry()
    yield registry
    reset_registry()


# ----------------------------------------------------------------------
# the frozen schema
# ----------------------------------------------------------------------
#: Pinned snapshot of the registry: name -> (kind, required, optional).
#: Changing telemetry means changing the schema module AND this snapshot —
#: that review step is the whole point (drift would silently break every
#: consumer of the JSON-lines log).
FROZEN_SCHEMA = {
    "query": ("span", ("index",), ("mode", "outcome", "tenant", "executor")),
    "query.ground": ("span", (), ("cached",)),
    "query.collect": ("span", ("start", "stop"), ("worker", "attempt", "outcome")),
    "query.finish": ("span", (), ("mode", "worker", "outcome")),
    "query.duration": ("histogram", (), ("mode", "outcome")),
    "worker.collect": ("span", (), ("start", "stop")),
    "worker.store": ("span", (), ("kind",)),
    "worker.merge": ("span", (), ()),
    "worker.materialize": ("span", (), ()),
    "worker.estimate": ("span", (), ()),
    "worker.span_batch": ("counter", (), ("worker", "dropped")),
    "engine.ground": ("span", (), ("cached",)),
    "cache.hit": ("counter", (), ("kind",)),
    "cache.miss": ("counter", (), ("kind",)),
    "cache.store": ("counter", (), ("kind",)),
    "cache.quarantined": ("counter", (), ("kind",)),
    "cache.store_error": ("counter", (), ("kind",)),
    "cache.degraded": ("gauge", (), ()),
    "scheduler.retry": ("counter", (), ("kind", "backoff_ms")),
    "scheduler.timeout": ("counter", (), ()),
    "scheduler.cancelled": ("counter", (), ()),
    "scheduler.worker_death": ("counter", (), ()),
    "scheduler.worker_killed": ("counter", (), ("reason",)),
    "scheduler.circuit_open": ("counter", (), ()),
    "scheduler.serial_fallback": ("counter", (), ("reason",)),
    "scheduler.queue_depth": ("gauge", (), ()),
    "scheduler.queue_wait": ("histogram", (), ("kind",)),
    "scheduler.retry_backoff": ("histogram", (), ()),
    "scheduler.flight_dump": ("counter", ("reason",), ()),
    "fault.injected": ("counter", ("site",), ("key",)),
    "daemon.admit": ("counter", ("tenant",), ()),
    "daemon.reject": ("counter", ("tenant",), ("reason",)),
    "daemon.sessions": ("gauge", (), ()),
    "session.queue_full": ("counter", (), ()),
}


def test_event_schema_is_frozen():
    snapshot = {
        name: (spec.kind, spec.required, spec.optional) for name, spec in EVENTS.items()
    }
    assert snapshot == FROZEN_SCHEMA


def test_validate_event_rejects_off_schema_emissions():
    with pytest.raises(TelemetryError, match="unregistered"):
        validate_event("no.such.event", "counter", {})
    with pytest.raises(TelemetryError, match="is a counter"):
        validate_event("cache.hit", "span", {})
    with pytest.raises(TelemetryError, match="does not allow"):
        validate_event("cache.hit", "counter", {"surprise": 1})
    with pytest.raises(TelemetryError, match="requires"):
        validate_event("daemon.admit", "counter", {})
    validate_event("daemon.admit", "counter", {"tenant": "a"})  # conforming


def test_registry_rejects_off_schema_emissions_at_the_call_site():
    registry = get_registry()
    with pytest.raises(TelemetryError):
        registry.count("no.such.event")
    with pytest.raises(TelemetryError):
        registry.gauge("cache.hit", 1.0)  # declared as a counter
    with pytest.raises(TelemetryError):
        registry.start_span("query")  # missing required index
    span = registry.start_span("query", index=0)
    with pytest.raises(TelemetryError):
        registry.finish_span(span, bogus_field=1)


# ----------------------------------------------------------------------
# registry mechanics
# ----------------------------------------------------------------------
def test_counters_accumulate_and_gauges_keep_last_value():
    registry = get_registry()
    registry.count("cache.hit", kind="grounding")
    registry.count("cache.hit", 2, kind="unit_table")
    registry.gauge("scheduler.queue_depth", 5)
    registry.gauge("scheduler.queue_depth", 2)
    assert registry.counters()["cache.hit"] == 3
    assert registry.gauges()["scheduler.queue_depth"] == 2
    assert len(registry.events(name="cache.hit")) == 2


def test_ring_buffer_is_bounded():
    registry = reset_registry(capacity=16)
    for _ in range(100):
        registry.count("cache.miss")
    assert len(registry.events()) == 16
    assert registry.counters()["cache.miss"] == 100  # totals are not windowed


def test_spans_nest_with_monotonic_timestamps_and_finish_idempotently():
    registry = get_registry()
    root = registry.start_span("query", index=0)
    child = registry.start_span("query.ground", trace=root.trace, parent=root)
    registry.finish_span(child, cached=False)
    registry.finish_span(child)  # idempotent: emits once
    registry.finish_span(root, outcome="ok")
    spans = registry.spans()
    assert [span["event"] for span in spans] == ["query.ground", "query"]
    ground, query = spans
    assert ground["trace"] == query["trace"]
    assert ground["parent"] == query["span"]
    assert query["t0"] <= ground["t0"] <= ground["t1"] <= query["t1"]
    assert query["meta"] == {"index": 0, "outcome": "ok"}


def test_span_context_manager_emits_on_exit():
    registry = get_registry()
    with registry.span("engine.ground", cached=True):
        pass
    (record,) = registry.spans("engine.ground")
    assert record["meta"] == {"cached": True}


def test_sink_round_trips_through_read_log_and_summarize(tmp_path):
    log = tmp_path / "telemetry.jsonl"
    registry = reset_registry(sink=log)
    with registry.span("engine.ground", cached=False):
        pass
    registry.count("cache.store", kind="grounding")
    registry.gauge("daemon.sessions", 3)
    registry.flush_sink()  # the sink buffers; flush before reading back
    log.open("a").write("not json\n")  # malformed lines are skipped
    events = read_log(log)
    assert [event["event"] for event in events] == [
        "engine.ground",
        "cache.store",
        "daemon.sessions",
    ]
    summary = summarize_events(events)
    assert summary["events"] == 3
    assert summary["spans"]["engine.ground"]["count"] == 1
    assert summary["spans"]["engine.ground"]["p99_seconds"] >= 0.0
    assert summary["counters"] == {"cache.store": 1}
    assert summary["gauges"] == {"daemon.sessions": 3.0}
    assert read_log(tmp_path / "missing.jsonl") == []


def test_forked_child_registry_starts_clean(tmp_path):
    registry = TelemetryRegistry(sink=tmp_path / "parent.jsonl")
    registry.count("cache.hit")
    assert registry.counters() == {"cache.hit": 1}
    registry._pid = -1  # simulate: this handle was inherited across a fork
    registry.count("cache.miss")
    # The "child" starts from scratch and never touches the parent's sink.
    assert registry.counters() == {"cache.miss": 1}
    assert registry.sink_path is None


# ----------------------------------------------------------------------
# deterministic histograms
# ----------------------------------------------------------------------
def test_histogram_bucket_is_a_pure_clamped_log2():
    assert histogram_bucket(1.0) == 0
    assert histogram_bucket(1.5) == 0
    assert histogram_bucket(2.0) == 1
    assert histogram_bucket(0.75) == -1
    assert histogram_bucket(0.0) == HIST_MIN_EXP
    assert histogram_bucket(-3.0) == HIST_MIN_EXP
    assert histogram_bucket(float("nan")) == HIST_MIN_EXP
    assert histogram_bucket(2.0**40) == HIST_MAX_EXP
    assert histogram_bucket(2.0**-40) == HIST_MIN_EXP
    assert bucket_upper_bound(0) == 2.0
    assert bucket_upper_bound(-1) == 1.0


def test_bucket_percentile_nearest_rank_over_upper_bounds():
    assert bucket_percentile({}, 50.0) == 0.0
    # 10 observations in bucket 0 ([1,2)), 1 in bucket 4 ([16,32)).
    buckets = {0: 10, 4: 1}
    assert bucket_percentile(buckets, 50.0) == 2.0
    assert bucket_percentile(buckets, 99.0) == 32.0


def test_histogram_emission_totals_and_summary(tmp_path):
    registry = get_registry()
    for value in (0.001, 0.002, 0.5, 3.0):
        registry.histogram("query.duration", value, mode="cold")
    totals = registry.histograms()["query.duration"]
    assert sum(totals.values()) == 4
    summary = summarize_events(registry.events())
    stats = summary["histograms"]["query.duration"]
    assert stats["count"] == 4
    assert stats["p50"] > 0.0
    assert stats["buckets"] == totals


# ----------------------------------------------------------------------
# cross-process stitching primitives
# ----------------------------------------------------------------------
def test_worker_role_prefixes_generated_ids():
    set_role("worker", 3)
    registry = get_registry()
    span = registry.start_span("worker.merge")
    registry.finish_span(span)
    assert span.trace.startswith("w3.t")
    assert span.span_id.startswith("w3.s")
    set_role("dispatcher")
    plain = registry.start_span("worker.merge")
    assert not plain.trace.startswith("w3.")


def test_trace_context_supplies_default_attachment():
    registry = get_registry()
    with trace_context("t7", "s9"):
        inherited = registry.start_span("worker.collect")
        explicit = registry.start_span("query", index=0, trace="t1", parent="s1")
    outside = registry.start_span("worker.collect")
    assert (inherited.trace, inherited.parent) == ("t7", "s9")
    assert (explicit.trace, explicit.parent) == ("t1", "s1")
    assert outside.parent is None


def test_drain_events_moves_ring_and_totals():
    registry = get_registry()
    registry.count("cache.hit")
    registry.histogram("scheduler.retry_backoff", 0.25)
    batch = registry.drain_events()
    assert batch is not None
    assert [record["event"] for record in batch["events"]] == [
        "cache.hit",
        "scheduler.retry_backoff",
    ]
    assert batch["dropped"] == 0
    # Moved, not copied: a second drain has nothing, totals are rebuilt by
    # the receiver from the shipped records.
    assert registry.drain_events() is None
    assert registry.counters() == {}
    assert registry.histograms() == {}


def test_merge_worker_batch_rebuilds_totals_and_attributes_worker():
    registry = get_registry()
    batch = {
        "events": [
            {"event": "cache.hit", "kind": "counter", "value": 2, "meta": {}},
            {"event": "scheduler.queue_wait", "kind": "histogram", "value": 0.5,
             "bucket": -1, "meta": {}},
            "not-a-record",
        ],
        "dropped": 3,
    }
    merged = merge_worker_batch(registry, batch, worker=5)
    assert merged == 2
    assert registry.counters()["cache.hit"] == 2
    assert registry.histograms()["scheduler.queue_wait"] == {-1: 1}
    merged_records = [event for event in registry.events() if event.get("worker") == 5]
    assert len(merged_records) == 2
    (span_batch,) = registry.events(name="worker.span_batch")
    assert span_batch["value"] == 2
    assert span_batch["meta"] == {"worker": 5, "dropped": 3}
    # Malformed batches are ignored outright: telemetry never fails a result.
    assert merge_worker_batch(registry, None) == 0
    assert merge_worker_batch(registry, {"events": "nope"}) == 0


def test_dark_mode_short_circuits_every_emission(monkeypatch):
    monkeypatch.setenv(DARK_ENV, "1")
    registry = TelemetryRegistry()
    assert not registry.enabled
    registry.count("cache.hit")
    registry.histogram("query.duration", 0.5)
    registry.count("never.validated.in.the.dark")  # skipped before validation
    span = registry.start_span("query", index=0)
    registry.finish_span(span)
    assert registry.events() == []
    assert registry.drain_events() is None


# ----------------------------------------------------------------------
# sink buffering / rotation and the flight recorder
# ----------------------------------------------------------------------
def test_sink_rotation_is_atomic_at_line_boundaries(tmp_path):
    log = tmp_path / "telemetry.jsonl"
    registry = reset_registry()
    registry.set_sink(log, rotate_bytes=2048)
    for _ in range(300):
        registry.count("cache.hit")
    registry.flush_sink()
    rotated = tmp_path / "telemetry.jsonl.1"
    assert rotated.exists()
    for path in (log, rotated):
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)  # neither side of the rotation holds a torn line
    registry.set_sink(None)


def test_flight_recorder_dumps_ring_with_digest(tmp_path):
    registry = get_registry()
    registry.count("cache.hit")
    path = dump_flight_recording("circuit_open", directory=tmp_path)
    assert path is not None and path.parent == tmp_path
    assert "circuit_open" in path.name
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [record["event"] for record in records] == ["cache.hit"]
    digest = (tmp_path / (path.name + ".sha256")).read_text().strip()
    assert digest == hashlib.sha256(path.read_bytes()).hexdigest()
    assert registry.counters()["scheduler.flight_dump"] == 1
    assert not list(tmp_path.glob("*.tmp"))  # temp files never linger


def test_flight_recorder_degrades_to_none_on_os_errors(tmp_path):
    blocker = tmp_path / "not-a-directory"
    blocker.write_text("")
    assert dump_flight_recording("oops", directory=blocker / "sub") is None
    # A weird reason string is sanitized into the filename, never rejected.
    path = dump_flight_recording("worker kill: #2!", directory=tmp_path)
    assert path is not None
    assert path.name.endswith("-worker_kill___2_.jsonl")


# ----------------------------------------------------------------------
# span-tree invariants over real sessions
# ----------------------------------------------------------------------
def _tree(registry, executor):
    """Map each ``query`` root span to its children, keyed by span name."""
    roots = {span["span"]: span for span in registry.spans("query")}
    children = {span_id: {"query.ground": [], "query.collect": [], "query.finish": []}
                for span_id in roots}
    for span in registry.spans():
        if span["event"] in ("query.ground", "query.collect", "query.finish"):
            if span["parent"] in children:
                children[span["parent"]][span["event"]].append(span)
    assert all(span["meta"].get("executor") == executor for span in roots.values())
    return roots, children


def test_process_query_span_trees_cold_then_warm(tmp_path):
    registry = get_registry()
    engine = fresh_engine(cache=tmp_path / "cache")
    with engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        assert len(dict(session.as_completed())) == len(QUERIES)
    roots, children = _tree(registry, "process")
    assert len(roots) == len(QUERIES)  # exactly one root per answered query
    for span_id, root in roots.items():
        assert root["meta"]["outcome"] == "ok"
        assert root["meta"]["mode"] == "cold"
        tree = children[span_id]
        assert len(tree["query.ground"]) == 1
        assert len(tree["query.finish"]) == 1
        # A collect span hangs off the query that *created* the shard task;
        # queries sharing a collection signature share those tasks, so only
        # the first such query carries the collect children.  The first
        # submitted query always collects.
        if root["meta"]["index"] == 0:
            assert len(tree["query.collect"]) >= 1
        assert tree["query.finish"][0]["meta"]["mode"] == "cold"
        for child in (
            tree["query.ground"] + tree["query.collect"] + tree["query.finish"]
        ):
            assert child["trace"] == root["trace"]
            # Nested monotonic clocks: children live inside their root.
            assert root["t0"] <= child["t0"] <= child["t1"] <= root["t1"]
        # Phase order: ground ends before any collect starts, and every
        # collect ends before the finish starts.
        ground, finish = tree["query.ground"][0], tree["query.finish"][0]
        for collect in tree["query.collect"]:
            assert ground["t1"] <= collect["t0"]
            assert collect["t1"] <= finish["t0"]

    # Warm re-sweep: cached unit tables answer without any collection —
    # every root is mode="warm" and emits zero collect spans.
    registry.clear()
    warm_engine = fresh_engine(cache=tmp_path / "cache")
    with warm_engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        assert len(dict(session.as_completed())) == len(QUERIES)
    roots, children = _tree(registry, "process")
    assert len(roots) == len(QUERIES)
    for span_id, root in roots.items():
        assert root["meta"]["mode"] == "warm"
        tree = children[span_id]
        assert len(tree["query.ground"]) == 1
        assert tree["query.ground"][0]["meta"]["cached"] is True
        assert tree["query.collect"] == []  # cache hit => zero collect spans
        assert len(tree["query.finish"]) == 1
        assert tree["query.finish"][0]["meta"]["mode"] == "warm"


def test_thread_sessions_emit_one_query_span_per_answer():
    registry = get_registry()
    engine = fresh_engine()
    with engine.open_session(jobs=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        got = dict(session.as_completed())
    assert len(got) == len(QUERIES)
    roots = registry.spans("query")
    assert len(roots) == len(QUERIES)
    assert sorted(span["meta"]["index"] for span in roots) == [0, 1, 2, 3]
    assert all(span["meta"]["outcome"] == "ok" for span in roots)


def test_failed_query_root_span_reports_error(tmp_path):
    registry = get_registry()
    engine = fresh_engine(cache=tmp_path / "cache")
    with engine.open_session(jobs=1, executor="process", shards=1) as session:
        session.submit("Score[S] <= NoSuchAttr[A] ?")
        ((_, outcome),) = list(session.as_completed())
    assert not isinstance(outcome, dict)
    (root,) = registry.spans("query")
    assert root["meta"]["outcome"] == "error"


def test_engine_grounding_emits_cached_span(tmp_path):
    registry = get_registry()
    engine = fresh_engine(cache=tmp_path / "cache")
    engine.answer(QUERIES["ate"])
    warm = fresh_engine(cache=tmp_path / "cache")
    warm.graph  # noqa: B018 - force grounding (answer may skip it entirely)
    spans = registry.spans("engine.ground")
    assert [span["meta"]["cached"] for span in spans] == [False, True]
    counters = registry.counters()
    assert counters.get("cache.store", 0) >= 1
    assert counters.get("cache.hit", 0) >= 1
