"""Structured-telemetry suite (``docs/observability.md``).

Contracts held here:

* **frozen schema** — the event registry's exact contents (names, kinds,
  required/optional fields) are pinned; extending telemetry is a deliberate
  two-place change (schema + this snapshot), never silent drift;
* **validation** — every emission is checked against the registry: wrong
  names, kinds and metadata fields raise :class:`TelemetryError` in the
  emitting thread;
* **registry mechanics** — counters accumulate, gauges keep the last value,
  the ring buffer is bounded, span handles nest and finish idempotently,
  the JSON-lines sink round-trips through :func:`read_log`, and a forked
  child's inherited registry starts clean;
* **span-tree invariants** — every answered process-mode query emits
  exactly one ``query`` root with one ``query.ground`` and one
  ``query.finish`` child, nested monotonic timestamps, and ``query.collect``
  children only when collection actually ran: a warm (cached unit table)
  answer emits **zero** collect spans.
"""

from __future__ import annotations

import pytest

from repro.carl.engine import CaRLEngine
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database
from repro.observability import (
    EVENTS,
    TelemetryError,
    TelemetryRegistry,
    get_registry,
    read_log,
    reset_registry,
    summarize_events,
    validate_event,
)

QUERIES = {
    "ate": "Score[S] <= Prestige[A] ?",
    "agg": "AVG_Score[A] <= Prestige[A] ?",
    "thresh": "AVG_Score[A] <= Prestige[A] >= 1 ?",
    "peers": "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
}


def fresh_engine(**kwargs) -> CaRLEngine:
    return CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, **kwargs)


@pytest.fixture(autouse=True)
def fresh_registry():
    registry = reset_registry()
    yield registry
    reset_registry()


# ----------------------------------------------------------------------
# the frozen schema
# ----------------------------------------------------------------------
#: Pinned snapshot of the registry: name -> (kind, required, optional).
#: Changing telemetry means changing the schema module AND this snapshot —
#: that review step is the whole point (drift would silently break every
#: consumer of the JSON-lines log).
FROZEN_SCHEMA = {
    "query": ("span", ("index",), ("mode", "outcome", "tenant", "executor")),
    "query.ground": ("span", (), ("cached",)),
    "query.collect": ("span", ("start", "stop"), ("worker", "attempt", "outcome")),
    "query.finish": ("span", (), ("mode", "worker", "outcome")),
    "engine.ground": ("span", (), ("cached",)),
    "cache.hit": ("counter", (), ("kind",)),
    "cache.miss": ("counter", (), ("kind",)),
    "cache.store": ("counter", (), ("kind",)),
    "cache.quarantined": ("counter", (), ("kind",)),
    "cache.store_error": ("counter", (), ("kind",)),
    "cache.degraded": ("gauge", (), ()),
    "scheduler.retry": ("counter", (), ("kind", "backoff_ms")),
    "scheduler.timeout": ("counter", (), ()),
    "scheduler.cancelled": ("counter", (), ()),
    "scheduler.worker_death": ("counter", (), ()),
    "scheduler.worker_killed": ("counter", (), ("reason",)),
    "scheduler.circuit_open": ("counter", (), ()),
    "scheduler.serial_fallback": ("counter", (), ("reason",)),
    "scheduler.queue_depth": ("gauge", (), ()),
    "fault.injected": ("counter", ("site",), ("key",)),
    "daemon.admit": ("counter", ("tenant",), ()),
    "daemon.reject": ("counter", ("tenant",), ("reason",)),
    "daemon.sessions": ("gauge", (), ()),
    "session.queue_full": ("counter", (), ()),
}


def test_event_schema_is_frozen():
    snapshot = {
        name: (spec.kind, spec.required, spec.optional) for name, spec in EVENTS.items()
    }
    assert snapshot == FROZEN_SCHEMA


def test_validate_event_rejects_off_schema_emissions():
    with pytest.raises(TelemetryError, match="unregistered"):
        validate_event("no.such.event", "counter", {})
    with pytest.raises(TelemetryError, match="is a counter"):
        validate_event("cache.hit", "span", {})
    with pytest.raises(TelemetryError, match="does not allow"):
        validate_event("cache.hit", "counter", {"surprise": 1})
    with pytest.raises(TelemetryError, match="requires"):
        validate_event("daemon.admit", "counter", {})
    validate_event("daemon.admit", "counter", {"tenant": "a"})  # conforming


def test_registry_rejects_off_schema_emissions_at_the_call_site():
    registry = get_registry()
    with pytest.raises(TelemetryError):
        registry.count("no.such.event")
    with pytest.raises(TelemetryError):
        registry.gauge("cache.hit", 1.0)  # declared as a counter
    with pytest.raises(TelemetryError):
        registry.start_span("query")  # missing required index
    span = registry.start_span("query", index=0)
    with pytest.raises(TelemetryError):
        registry.finish_span(span, bogus_field=1)


# ----------------------------------------------------------------------
# registry mechanics
# ----------------------------------------------------------------------
def test_counters_accumulate_and_gauges_keep_last_value():
    registry = get_registry()
    registry.count("cache.hit", kind="grounding")
    registry.count("cache.hit", 2, kind="unit_table")
    registry.gauge("scheduler.queue_depth", 5)
    registry.gauge("scheduler.queue_depth", 2)
    assert registry.counters()["cache.hit"] == 3
    assert registry.gauges()["scheduler.queue_depth"] == 2
    assert len(registry.events(name="cache.hit")) == 2


def test_ring_buffer_is_bounded():
    registry = reset_registry(capacity=16)
    for _ in range(100):
        registry.count("cache.miss")
    assert len(registry.events()) == 16
    assert registry.counters()["cache.miss"] == 100  # totals are not windowed


def test_spans_nest_with_monotonic_timestamps_and_finish_idempotently():
    registry = get_registry()
    root = registry.start_span("query", index=0)
    child = registry.start_span("query.ground", trace=root.trace, parent=root)
    registry.finish_span(child, cached=False)
    registry.finish_span(child)  # idempotent: emits once
    registry.finish_span(root, outcome="ok")
    spans = registry.spans()
    assert [span["event"] for span in spans] == ["query.ground", "query"]
    ground, query = spans
    assert ground["trace"] == query["trace"]
    assert ground["parent"] == query["span"]
    assert query["t0"] <= ground["t0"] <= ground["t1"] <= query["t1"]
    assert query["meta"] == {"index": 0, "outcome": "ok"}


def test_span_context_manager_emits_on_exit():
    registry = get_registry()
    with registry.span("engine.ground", cached=True):
        pass
    (record,) = registry.spans("engine.ground")
    assert record["meta"] == {"cached": True}


def test_sink_round_trips_through_read_log_and_summarize(tmp_path):
    log = tmp_path / "telemetry.jsonl"
    registry = reset_registry(sink=log)
    with registry.span("engine.ground", cached=False):
        pass
    registry.count("cache.store", kind="grounding")
    registry.gauge("daemon.sessions", 3)
    log.open("a").write("not json\n")  # malformed lines are skipped
    events = read_log(log)
    assert [event["event"] for event in events] == [
        "engine.ground",
        "cache.store",
        "daemon.sessions",
    ]
    summary = summarize_events(events)
    assert summary["events"] == 3
    assert summary["spans"]["engine.ground"]["count"] == 1
    assert summary["spans"]["engine.ground"]["p99_seconds"] >= 0.0
    assert summary["counters"] == {"cache.store": 1}
    assert summary["gauges"] == {"daemon.sessions": 3.0}
    assert read_log(tmp_path / "missing.jsonl") == []


def test_forked_child_registry_starts_clean(tmp_path):
    registry = TelemetryRegistry(sink=tmp_path / "parent.jsonl")
    registry.count("cache.hit")
    assert registry.counters() == {"cache.hit": 1}
    registry._pid = -1  # simulate: this handle was inherited across a fork
    registry.count("cache.miss")
    # The "child" starts from scratch and never touches the parent's sink.
    assert registry.counters() == {"cache.miss": 1}
    assert registry.sink_path is None


# ----------------------------------------------------------------------
# span-tree invariants over real sessions
# ----------------------------------------------------------------------
def _tree(registry, executor):
    """Map each ``query`` root span to its children, keyed by span name."""
    roots = {span["span"]: span for span in registry.spans("query")}
    children = {span_id: {"query.ground": [], "query.collect": [], "query.finish": []}
                for span_id in roots}
    for span in registry.spans():
        if span["event"] in ("query.ground", "query.collect", "query.finish"):
            if span["parent"] in children:
                children[span["parent"]][span["event"]].append(span)
    assert all(span["meta"].get("executor") == executor for span in roots.values())
    return roots, children


def test_process_query_span_trees_cold_then_warm(tmp_path):
    registry = get_registry()
    engine = fresh_engine(cache=tmp_path / "cache")
    with engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        assert len(dict(session.as_completed())) == len(QUERIES)
    roots, children = _tree(registry, "process")
    assert len(roots) == len(QUERIES)  # exactly one root per answered query
    for span_id, root in roots.items():
        assert root["meta"]["outcome"] == "ok"
        assert root["meta"]["mode"] == "cold"
        tree = children[span_id]
        assert len(tree["query.ground"]) == 1
        assert len(tree["query.finish"]) == 1
        # A collect span hangs off the query that *created* the shard task;
        # queries sharing a collection signature share those tasks, so only
        # the first such query carries the collect children.  The first
        # submitted query always collects.
        if root["meta"]["index"] == 0:
            assert len(tree["query.collect"]) >= 1
        assert tree["query.finish"][0]["meta"]["mode"] == "cold"
        for child in (
            tree["query.ground"] + tree["query.collect"] + tree["query.finish"]
        ):
            assert child["trace"] == root["trace"]
            # Nested monotonic clocks: children live inside their root.
            assert root["t0"] <= child["t0"] <= child["t1"] <= root["t1"]
        # Phase order: ground ends before any collect starts, and every
        # collect ends before the finish starts.
        ground, finish = tree["query.ground"][0], tree["query.finish"][0]
        for collect in tree["query.collect"]:
            assert ground["t1"] <= collect["t0"]
            assert collect["t1"] <= finish["t0"]

    # Warm re-sweep: cached unit tables answer without any collection —
    # every root is mode="warm" and emits zero collect spans.
    registry.clear()
    warm_engine = fresh_engine(cache=tmp_path / "cache")
    with warm_engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        assert len(dict(session.as_completed())) == len(QUERIES)
    roots, children = _tree(registry, "process")
    assert len(roots) == len(QUERIES)
    for span_id, root in roots.items():
        assert root["meta"]["mode"] == "warm"
        tree = children[span_id]
        assert len(tree["query.ground"]) == 1
        assert tree["query.ground"][0]["meta"]["cached"] is True
        assert tree["query.collect"] == []  # cache hit => zero collect spans
        assert len(tree["query.finish"]) == 1
        assert tree["query.finish"][0]["meta"]["mode"] == "warm"


def test_thread_sessions_emit_one_query_span_per_answer():
    registry = get_registry()
    engine = fresh_engine()
    with engine.open_session(jobs=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        got = dict(session.as_completed())
    assert len(got) == len(QUERIES)
    roots = registry.spans("query")
    assert len(roots) == len(QUERIES)
    assert sorted(span["meta"]["index"] for span in roots) == [0, 1, 2, 3]
    assert all(span["meta"]["outcome"] == "ok" for span in roots)


def test_failed_query_root_span_reports_error(tmp_path):
    registry = get_registry()
    engine = fresh_engine(cache=tmp_path / "cache")
    with engine.open_session(jobs=1, executor="process", shards=1) as session:
        session.submit("Score[S] <= NoSuchAttr[A] ?")
        ((_, outcome),) = list(session.as_completed())
    assert not isinstance(outcome, dict)
    (root,) = registry.spans("query")
    assert root["meta"]["outcome"] == "error"


def test_engine_grounding_emits_cached_span(tmp_path):
    registry = get_registry()
    engine = fresh_engine(cache=tmp_path / "cache")
    engine.answer(QUERIES["ate"])
    warm = fresh_engine(cache=tmp_path / "cache")
    warm.graph  # noqa: B018 - force grounding (answer may skip it entirely)
    spans = registry.spans("engine.ground")
    assert [span["meta"]["cached"] for span in spans] == [False, True]
    counters = registry.counters()
    assert counters.get("cache.store", 0) >= 1
    assert counters.get("cache.hit", 0) >= 1
