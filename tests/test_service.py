"""Streaming query service suite (``docs/service.md``).

Contracts held here:

* **streaming parity** — the multiset of answers an ``answer_iter`` /
  ``QuerySession`` run yields is a permutation of the serial answers, and
  each completed answer is bit-identical to ``engine.answer`` of the same
  query (Hypothesis over jobs and query subsets for the thread mode; a
  (jobs, shards) grid for the process scheduler);
* **fault tolerance** — a worker that raises is retried on another worker
  (the faulting one is excluded); a worker that *dies* is replaced and its
  task requeued; when every attempt fails, only the affected query yields a
  ``QueryError`` and the session streams on;
* **cancellation / timeout semantics** — cancelled queries never yield,
  in-flight shard tasks are reaped (results discarded on arrival), expired
  queries yield a timeout ``QueryError`` without touching their neighbours;
* **shard-level cache reuse** — a warm re-sweep over an unchanged database
  runs zero collect tasks (every shard range resolves from the artifact
  cache), verified through the scheduler's stats.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.store import ArtifactCache
from repro.carl.engine import CaRLEngine
from repro.carl.errors import ParseError, QueryError
from repro.carl.queries import QueryAnswer
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database
from repro.service import QuerySession

QUERIES = {
    "ate": "Score[S] <= Prestige[A] ?",
    "agg": "AVG_Score[A] <= Prestige[A] ?",
    "thresh": "AVG_Score[A] <= Prestige[A] >= 1 ?",
    "peers": "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
}
QUERY_LIST = list(QUERIES.values())


def fresh_engine(**kwargs) -> CaRLEngine:
    return CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, **kwargs)


def answer_fingerprint(answer: QueryAnswer):
    """repr of every numeric result field: exact float round-trip, NaN-safe."""
    result = answer.result
    if hasattr(result, "ate"):
        fields = (
            result.ate, result.naive_difference, result.treated_mean,
            result.control_mean, result.correlation, result.n_units,
            result.n_treated, result.n_control, result.confidence_interval,
        )
    else:
        fields = (
            result.aie, result.are, result.aoe, result.naive_difference,
            result.correlation, result.n_units, result.mean_peer_count,
        )
    return repr(fields) + repr(answer.unit_table_summary)


@pytest.fixture(scope="module")
def serial_answers():
    engine = fresh_engine()
    return {name: engine.answer(query) for name, query in QUERIES.items()}


# ----------------------------------------------------------------------
# streaming parity: completion order is a permutation of serial answers
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    jobs=st.integers(min_value=1, max_value=4),
    subset=st.lists(st.sampled_from(sorted(QUERIES)), min_size=1, max_size=6),
)
def test_thread_streaming_is_permutation_of_serial(jobs, subset, serial_answers):
    engine = fresh_engine()
    queries = [QUERIES[name] for name in subset]
    outcomes = list(engine.answer_iter(queries, jobs=jobs))
    assert sorted(index for index, _ in outcomes) == list(range(len(subset)))
    for index, outcome in outcomes:
        assert isinstance(outcome, QueryAnswer)
        assert answer_fingerprint(outcome) == answer_fingerprint(
            serial_answers[subset[index]]
        )


@pytest.mark.parametrize("jobs,shards", [(1, 1), (2, 2), (2, 3), (3, 1)])
def test_process_streaming_is_bit_identical_to_serial(jobs, shards, serial_answers):
    engine = fresh_engine()
    got = dict(
        engine.answer_iter(QUERIES, jobs=jobs, executor="process", shards=shards)
    )
    assert set(got) == set(QUERIES)
    for name, outcome in got.items():
        assert isinstance(outcome, QueryAnswer), (name, outcome)
        assert answer_fingerprint(outcome) == answer_fingerprint(serial_answers[name])


def test_answer_iter_dict_yields_names_list_yields_positions():
    engine = fresh_engine()
    named = dict(engine.answer_iter({"a": QUERIES["ate"]}))
    assert set(named) == {"a"}
    positional = dict(engine.answer_iter([QUERIES["ate"], QUERIES["agg"]], jobs=2))
    assert set(positional) == {0, 1}


def test_answer_iter_streams_before_batch_finishes():
    """The first event arrives while later queries are still running."""
    engine = fresh_engine()
    release = threading.Event()
    original = engine.answer

    def gated(query, *args, **kwargs):
        if "Score[S]" in str(query):
            release.wait(timeout=10.0)
        return original(query, *args, **kwargs)

    engine.answer = gated
    iterator = engine.answer_iter(
        {"fast": QUERIES["agg"], "slow": QUERIES["ate"]}, jobs=2
    )
    name, outcome = next(iterator)
    assert name == "fast" and isinstance(outcome, QueryAnswer)
    release.set()
    rest = dict(iterator)
    assert set(rest) == {"slow"}


def test_answer_iter_syntax_error_raises_up_front():
    engine = fresh_engine()
    with pytest.raises(ParseError):
        list(engine.answer_iter(["this is not CaRL"]))


def test_semantic_error_yields_query_error_event_not_batch_failure():
    engine = fresh_engine()
    queries = {"bad": "Score[S] <= NoSuchAttr[A] ?", "good": QUERIES["ate"]}
    for executor in ("thread", "process"):
        got = dict(engine.answer_iter(queries, jobs=2, executor=executor))
        assert isinstance(got["bad"], QueryError)
        assert isinstance(got["good"], QueryAnswer)


# ----------------------------------------------------------------------
# session surface: submit / result / cancel / options
# ----------------------------------------------------------------------
def test_session_result_and_per_query_options(serial_answers):
    engine = fresh_engine()
    reference = fresh_engine().answer(QUERIES["ate"], estimator="ipw", bootstrap=10, seed=3)
    with engine.open_session(jobs=2) as session:
        plain = session.submit(QUERIES["ate"])
        tuned = session.submit(QUERIES["ate"], estimator="ipw", bootstrap=10, seed=3)
        assert answer_fingerprint(session.result(plain)) == answer_fingerprint(
            serial_answers["ate"]
        )
        assert answer_fingerprint(session.result(tuned)) == answer_fingerprint(reference)
        # result() is idempotent and cancel() after delivery is refused.
        assert session.result(tuned).result.estimator == "ipw"
        assert session.cancel(tuned) is False


def test_session_rejects_bad_options():
    engine = fresh_engine()
    with pytest.raises(QueryError, match="executor"):
        QuerySession(engine, executor="fiber")
    with pytest.raises(QueryError, match="jobs"):
        QuerySession(engine, jobs=0)
    with pytest.raises(QueryError, match="shards"):
        QuerySession(engine, jobs=2, shards=0, executor="process")
    with pytest.raises(QueryError, match="shards"):
        QuerySession(engine, jobs=2, shards=2)  # thread executor
    with pytest.raises(QueryError, match="columnar"):
        QuerySession(engine, jobs=2, executor="process", backend="rows")
    with pytest.raises(QueryError, match="retries"):
        QuerySession(engine, jobs=2, executor="process", retries=-1)
    session = engine.open_session()
    session.close()
    with pytest.raises(QueryError, match="closed"):
        session.submit(QUERIES["ate"])
    session.close()  # idempotent


def test_result_unknown_index_and_timeout():
    engine = fresh_engine()
    with engine.open_session(jobs=1) as session:
        with pytest.raises(QueryError, match="unknown"):
            session.result(7)


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_cancelled_query_never_yields(executor, monkeypatch):
    """jobs=1 and slowed tasks: the second query is still queued when it is
    cancelled, so it must never produce an event — and the first query's
    answer must be unaffected."""
    if executor == "process":
        monkeypatch.setenv("REPRO_SERVICE_TASK_DELAY", "0.2")
        engine = fresh_engine()
        session = engine.open_session(jobs=1, executor="process", shards=1)
    else:
        engine = fresh_engine()
        release = threading.Event()
        original = engine.answer

        def gated(query, *args, **kwargs):
            release.wait(timeout=10.0)
            return original(query, *args, **kwargs)

        engine.answer = gated
        session = engine.open_session(jobs=1)
    with session:
        first = session.submit(QUERIES["ate"])
        second = session.submit(QUERIES["agg"])
        assert session.cancel(second) is True
        assert session.cancel(second) is True  # idempotent
        if executor == "thread":
            release.set()
        got = dict(session.as_completed())
        assert set(got) == {first}
        assert isinstance(got[first], QueryAnswer)
        assert session.stats()["cancelled"] == 1
        assert session.outstanding() == 0


def test_process_timeout_yields_query_error_and_neighbours_survive(monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_TASK_DELAY", "0.3")
    engine = fresh_engine()
    with engine.open_session(jobs=2, executor="process", shards=1) as session:
        doomed = session.submit(QUERIES["ate"], timeout=0.05)
        healthy = session.submit(QUERIES["agg"])
        got = dict(session.as_completed())
        assert isinstance(got[doomed], QueryError)
        assert "timed out" in str(got[doomed])
        assert isinstance(got[healthy], QueryAnswer)
        assert session.stats()["scheduler"]["timeouts"] == 1


def test_thread_timeout_reaps_late_result(monkeypatch):
    engine = fresh_engine()
    started = threading.Event()
    release = threading.Event()
    original = engine.answer

    def gated(query, *args, **kwargs):
        started.set()
        release.wait(timeout=10.0)
        return original(query, *args, **kwargs)

    engine.answer = gated
    with engine.open_session(jobs=1) as session:
        index = session.submit(QUERIES["ate"], timeout=0.05)
        assert started.wait(timeout=5.0)
        outcome = session.result(index)
        assert isinstance(outcome, QueryError) and "timed out" in str(outcome)
        release.set()
        # The late in-flight result is reaped, never delivered.
        assert session.outstanding() == 0
        assert dict(session.as_completed()) == {}


def test_as_completed_timeout_raises_and_session_stays_usable():
    engine = fresh_engine()
    release = threading.Event()
    original = engine.answer

    def gated(query, *args, **kwargs):
        release.wait(timeout=10.0)
        return original(query, *args, **kwargs)

    engine.answer = gated
    with engine.open_session(jobs=1) as session:
        index = session.submit(QUERIES["ate"])
        with pytest.raises(TimeoutError):
            for _ in session.as_completed(timeout=0.1):
                pytest.fail("nothing should complete while the worker is gated")
        release.set()
        got = dict(session.as_completed())
        assert set(got) == {index}
        assert isinstance(got[index], QueryAnswer)


def test_cancel_after_timeout_withdraws_the_timeout_event():
    """A timed-out query's undelivered QueryError can still be cancelled:
    cancel() returns True and the event is never delivered."""
    engine = fresh_engine()
    release = threading.Event()
    original = engine.answer

    def gated(query, *args, **kwargs):
        if "AVG_Score" not in str(query):
            release.wait(timeout=10.0)
        return original(query, *args, **kwargs)

    engine.answer = gated
    with engine.open_session(jobs=2) as session:
        doomed = session.submit(QUERIES["ate"], timeout=0.05)
        healthy = session.submit(QUERIES["agg"])
        # Consuming the healthy result pumps the loop past doomed's deadline.
        assert isinstance(session.result(healthy), QueryAnswer)
        assert session.cancel(doomed) is True
        release.set()
        assert dict(session.as_completed()) == {}
        with pytest.raises(QueryError, match="cancelled"):
            session.result(doomed)


def test_cancel_racing_scheduler_planning_never_emits(monkeypatch):
    """Cancel issued while the dispatcher is inside the (unlocked) planning
    call must not be clobbered by the plan completing."""
    monkeypatch.setenv("REPRO_SERVICE_TASK_DELAY", "0.05")
    engine = fresh_engine()
    with engine.open_session(jobs=2, executor="process", shards=2) as session:
        keep = session.submit(QUERIES["ate"])
        for _ in range(10):
            index = session.submit(QUERIES["agg"])
            session.cancel(index)  # races the dispatcher's _plan
        got = dict(session.as_completed())
        assert set(got) == {keep}


# ----------------------------------------------------------------------
# retry-and-requeue scheduling under injected faults
# ----------------------------------------------------------------------
def test_faulting_worker_is_excluded_and_all_queries_succeed(
    monkeypatch, serial_answers
):
    """Worker 0 raises on every task: each of its tasks is requeued onto the
    other worker and every query still answers, bit-identically."""
    monkeypatch.setenv("REPRO_SHARD_WORKER_FAULT", "raise@0")
    engine = fresh_engine()
    with engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        got = dict(session.as_completed())
        stats = session.stats()["scheduler"]
    assert stats["retries"] >= 1
    assert stats["worker_deaths"] == 0
    names = list(QUERIES)
    for index, outcome in got.items():
        assert isinstance(outcome, QueryAnswer), outcome
        assert answer_fingerprint(outcome) == answer_fingerprint(
            serial_answers[names[index]]
        )


def test_dead_worker_is_replaced_and_task_requeued(monkeypatch, serial_answers):
    """Worker 0 exits abruptly: the scheduler spawns a replacement, requeues
    the orphaned task, and the whole sweep completes."""
    monkeypatch.setenv("REPRO_SHARD_WORKER_FAULT", "exit@0")
    engine = fresh_engine()
    with engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        got = dict(session.as_completed())
        stats = session.stats()["scheduler"]
    assert stats["worker_deaths"] >= 1
    assert stats["workers_spawned"] >= 3  # 2 initial + >= 1 replacement
    names = list(QUERIES)
    for index, outcome in got.items():
        assert isinstance(outcome, QueryAnswer), outcome
        assert answer_fingerprint(outcome) == answer_fingerprint(
            serial_answers[names[index]]
        )


def test_budget_exhaustion_fails_only_that_query(monkeypatch):
    """Every worker faults on every task: each query fails with its own
    QueryError after the budget, the session never hangs or raises."""
    monkeypatch.setenv("REPRO_SHARD_WORKER_FAULT", "raise")
    engine = fresh_engine()
    with engine.open_session(jobs=2, executor="process", shards=2, retries=1) as session:
        for query in QUERIES.values():
            session.submit(query)
        got = dict(session.as_completed())
        stats = session.stats()["scheduler"]
    assert len(got) == len(QUERIES)
    assert all(isinstance(outcome, QueryError) for outcome in got.values())
    assert stats["retries"] >= 1


def test_answer_all_process_still_fails_batch_on_untargeted_fault(monkeypatch):
    """The PR 4 contract is unchanged: without the scheduler, a worker fault
    fails the whole batch cleanly."""
    monkeypatch.setenv("REPRO_SHARD_WORKER_FAULT", "raise")
    with pytest.raises(QueryError):
        fresh_engine().answer_all(QUERIES, jobs=2, executor="process", shards=2)


@settings(max_examples=6, deadline=None)
@given(
    jobs=st.integers(min_value=1, max_value=3),
    shards=st.integers(min_value=1, max_value=3),
    fault=st.sampled_from([None, "raise@0"]),
)
def test_process_streaming_parity_under_fault_grid(jobs, shards, fault, serial_answers):
    """Hypothesis sweep over (jobs, shards, fault injection): completed
    answers stay a bit-identical permutation of the serial ones."""
    import os

    if fault is None:
        os.environ.pop("REPRO_SHARD_WORKER_FAULT", None)
    else:
        os.environ["REPRO_SHARD_WORKER_FAULT"] = fault
    try:
        engine = fresh_engine()
        got = dict(
            engine.answer_iter(
                QUERY_LIST, jobs=jobs, executor="process", shards=shards
            )
        )
        assert sorted(got) == list(range(len(QUERY_LIST)))
        names = list(QUERIES)
        if fault == "raise@0" and jobs == 1:
            # The only worker is the faulting one: exclusion cannot help, so
            # each query fails alone once the budget is spent — but every
            # query still yields its own event.
            assert all(isinstance(outcome, QueryError) for outcome in got.values())
            return
        for index, outcome in got.items():
            assert isinstance(outcome, QueryAnswer), (fault, jobs, shards, outcome)
            assert answer_fingerprint(outcome) == answer_fingerprint(
                serial_answers[names[index]]
            )
    finally:
        os.environ.pop("REPRO_SHARD_WORKER_FAULT", None)


# ----------------------------------------------------------------------
# shard-level cache reuse through the scheduler
# ----------------------------------------------------------------------
def test_warm_resweep_runs_zero_collect_tasks(tmp_path, serial_answers):
    cold_engine = fresh_engine(cache=tmp_path / "cache")
    with cold_engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        cold = dict(session.as_completed())
        cold_stats = session.stats()["scheduler"]
    assert cold_stats["collect_tasks_run"] > 0
    # Drop the finished unit tables so the re-sweep must schedule again —
    # and prove it resolves every shard range from the cache instead.
    ArtifactCache(tmp_path / "cache").clear(kind="unit_table")
    warm_engine = fresh_engine(cache=tmp_path / "cache")
    with warm_engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        warm = dict(session.as_completed())
        warm_stats = session.stats()["scheduler"]
    assert warm_stats["collect_tasks_run"] == 0
    assert warm_stats["collect_cache_hits"] == cold_stats["collect_tasks_run"]
    names = list(QUERIES)
    for index, outcome in warm.items():
        assert answer_fingerprint(outcome) == answer_fingerprint(
            serial_answers[names[index]]
        )
        assert answer_fingerprint(outcome) == answer_fingerprint(cold[index])


def test_fully_warm_resweep_answers_from_unit_tables(tmp_path):
    """With unit tables intact the scheduler runs no tasks at all."""
    engine = fresh_engine(cache=tmp_path / "cache")
    list(engine.answer_iter(QUERIES, jobs=2, executor="process", shards=2))
    warm_engine = fresh_engine(cache=tmp_path / "cache")
    with warm_engine.open_session(jobs=2, executor="process", shards=2) as session:
        for query in QUERIES.values():
            session.submit(query)
        got = dict(session.as_completed())
        stats = session.stats()["scheduler"]
    assert len(got) == len(QUERIES)
    assert stats["collect_tasks_run"] == 0
    assert stats["finish_tasks_run"] == 0
    assert warm_engine.grounding_runs == 0


def test_session_pins_released_and_no_sidecars_leak(tmp_path):
    engine = fresh_engine(cache=tmp_path / "cache")
    with engine.open_session(jobs=2, executor="process", shards=2) as session:
        session.submit(QUERIES["ate"])
        session.result(0)
        # While the session is live its partials are pinned on disk.
        assert list((tmp_path / "cache").glob("*/*.pin.*"))
    assert engine.cache.pinned_paths() == set()
    assert not list((tmp_path / "cache").glob("*/*.pin.*"))
