"""Unit tests for graph / unit-table export helpers (repro.carl.export)."""

from __future__ import annotations

import pytest

from repro.carl.export import (
    attribute_graph_to_dot,
    grounded_graph_to_dot,
    unit_table_to_table,
)
from repro.carl.model import RelationalCausalModel
from repro.carl.parser import parse_program
from repro.datasets import TOY_REVIEW_PROGRAM
from repro.db.database import Database


class TestGroundedGraphDot:
    def test_contains_every_node_and_edge(self, toy_engine):
        dot = grounded_graph_to_dot(toy_engine.graph)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == toy_engine.graph.number_of_edges()
        assert "Score['s1']" in dot
        # Aggregate nodes are boxes, plain attributes ellipses.
        assert "box" in dot and "ellipse" in dot

    def test_highlight_marks_nodes(self, toy_engine):
        dot = grounded_graph_to_dot(
            toy_engine.graph, highlight=lambda node: node.attribute == "Prestige"
        )
        assert dot.count("lightblue") == 3

    def test_max_nodes_truncates(self, toy_engine):
        dot = grounded_graph_to_dot(toy_engine.graph, max_nodes=5)
        assert "omitted" in dot
        assert dot.count("[shape=") == 5


class TestAttributeGraphDot:
    def test_structure(self):
        model = RelationalCausalModel.from_program(parse_program(TOY_REVIEW_PROGRAM))
        dot = attribute_graph_to_dot(model)
        assert '"Qualification" -> "Prestige"' in dot
        assert '"Score" -> "AVG_Score"' in dot
        # Latent attributes are drawn with double peripheries.
        assert '"Quality" [shape=ellipse, peripheries=2]' in dot


class TestUnitTableExport:
    def test_round_trip_to_relational_table(self, toy_engine):
        unit_table = toy_engine.unit_table("AVG_Score[A] <= Prestige[A] ?")
        table = unit_table_to_table(unit_table)
        assert len(table) == len(unit_table)
        assert "unit" in table.columns
        assert "AVG_Score" in table.columns
        bob = [row for row in table if row["unit"] == "Bob"][0]
        assert bob["AVG_Score"] == pytest.approx(0.75)

    def test_exported_table_is_csv_compatible(self, toy_engine, tmp_path):
        unit_table = toy_engine.unit_table("AVG_Score[A] <= Prestige[A] ?")
        database = Database("export")
        database.add_table(unit_table_to_table(unit_table))
        paths = database.export_csv(tmp_path)
        assert paths[0].exists()
        restored = Database("restored").import_csv("unit_table", paths[0])
        assert len(restored) == 3
