"""Unit tests for covariate detection (repro.carl.covariates, Theorem 5.2)."""

from __future__ import annotations

import pytest

from repro.carl.causal_graph import GroundedAttribute
from repro.carl.covariates import (
    adjustment_attributes,
    minimal_adjustment_set,
    parent_adjustment_set,
    verify_adjustment_set,
)
from repro.carl.grounding import Grounder
from repro.carl.model import RelationalCausalModel
from repro.carl.parser import parse_program
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database


def node(attribute: str, *key: object) -> GroundedAttribute:
    return GroundedAttribute(attribute, tuple(key))


@pytest.fixture(scope="module")
def toy_graph():
    program = parse_program(TOY_REVIEW_PROGRAM)
    model = RelationalCausalModel.from_program(program)
    grounder = Grounder(model, model.schema.bind(toy_review_database()))
    return grounder.ground(), model


def observed(model):
    return model.is_observed


class TestParentAdjustment:
    def test_example_5_3_submission_s1(self, toy_graph):
        """For Score[s1] and treatments on all three authors, the sufficient set
        is the qualifications of Bob and Eva (the authors of s1)."""
        graph, model = toy_graph
        adjustment = parent_adjustment_set(
            graph,
            "Prestige",
            node("Score", "s1"),
            [("Bob",), ("Carlos",), ("Eva",)],
            observed(model),
        )
        assert set(adjustment) == {node("Qualification", "Bob"), node("Qualification", "Eva")}

    def test_example_5_3_submission_s2(self, toy_graph):
        graph, model = toy_graph
        adjustment = parent_adjustment_set(
            graph,
            "Prestige",
            node("Score", "s2"),
            [("Bob",), ("Carlos",), ("Eva",)],
            observed(model),
        )
        assert set(adjustment) == {node("Qualification", "Eva")}

    def test_latent_parents_are_excluded(self, toy_graph):
        graph, model = toy_graph
        # Parents of Score[s1] include Quality[s1] (latent), but the adjustment
        # set of the *treatment's* parents never contains it anyway; check that
        # is_observed filtering is honoured by faking everything unobserved.
        adjustment = parent_adjustment_set(
            graph, "Prestige", node("Score", "s1"), [("Bob",)], lambda name: False
        )
        assert adjustment == []

    def test_attribute_names_helper(self, toy_graph):
        graph, model = toy_graph
        adjustment = parent_adjustment_set(
            graph, "Prestige", node("Score", "s1"), [("Bob",), ("Eva",)], observed(model)
        )
        assert adjustment_attributes(adjustment) == ["Qualification"]


class TestVerification:
    def test_parent_set_satisfies_criterion(self, toy_graph):
        graph, model = toy_graph
        treated = [("Bob",), ("Eva",)]
        adjustment = parent_adjustment_set(
            graph, "Prestige", node("Score", "s1"), treated, observed(model)
        )
        assert verify_adjustment_set(graph, "Prestige", node("Score", "s1"), treated, adjustment)

    def test_empty_set_fails_criterion(self, toy_graph):
        graph, model = toy_graph
        treated = [("Bob",), ("Eva",)]
        # Without adjusting for qualifications, the backdoor through
        # Qualification -> Quality -> Score stays open.
        assert not verify_adjustment_set(graph, "Prestige", node("Score", "s1"), treated, [])

    def test_no_parents_is_trivially_verified(self, toy_graph):
        graph, model = toy_graph
        # Qualification has no parents at all, so any set verifies.
        assert verify_adjustment_set(graph, "Qualification", node("Prestige", "Bob"), [("Bob",)], [])


class TestMinimalAdjustment:
    def test_minimal_set_is_subset_of_parent_set(self, toy_graph):
        graph, model = toy_graph
        treated = [("Bob",), ("Eva",)]
        parent_set = parent_adjustment_set(
            graph, "Prestige", node("Score", "s1"), treated, observed(model)
        )
        minimal = minimal_adjustment_set(
            graph, "Prestige", node("Score", "s1"), treated, observed(model)
        )
        assert set(minimal) <= set(parent_set)
        assert verify_adjustment_set(graph, "Prestige", node("Score", "s1"), treated, minimal)

    def test_minimal_set_for_parentless_treatment_is_empty(self, toy_graph):
        graph, model = toy_graph
        minimal = minimal_adjustment_set(
            graph, "Qualification", node("Prestige", "Bob"), [("Bob",)], observed(model)
        )
        assert minimal == []
