"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import load_database_from_csv, main, result_to_dict
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database


@pytest.fixture()
def csv_dir(tmp_path):
    """Export the toy database to CSV files usable by --data."""
    toy_review_database().export_csv(tmp_path)
    return tmp_path


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "model.carl"
    path.write_text(TOY_REVIEW_PROGRAM)
    return path


class TestCsvLoading:
    def test_loads_all_predicates(self, csv_dir):
        database = load_database_from_csv(csv_dir, TOY_REVIEW_PROGRAM)
        assert set(database.table_names) == {
            "Person",
            "Submission",
            "Conference",
            "Author",
            "Submitted",
        }
        assert len(database.table("Author")) == 5

    def test_missing_file_raises(self, csv_dir):
        (csv_dir / "Author.csv").unlink()
        with pytest.raises(FileNotFoundError, match="Author"):
            load_database_from_csv(csv_dir, TOY_REVIEW_PROGRAM)


class TestMain:
    def test_demo_toy_text_output(self, capsys):
        exit_code = main(["--demo", "toy", "--query", "AVG_Score[A] <= Prestige[A] ?"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "ATE" in captured
        assert "naive difference" in captured

    def test_demo_default_queries(self, capsys):
        exit_code = main(["--demo", "toy"])
        assert exit_code == 0
        assert "AVG_Score" in capsys.readouterr().out

    def test_json_output_with_peer_query(self, capsys):
        exit_code = main(
            [
                "--demo",
                "toy",
                "--query",
                "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        (result,) = payload.values()
        assert result["kind"] == "effects"
        assert result["aoe"] == pytest.approx(result["aie"] + result["are"], abs=1e-9)

    def test_csv_data_source(self, csv_dir, program_file, capsys):
        exit_code = main(
            [
                "--data",
                str(csv_dir),
                "--program",
                str(program_file),
                "--query",
                "AVG_Score[A] <= Prestige[A] ?",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        (result,) = payload.values()
        assert result["kind"] == "ate"
        assert result["n_units"] == 3

    def test_process_executor_matches_serial(self, capsys):
        query = "AVG_Score[A] <= Prestige[A] ?"
        assert main(["--demo", "toy", "--query", query, "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert (
            main(
                [
                    "--demo", "toy", "--query", query, "--json",
                    "--jobs", "2", "--executor", "process", "--shards", "3",
                ]
            )
            == 0
        )
        sharded = json.loads(capsys.readouterr().out)
        for field in ("ate", "naive_difference", "correlation", "n_units"):
            assert sharded["query_0"][field] == serial["query_0"][field]

    def test_shards_flag_validation(self, capsys):
        assert main(["--demo", "toy", "--shards", "2"]) == 2
        assert "--executor process" in capsys.readouterr().err
        assert main(["--demo", "toy", "--shards", "0", "--executor", "process"]) == 2
        assert ">= 1" in capsys.readouterr().err

    def test_stream_text_output_matches_batch_fields(self, capsys):
        assert main(["--demo", "toy", "--stream", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "[ate]" in out and "ATE" in out

    def test_stream_json_emits_one_line_per_query(self, capsys):
        assert (
            main(
                ["--demo", "toy", "--stream", "--json", "--executor", "process",
                 "--jobs", "2",
                 "--query", "AVG_Score[A] <= Prestige[A] ?",
                 "--query", "Score[S] <= Prestige[A] ?"]
            )
            == 0
        )
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) == 2
        names = {json.loads(line)["name"] for line in lines}
        assert names == {"query_0", "query_1"}

    def test_stream_reports_per_query_errors_and_exit_code(self, capsys):
        assert (
            main(
                ["--demo", "toy", "--stream", "--jobs", "2",
                 "--query", "AVG_Score[A] <= Prestige[A] ?",
                 "--query", "Nope[A] <= Prestige[A] ?"]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "ERROR" in out and "ATE" in out  # the good query still answered

    def test_stream_flag_validation(self, capsys):
        assert main(["--demo", "toy", "--timeout", "1.0"]) == 2
        assert "--stream" in capsys.readouterr().err
        assert main(["--demo", "toy", "--stream", "--retries", "-1"]) == 2
        assert ">= 0" in capsys.readouterr().err

    def test_data_without_program_errors(self, csv_dir, capsys):
        assert main(["--data", str(csv_dir), "--query", "X[A] <= Y[A] ?"]) == 2

    def test_no_queries_errors(self, csv_dir, program_file):
        assert main(["--data", str(csv_dir), "--program", str(program_file)]) == 2


class TestResultSerialization:
    def test_ate_answer_serializes(self, toy_engine):
        answer = toy_engine.answer("AVG_Score[A] <= Prestige[A] ?", bootstrap=10)
        payload = result_to_dict(answer)
        assert payload["kind"] == "ate"
        json.dumps(payload)  # must be JSON-serializable

    def test_effects_answer_serializes(self, toy_engine):
        answer = toy_engine.answer("Score[S] <= Prestige[A] ? WHEN AT LEAST 1 PEERS TREATED")
        payload = result_to_dict(answer)
        assert payload["kind"] == "effects"
        json.dumps(payload)
