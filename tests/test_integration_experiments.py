"""Integration tests: the paper's qualitative findings must reproduce.

These tests run the full pipeline (generator -> CaRL program -> grounding ->
unit table -> estimation) on moderate-size synthetic instances and assert the
*shape* of every experimental finding in Section 6 of the paper:

* Table 3: causal effects are much smaller than the naive differences
  (MIMIC), and the NIS affordability effect reverses sign.
* Table 4: CaRL disentangles isolated and relational effects and recovers
  the ground truth on SYNTHETIC REVIEWDATA; AOE = AIE + ARE.
* Table 5 / Figure 8: CaRL is closer to the ground truth than the
  universal-table baseline.
* Figure 7: the prestige effect is significant at single-blind venues and
  negligible at double-blind venues even though the correlation is large in
  both.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CaRLEngine
from repro.baselines import flat_ate, universal_review_table


class TestSyntheticReviewGroundTruth:
    """Table 4: estimated vs true isolated/relational/overall effects."""

    @pytest.fixture(scope="class")
    def answers(self, synthetic_review_medium, synthetic_review_engine):
        data = synthetic_review_medium
        engine = synthetic_review_engine
        return {
            "single": engine.answer(data.queries["peer_single"]).result,
            "double": engine.answer(data.queries["peer_double"]).result,
        }

    def test_single_blind_effects(self, answers, synthetic_review_medium):
        gt = synthetic_review_medium.ground_truth
        result = answers["single"]
        assert result.aie == pytest.approx(gt.isolated_single, abs=0.2)
        assert result.are == pytest.approx(gt.relational, abs=0.2)
        assert result.aoe == pytest.approx(gt.overall_single, abs=0.25)

    def test_double_blind_effects(self, answers, synthetic_review_medium):
        gt = synthetic_review_medium.ground_truth
        result = answers["double"]
        assert result.aie == pytest.approx(gt.isolated_double, abs=0.2)
        assert result.are == pytest.approx(gt.relational, abs=0.2)
        assert result.aoe == pytest.approx(gt.overall_double, abs=0.25)

    def test_decomposition_proposition_4_1(self, answers):
        for result in answers.values():
            assert result.decomposition_gap < 1e-9

    def test_naive_difference_overstates_the_effect(self, answers):
        # Qualification confounds prestige and scores, so the naive difference
        # exceeds the causal overall effect in both regimes.
        assert answers["single"].naive_difference > answers["single"].aoe + 0.2
        assert answers["double"].naive_difference > answers["double"].aoe + 0.2


class TestUniversalTableComparison:
    """Table 5 / Figure 8: relational structure matters."""

    def test_carl_beats_universal_table(self, synthetic_review_medium, synthetic_review_engine):
        data = synthetic_review_medium
        gt = data.ground_truth

        carl_single = synthetic_review_engine.answer(data.queries["peer_single"]).result.aie

        universal = universal_review_table(data.database)
        single_rows = [row for row in universal if row["blind"] == "single"]
        flat = flat_ate(
            single_rows,
            treatment_column="prestige",
            outcome_column="score",
            covariate_columns=["qualification"],
            estimator="regression",
        ).ate

        carl_error = abs(carl_single - gt.isolated_single)
        flat_error = abs(flat - gt.isolated_single)
        assert carl_error < 0.2
        assert flat_error > carl_error

    def test_cate_distributions_differ(self, synthetic_review_medium, synthetic_review_engine):
        data = synthetic_review_medium
        carl_cate = synthetic_review_engine.conditional_effects(data.queries["ate_single"])
        universal = universal_review_table(data.database)
        from repro.baselines import flat_cate

        flat = flat_cate(
            [row for row in universal if row["blind"] == "single"],
            treatment_column="prestige",
            outcome_column="score",
            covariate_columns=["qualification"],
        )
        assert carl_cate.shape[0] > 0 and flat.shape[0] > 0
        assert np.all(np.isfinite(carl_cate)) and np.all(np.isfinite(flat))
        # Holding peers at their observed treatments, CaRL's per-unit contrast
        # is centred near the isolated ground truth (1.0).
        assert abs(float(np.mean(carl_cate)) - 1.0) < 0.35


class TestMimicFindings:
    """Table 3, rows MIMIC 1 and MIMIC 2."""

    @pytest.fixture(scope="class")
    def answers(self, mimic_small):
        engine = CaRLEngine(mimic_small.database, mimic_small.program)
        return {
            "death": engine.answer(mimic_small.queries["death"]).result,
            "length": engine.answer(mimic_small.queries["length"]).result,
        }

    def test_death_gap_between_naive_and_causal(self, answers):
        death = answers["death"]
        assert death.naive_difference > 0.025  # several percentage points
        assert abs(death.ate) < death.naive_difference / 2  # adjustment removes most of it

    def test_length_effect_is_attenuated(self, answers, mimic_small):
        length = answers["length"]
        assert length.naive_difference < -35.0
        assert length.ate > length.naive_difference  # attenuated towards zero
        assert length.ate == pytest.approx(mimic_small.true_length_effect, abs=15.0)


class TestNisFindings:
    """Table 3, row NIS 1: the affordability trend reverses."""

    def test_sign_reversal(self, nis_small):
        engine = CaRLEngine(nis_small.database, nis_small.program)
        result = engine.answer(nis_small.queries["affordability"]).result
        assert result.naive_difference > 0.10
        assert result.ate < 0.0
        assert result.ate == pytest.approx(nis_small.true_bill_effect, abs=0.07)


class TestReviewDataFindings:
    """Figure 7: single- vs double-blind contrast on (stand-in) REVIEWDATA."""

    @pytest.fixture(scope="class")
    def engine(self, review_small):
        return CaRLEngine(review_small.database, review_small.program)

    def test_single_blind_effect_larger_than_double_blind(self, review_small, engine):
        single = engine.answer(review_small.queries["ate_single"]).result
        double = engine.answer(review_small.queries["ate_double"]).result
        assert single.ate > double.ate + 0.03
        assert abs(double.ate) < 0.06
        # Correlation alone would suggest bias in both settings.
        assert single.correlation > 0.1
        assert double.correlation > 0.05

    def test_isolated_effect_dominates_relational_effect(self, review_small, engine):
        # Figure 7b uses the paper's query (37): MORE THAN 1/3 PEERS TREATED.
        result = engine.answer(review_small.queries["peer_single"]).result
        assert result.aie > 0.0
        assert result.aie > result.are
        assert result.decomposition_gap < 1e-9
