"""Unit tests for unit-table construction (repro.carl.unit_table, Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.carl.causal_graph import GroundedAttribute
from repro.carl.errors import EstimationError
from repro.carl.grounding import Grounder
from repro.carl.model import RelationalCausalModel
from repro.carl.parser import parse_program
from repro.carl.peers import compute_peers
from repro.carl.unit_table import build_unit_table, default_binarizer
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database


@pytest.fixture(scope="module")
def toy_setup():
    program = parse_program(TOY_REVIEW_PROGRAM)
    model = RelationalCausalModel.from_program(program)
    grounder = Grounder(model, model.schema.bind(toy_review_database()))
    graph = grounder.ground()
    values = grounder.grounded_attribute_values(graph)
    units = [("Bob",), ("Carlos",), ("Eva",)]
    peers = compute_peers(graph, "Prestige", "AVG_Score", units)
    return graph, values, units, peers, model


def build(toy_setup, **kwargs):
    graph, values, units, peers, model = toy_setup
    return build_unit_table(
        graph=graph,
        values=values,
        treatment_attribute="Prestige",
        response_attribute="AVG_Score",
        units=units,
        peers=peers,
        is_observed=model.is_observed,
        **kwargs,
    )


class TestToyUnitTable:
    def test_matches_paper_table_1(self, toy_setup):
        """The unit table for Prestige -> AVG_Score on Figure 2 (paper Table 1)."""
        table = build(toy_setup)
        rows = {row["unit"]: row for row in table.to_rows()}
        assert rows[("Bob",)]["AVG_Score"] == pytest.approx(0.75)
        assert rows[("Carlos",)]["AVG_Score"] == pytest.approx(0.1)
        assert rows[("Eva",)]["AVG_Score"] == pytest.approx((0.75 + 0.4 + 0.1) / 3)
        # Embedded coauthor treatments: Bob's only peer (Eva) is prestigious.
        assert rows[("Bob",)]["peer_treatment_mean"] == 1.0
        assert rows[("Eva",)]["peer_treatment_mean"] == 0.5
        assert rows[("Eva",)]["peer_treatment_count"] == 2.0

    def test_shapes_and_columns(self, toy_setup):
        table = build(toy_setup)
        assert len(table) == 3
        assert table.outcome.shape == (3,)
        assert table.features().shape[0] == 3
        assert table.feature_names[0] == "treatment"
        assert "cov_own_Qualification_mean" in table.covariate_columns
        assert "cov_peer_Qualification_mean" in table.covariate_columns
        assert table.has_peers

    def test_peer_fraction_column(self, toy_setup):
        table = build(toy_setup)
        by_unit = dict(zip(table.unit_keys, table.peer_fraction()))
        assert by_unit[("Eva",)] == pytest.approx(0.5)

    def test_summary(self, toy_setup):
        summary = build(toy_setup).summary()
        assert summary["units"] == 3
        assert summary["treated"] == 2
        assert summary["control"] == 1
        assert summary["mean_peer_count"] == pytest.approx(4 / 3)

    def test_embedding_choice_changes_columns(self, toy_setup):
        table = build(toy_setup, embedding="moments")
        assert any(column.endswith("_skew") for column in table.covariate_columns)
        padded = build(toy_setup, embedding="padding")
        assert any("_pad" in column for column in padded.covariate_columns)

    def test_custom_binarizer(self, toy_setup):
        graph, values, units, peers, model = toy_setup
        table = build_unit_table(
            graph=graph,
            values=values,
            treatment_attribute="Qualification",
            response_attribute="AVG_Score",
            units=units,
            peers=peers,
            is_observed=model.is_observed,
            binarize=lambda value: 1.0 if value >= 20 else 0.0,
        )
        by_unit = dict(zip(table.unit_keys, table.treatment))
        assert by_unit[("Bob",)] == 1.0  # h-index 50
        assert by_unit[("Eva",)] == 0.0  # h-index 2


class TestErrors:
    def test_non_binary_treatment_without_threshold(self, toy_setup):
        graph, values, units, peers, model = toy_setup
        with pytest.raises(EstimationError, match="non-binary"):
            build_unit_table(
                graph=graph,
                values=values,
                treatment_attribute="Qualification",
                response_attribute="AVG_Score",
                units=units,
                peers=peers,
                is_observed=model.is_observed,
            )

    def test_no_valid_units(self, toy_setup):
        graph, values, units, peers, model = toy_setup
        with pytest.raises(EstimationError, match="no units"):
            build_unit_table(
                graph=graph,
                values=values,
                treatment_attribute="Prestige",
                response_attribute="AVG_Score",
                units=[("Ghost",)],
                peers={("Ghost",): []},
                is_observed=model.is_observed,
            )

    def test_default_binarizer_accepts_bools_and_binary_ints(self):
        binarize = default_binarizer("T")
        assert binarize(True) == 1.0
        assert binarize(0) == 0.0
        with pytest.raises(EstimationError):
            binarize(7)


class TestCategoricalCovariates:
    def test_categorical_parent_is_one_hot_encoded(self):
        program = parse_program(
            """
            ENTITY Patient(pat);
            ATTRIBUTE Ethnicity OF Patient;
            ATTRIBUTE SelfPay OF Patient;
            ATTRIBUTE Death OF Patient;
            SelfPay[P] <= Ethnicity[P] WHERE Patient(P);
            Death[P] <= SelfPay[P] WHERE Patient(P);
            """
        )
        from repro.db.database import Database

        db = Database("mini")
        db.create_table(
            "Patient",
            {"pat": "str", "ethnicity": "str", "selfpay": "int", "death": "int"},
            primary_key=("pat",),
        ).insert_many(
            [
                {"pat": "p1", "ethnicity": "white", "selfpay": 0, "death": 0},
                {"pat": "p2", "ethnicity": "black", "selfpay": 1, "death": 1},
                {"pat": "p3", "ethnicity": "white", "selfpay": 1, "death": 0},
                {"pat": "p4", "ethnicity": "asian", "selfpay": 0, "death": 0},
            ]
        )
        model = RelationalCausalModel.from_program(program)
        grounder = Grounder(model, model.schema.bind(db))
        graph = grounder.ground()
        values = grounder.grounded_attribute_values(graph)
        units = model.schema.bind(db).units("SelfPay")
        table = build_unit_table(
            graph=graph,
            values=values,
            treatment_attribute="SelfPay",
            response_attribute="Death",
            units=units,
            peers={unit: [] for unit in units},
            is_observed=model.is_observed,
        )
        assert any("is_white" in column for column in table.covariate_columns)
        assert not table.has_peers
        assert np.all(np.isfinite(table.covariates))
