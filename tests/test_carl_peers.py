"""Unit tests for relational paths, unification and peers (repro.carl.peers)."""

from __future__ import annotations

import pytest

from repro.carl.causal_graph import GroundedAttribute
from repro.carl.errors import QueryError
from repro.carl.grounding import Grounder
from repro.carl.model import RelationalCausalModel
from repro.carl.parser import parse_program
from repro.carl.peers import (
    build_unifying_aggregate_rule,
    compute_peers,
    find_relational_path,
    influencing_treated_units,
)
from repro.carl.schema import RelationalCausalSchema
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database


@pytest.fixture(scope="module")
def toy_schema() -> RelationalCausalSchema:
    return RelationalCausalSchema.from_program(parse_program(TOY_REVIEW_PROGRAM))


@pytest.fixture(scope="module")
def toy_graph():
    program = parse_program(TOY_REVIEW_PROGRAM)
    model = RelationalCausalModel.from_program(program)
    grounder = Grounder(model, model.schema.bind(toy_review_database()))
    return grounder.ground()


class TestRelationalPaths:
    def test_direct_path(self, toy_schema):
        path = find_relational_path(toy_schema, "Person", "Submission")
        assert path == ["Person", "Author", "Submission"]

    def test_two_hop_path(self, toy_schema):
        path = find_relational_path(toy_schema, "Person", "Conference")
        assert path == ["Person", "Author", "Submission", "Submitted", "Conference"]

    def test_same_entity_path(self, toy_schema):
        assert find_relational_path(toy_schema, "Person", "Person") == ["Person"]

    def test_disconnected_entities_raise(self):
        schema = RelationalCausalSchema.from_program(
            parse_program("ENTITY A(a); ENTITY B(b); ATTRIBUTE X OF A; ATTRIBUTE Y OF B;")
        )
        with pytest.raises(QueryError, match="not relationally connected"):
            find_relational_path(schema, "A", "B")


class TestUnifyingAggregateRule:
    def test_score_onto_authors(self, toy_schema):
        rule = build_unifying_aggregate_rule(toy_schema, "Score", "Person", aggregate="AVG")
        assert rule.head.name == "AVG_Score"
        assert rule.body.name == "Score"
        assert [atom.predicate for atom in rule.condition.atoms] == ["Author"]

    def test_blind_onto_authors_uses_two_hops(self, toy_schema):
        rule = build_unifying_aggregate_rule(toy_schema, "Blind", "Person", aggregate="COUNT")
        predicates = [atom.predicate for atom in rule.condition.atoms]
        assert set(predicates) == {"Author", "Submitted"}

    def test_same_subject_still_produces_rule(self, toy_schema):
        rule = build_unifying_aggregate_rule(toy_schema, "Qualification", "Person")
        assert rule.head.name == "AVG_Qualification"
        assert [atom.predicate for atom in rule.condition.atoms] == ["Person"]

    def test_relationship_treatment_subject_rejected(self, toy_schema):
        with pytest.raises(QueryError, match="entity"):
            build_unifying_aggregate_rule(toy_schema, "Score", "Author")


class TestPeers:
    def test_toy_peers_match_paper(self, toy_graph):
        """Section 4.3: P(Bob) = {Eva} and P(Eva) = {Bob, Carlos}."""
        units = [("Bob",), ("Carlos",), ("Eva",)]
        peers = compute_peers(toy_graph, "Prestige", "AVG_Score", units)
        assert set(peers[("Bob",)]) == {("Eva",)}
        assert set(peers[("Eva",)]) == {("Bob",), ("Carlos",)}
        assert set(peers[("Carlos",)]) == {("Eva",)}

    def test_unit_without_response_node_has_no_peers(self, toy_graph):
        peers = compute_peers(toy_graph, "Prestige", "AVG_Score", [("Ghost",)])
        assert peers[("Ghost",)] == []

    def test_peers_restricted_to_unit_set(self, toy_graph):
        peers = compute_peers(toy_graph, "Prestige", "AVG_Score", [("Bob",), ("Eva",)])
        # Carlos is not in the unit set, so Eva's peers shrink to Bob.
        assert set(peers[("Eva",)]) == {("Bob",)}

    def test_influencing_treated_units(self, toy_graph):
        response = GroundedAttribute("Score", ("s1",))
        influencing = influencing_treated_units(toy_graph, "Prestige", response)
        assert set(influencing) == {("Bob",), ("Eva",)}
        assert influencing_treated_units(toy_graph, "Prestige", GroundedAttribute("Score", ("zzz",))) == []
