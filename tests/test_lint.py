"""Suite for the ``repro lint`` static-analysis framework.

Coverage, per the static-analysis contract (``docs/static_analysis.md``):

* **fixtures** — every rule family has a known-bad fixture (each marked
  line must flag, with the expected rule id) and a known-good fixture
  (zero findings: the precision half of the contract);
* **suppressions** — ``# repro-lint: disable=...`` (same line and
  next-line forms) marks findings suppressed; they are reported but never
  enforced;
* **baseline** — save/load/apply round-trips; baselined occurrences are
  absorbed, a *re-introduced* occurrence of the same fingerprint is not;
* **CLI** — exit codes (0 clean / 1 findings / 2 usage error), JSON
  output, ``--select``, ``--list-rules``, ``--write-baseline``;
* **the gate itself** — ``repro lint src/`` reports zero unsuppressed
  findings on this tree (tier-1: the codebase stays lint-clean);
* **pinned regressions** — the determinism bugs the repo-wide sweep
  found (stringly rule-body sort, hash-ordered daemon sessions) stay
  fixed.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import all_rules, run_lint
from repro.analysis.baseline import apply_baseline, load_baseline, save_baseline
from repro.analysis.cli import lint_main
from repro.carl.causal_graph import GroundedAttribute, node_sort_key
from repro.carl.grounding import Grounder
from repro.carl.model import RelationalCausalModel
from repro.carl.parser import parse_program
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

RULE_IDS = {
    "det-builtin-hash",
    "det-set-iter",
    "det-sorted-str",
    "det-wall-clock",
    "fault-site",
    "lock-guarded-attr",
    "lock-numpy-call",
    "stats-shape",
    "telemetry-schema",
    "unbounded-growth",
}


def lint_fixture(name: str):
    return run_lint([str(FIXTURES / name)])


def rule_lines(findings) -> list[tuple[str, int]]:
    return [(f.rule, f.line) for f in findings]


def enforced(findings):
    return [f for f in findings if not f.suppressed]


# ----------------------------------------------------------------------
# rule registry
# ----------------------------------------------------------------------
def test_rule_catalogue_is_complete_and_sorted():
    rules = all_rules()
    assert set(rules) == RULE_IDS
    assert list(rules) == sorted(rules)
    for rule in rules.values():
        assert rule.description


# ----------------------------------------------------------------------
# determinism family
# ----------------------------------------------------------------------
def test_set_iteration_bad_fixture_flags_every_marked_line():
    findings = lint_fixture("graph/bad_set_iter.py")
    assert rule_lines(findings) == [
        ("det-set-iter", 10),  # for-loop over a set literal
        ("det-set-iter", 16),  # comprehension over a set-typed parameter
        ("det-set-iter", 21),  # tuple() over a set-typed local
        ("det-set-iter", 25),  # list() over a set-union expression
        ("det-set-iter", 33),  # str.join over a set attribute
    ]
    assert not any(f.suppressed for f in findings)


def test_set_iteration_good_fixture_is_clean():
    assert lint_fixture("graph/good_set_iter.py") == []


def test_sorted_str_and_builtin_hash_fixtures():
    findings = lint_fixture("carl/bad_sorted_and_hash.py")
    assert rule_lines(findings) == [
        ("det-sorted-str", 5),
        ("det-sorted-str", 9),
        ("det-builtin-hash", 13),
    ]
    assert lint_fixture("carl/good_sorted_and_hash.py") == []


def test_wall_clock_fixtures():
    bad = lint_fixture("service/bad_wall_clock.py")
    assert rule_lines(bad) == [
        ("det-wall-clock", 7),
        ("det-wall-clock", 8),
        ("det-wall-clock", 12),
    ]
    good = lint_fixture("service/good_wall_clock.py")
    assert enforced(good) == []
    # The justified wall-clock read is reported as suppressed, not dropped.
    assert [f.rule for f in good if f.suppressed] == ["det-wall-clock"]


# ----------------------------------------------------------------------
# lock-discipline family
# ----------------------------------------------------------------------
def test_lock_bad_fixture_flags_unlocked_access_and_numpy_under_lock():
    findings = lint_fixture("service/bad_locks.py")
    assert rule_lines(findings) == [
        ("lock-guarded-attr", 20),  # unlocked read
        ("lock-guarded-attr", 23),  # unlocked write
        ("lock-guarded-attr", 28),  # closure defined under the lock, runs later
        ("lock-numpy-call", 33),  # bulk numpy work inside lock scope
    ]


def test_lock_good_fixture_is_clean():
    assert lint_fixture("service/good_locks.py") == []


# ----------------------------------------------------------------------
# telemetry-schema family
# ----------------------------------------------------------------------
def test_telemetry_bad_fixture_flags_each_contract_breach():
    findings = lint_fixture("anywhere/bad_telemetry.py")
    assert [f.rule for f in findings] == ["telemetry-schema"] * 5
    messages = "\n".join(f.message for f in findings)
    assert "'no.such.event' is not in the frozen EVENTS registry" in messages
    assert "declared a span but emitted via .count()" in messages
    assert "does not allow metadata fields ['bogus']" in messages
    assert "requires metadata fields ['tenant']" in messages
    assert "declared a counter but emitted via .histogram()" in messages


def test_telemetry_good_fixture_is_clean():
    assert lint_fixture("anywhere/good_telemetry.py") == []


# ----------------------------------------------------------------------
# stats-shape family
# ----------------------------------------------------------------------
def test_stats_shape_bad_fixture_flags_each_undocumented_key():
    findings = lint_fixture("service/bad_stats_shape.py")
    assert [f.rule for f in findings] == ["stats-shape"] * 3
    messages = "\n".join(f.message for f in findings)
    assert "'queue_depth' in ShardScheduler.stats()" in messages
    assert "'retries_left' in QuerySession.stats()" in messages
    assert "'evictions' in CacheStats.summary()" in messages


def test_stats_shape_good_fixture_is_clean():
    assert lint_fixture("service/good_stats_shape.py") == []


# ----------------------------------------------------------------------
# fault-site family
# ----------------------------------------------------------------------
def test_fault_site_bad_fixture_flags_each_unregistered_site():
    findings = lint_fixture("anywhere/bad_fault_site.py")
    assert rule_lines(findings) == [
        ("fault-site", 12),  # misspelled fault_point site
        ("fault-site", 13),  # unregistered FaultRule site (keyword)
        ("fault-site", 14),  # unregistered FaultRule site (positional)
    ]
    messages = "\n".join(f.message for f in findings)
    assert "'worker.crsh' is not in the frozen FAULT_SITES" in messages
    assert "silently uninjectable" in messages


def test_fault_site_good_fixture_is_clean():
    assert lint_fixture("anywhere/good_fault_site.py") == []


# ----------------------------------------------------------------------
# boundedness family
# ----------------------------------------------------------------------
def test_unbounded_growth_fixtures():
    findings = lint_fixture("service/bad_unbounded.py")
    assert rule_lines(findings) == [
        ("unbounded-growth", 7),  # dict grows, nothing reaps
        ("unbounded-growth", 8),  # append-only list
    ]
    assert lint_fixture("service/good_unbounded.py") == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_inline_and_next_line_suppressions_mark_but_keep_findings():
    findings = lint_fixture("graph/suppressed_set_iter.py")
    assert rule_lines(findings) == [("det-set-iter", 7), ("det-set-iter", 12)]
    assert all(f.suppressed for f in findings)
    assert enforced(findings) == []


def test_scoped_rule_skips_out_of_scope_paths(tmp_path):
    # det-set-iter is scoped to graph paths: the same bad code under a
    # neutral directory is skipped unless everywhere=True.
    target = tmp_path / "neutral" / "mod.py"
    target.parent.mkdir()
    target.write_text(
        (FIXTURES / "graph" / "bad_set_iter.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    assert run_lint([str(target)]) == []
    everywhere = run_lint([str(target)], everywhere=True)
    assert [f.rule for f in everywhere] == ["det-set-iter"] * 5


def test_select_restricts_rules():
    findings = run_lint([str(FIXTURES)], select=["det-wall-clock"])
    assert {f.rule for f in findings} == {"det-wall-clock"}
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint([str(FIXTURES)], select=["no-such-rule"])


# ----------------------------------------------------------------------
# baseline mechanics
# ----------------------------------------------------------------------
def test_baseline_round_trip_absorbs_exactly_the_recorded_occurrences(tmp_path):
    findings = lint_fixture("service/bad_wall_clock.py")
    path = tmp_path / "baseline.json"
    written = save_baseline(path, findings)
    assert sum(written.values()) == 3
    baseline = load_baseline(path)
    assert baseline == written
    # Everything recorded is absorbed ...
    assert apply_baseline(findings, baseline) == []
    # ... but a re-introduced occurrence of a recorded fingerprint is not.
    assert apply_baseline(findings + [findings[0]], baseline) == [findings[0]]


def test_baseline_keys_survive_line_renumbering(tmp_path):
    source = (FIXTURES / "service" / "bad_wall_clock.py").read_text(encoding="utf-8")
    original = tmp_path / "svc_a" / "service" / "mod.py"
    original.parent.mkdir(parents=True)
    original.write_text(source, encoding="utf-8")
    baseline = {
        f.fingerprint(): 1 for f in run_lint([str(original)], everywhere=True)
    }
    # Prepend unrelated lines: every finding moves, fingerprints must not.
    original.write_text("# header\n# header\n" + source, encoding="utf-8")
    shifted = run_lint([str(original)], everywhere=True)
    assert [f.line for f in shifted] == [9, 10, 14]
    assert apply_baseline(shifted, baseline) == []


def test_missing_baseline_file_is_empty_and_bad_format_raises(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"version": 99}), encoding="utf-8")
    with pytest.raises(ValueError, match="unrecognized baseline format"):
        load_baseline(bad)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes_and_text_summary(capsys):
    assert lint_main([str(FIXTURES / "graph" / "bad_set_iter.py")]) == 1
    out = capsys.readouterr().out
    assert "[det-set-iter]" in out and "5 finding(s)" in out

    assert lint_main([str(FIXTURES / "graph" / "good_set_iter.py")]) == 0
    assert "0 finding(s)" in capsys.readouterr().out

    assert lint_main(["--select", "no-such-rule", str(FIXTURES)]) == 2
    assert lint_main(["--write-baseline", str(FIXTURES)]) == 2


def test_cli_json_payload(capsys):
    assert lint_main(["--json", str(FIXTURES / "carl" / "bad_sorted_and_hash.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["enforced"] == 3
    assert payload["errors"] == []
    assert [f["rule"] for f in payload["findings"]] == [
        "det-sorted-str",
        "det-sorted-str",
        "det-builtin-hash",
    ]
    assert all(set(f) >= {"path", "line", "rule", "message"} for f in payload["findings"])


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out


def test_cli_baseline_flow(tmp_path, capsys):
    """write-baseline grandfathers current findings; new ones still fail."""
    tree = tmp_path / "service"
    tree.mkdir()
    shutil.copy(FIXTURES / "service" / "bad_wall_clock.py", tree / "legacy.py")
    baseline = tmp_path / "baseline.json"

    assert lint_main([str(tree), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert "wrote 3 finding(s)" in capsys.readouterr().out
    assert lint_main([str(tree), "--baseline", str(baseline)]) == 0
    capsys.readouterr()

    shutil.copy(FIXTURES / "service" / "bad_unbounded.py", tree / "fresh.py")
    assert lint_main([str(tree), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "legacy.py" not in out  # baselined findings stay silent
    assert out.count("fresh.py") == 2


def test_cli_syntax_error_reports_and_exits_2(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def nope(:\n", encoding="utf-8")
    assert lint_main([str(broken)]) == 2
    assert "broken.py" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the gate: this repository lints clean
# ----------------------------------------------------------------------
def test_repro_src_has_zero_unsuppressed_findings():
    findings = run_lint([str(SRC)])
    offenders = [
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in enforced(findings)
    ]
    assert offenders == []


def test_committed_baseline_is_empty():
    baseline = load_baseline(REPO / "lint-baseline.json")
    assert baseline == {}


def test_cli_subcommand_is_wired():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "lint", "--list-rules"],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(SRC)},
    )
    assert proc.returncode == 0
    assert "det-set-iter" in proc.stdout


# ----------------------------------------------------------------------
# pinned regressions for the repo-wide determinism sweep (satellite 1)
# ----------------------------------------------------------------------
def node(attribute: str, *key: object) -> GroundedAttribute:
    return GroundedAttribute(attribute, tuple(key))


def test_node_sort_key_orders_numeric_keys_numerically():
    nodes = [node("Score", 10), node("Score", 2), node("Score", 1)]
    assert sorted(nodes, key=node_sort_key) == [
        node("Score", 1),
        node("Score", 2),
        node("Score", 10),
    ]
    # The stringly sort this replaced puts '10' before '2' — the bug.
    assert sorted(nodes, key=str) != sorted(nodes, key=node_sort_key)


def test_node_sort_key_totally_orders_heterogeneous_keys():
    nodes = [
        node("A", "x"),
        node("A", 2),
        node("A", True),
        node("A", (1, 2)),
        node("A", 1.5),
        node("A"),
        node("B", "a", "b"),
    ]
    ordered = sorted(nodes, key=node_sort_key)  # must not raise TypeError
    assert ordered[0] == node("A")  # arity before key contents
    assert set(ordered) == set(nodes)
    # Numbers before bools before strings before structured parts.
    singletons = [n for n in ordered if n.attribute == "A" and len(n.key) == 1]
    assert singletons == [node("A", 1.5), node("A", 2), node("A", True),
                          node("A", "x"), node("A", (1, 2))]


def test_grounded_rule_bodies_are_structurally_sorted():
    program = parse_program(TOY_REVIEW_PROGRAM)
    model = RelationalCausalModel.from_program(program)
    grounder = Grounder(model, model.schema.bind(toy_review_database()))
    checked = 0
    for rule in model.rules:
        for grounded in grounder.ground_rule(rule):
            body = list(grounded.body)
            assert body == sorted(body, key=node_sort_key)
            checked += 1
    assert checked > 0


# ----------------------------------------------------------------------
# permissive-typing smoke (mypy is a CI-only dependency)
# ----------------------------------------------------------------------
def test_mypy_clean_on_analysis_and_observability():
    if shutil.which("mypy") is None:
        pytest.skip("mypy not installed locally; enforced in CI")
    proc = subprocess.run(
        ["mypy", "--config-file", str(REPO / "mypy.ini"),
         str(SRC / "repro" / "analysis"), str(SRC / "repro" / "observability")],
        capture_output=True,
        text=True,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
