"""Unit tests for propensity scores, matching, bootstrap, correlation, outcome model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference.bootstrap import bootstrap_statistic
from repro.inference.correlation import naive_difference, pearson_correlation, point_biserial
from repro.inference.matching import coarsened_exact_matching, nearest_neighbor_match
from repro.inference.outcome import OutcomeModel
from repro.inference.propensity import estimate_propensity_scores


class TestPropensity:
    def test_scores_are_clipped_probabilities(self):
        rng = np.random.default_rng(0)
        covariates = rng.normal(size=(300, 2))
        treatment = (rng.random(300) < 0.5).astype(float)
        scores = estimate_propensity_scores(treatment, covariates, clip=0.05)
        assert np.all(scores >= 0.05) and np.all(scores <= 0.95)

    def test_informative_covariate_orders_scores(self):
        rng = np.random.default_rng(1)
        covariate = rng.normal(size=600)
        treatment = (rng.random(600) < 1 / (1 + np.exp(-2 * covariate))).astype(float)
        scores = estimate_propensity_scores(treatment, covariate.reshape(-1, 1))
        assert np.corrcoef(scores, covariate)[0, 1] > 0.8

    def test_no_covariates_gives_marginal_rate(self):
        treatment = np.array([1.0, 0.0, 0.0, 0.0])
        scores = estimate_propensity_scores(treatment, np.empty((4, 0)))
        assert np.allclose(scores, 0.25)


class TestMatching:
    def test_nearest_neighbor_matches_closest(self):
        treatment = np.array([1.0, 0.0, 0.0])
        covariates = np.array([[0.0], [0.1], [5.0]])
        result = nearest_neighbor_match(treatment, covariates)
        assert list(result.treated_indices) == [0]
        assert list(result.control_indices) == [1]

    def test_matching_without_replacement_uses_distinct_controls(self):
        treatment = np.array([1.0, 1.0, 0.0, 0.0])
        covariates = np.array([[0.0], [0.05], [0.01], [0.06]])
        result = nearest_neighbor_match(treatment, covariates, with_replacement=False)
        assert len(set(result.control_indices)) == 2

    def test_mahalanobis_metric_runs(self):
        rng = np.random.default_rng(2)
        treatment = (rng.random(50) < 0.5).astype(float)
        covariates = rng.normal(size=(50, 3))
        result = nearest_neighbor_match(treatment, covariates, metric="mahalanobis")
        assert len(result) == int(treatment.sum())

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            nearest_neighbor_match(np.array([1.0, 0.0]), np.array([[1.0], [2.0]]), metric="cosine")

    def test_empty_groups_return_no_pairs(self):
        result = nearest_neighbor_match(np.ones(3), np.ones((3, 1)))
        assert len(result) == 0

    def test_cem_strata_contain_both_groups(self):
        rng = np.random.default_rng(3)
        treatment = (rng.random(200) < 0.5).astype(float)
        covariates = rng.normal(size=(200, 2))
        strata = coarsened_exact_matching(treatment, covariates, bins=3)
        for members in strata.values():
            member_treatment = treatment[members]
            assert (member_treatment > 0.5).any() and (member_treatment <= 0.5).any()

    def test_cem_without_covariates_is_single_stratum(self):
        strata = coarsened_exact_matching(np.array([1.0, 0.0]), np.empty((2, 0)))
        assert list(strata.values()) == [[0, 1]]


class TestBootstrap:
    def test_mean_interval_covers_truth(self):
        rng = np.random.default_rng(4)
        data = rng.normal(loc=3.0, size=400)
        result = bootstrap_statistic(lambda x: float(np.mean(x)), [data], n_bootstrap=200, seed=0)
        assert result.lower < 3.0 < result.upper
        assert result.estimate == pytest.approx(3.0, abs=0.2)
        assert result.standard_error > 0

    def test_multiple_arrays_resampled_together(self):
        x = np.arange(100.0)
        y = 2.0 * x
        result = bootstrap_statistic(
            lambda a, b: float(np.mean(b - 2 * a)), [x, y], n_bootstrap=50, seed=1
        )
        assert result.estimate == 0.0
        assert result.upper == pytest.approx(0.0, abs=1e-9)

    def test_failing_replicates_are_skipped(self):
        data = np.array([1.0, 2.0])

        def sometimes_fails(values: np.ndarray) -> float:
            if values[0] == values[1]:
                raise ValueError("degenerate resample")
            return float(values.mean())

        result = bootstrap_statistic(sometimes_fails, [data], n_bootstrap=30, seed=2)
        assert len(result.samples) <= 30

    def test_input_validation(self):
        with pytest.raises(ValueError):
            bootstrap_statistic(lambda x: 0.0, [])
        with pytest.raises(ValueError):
            bootstrap_statistic(lambda x, y: 0.0, [np.ones(3), np.ones(4)])
        with pytest.raises(ValueError):
            bootstrap_statistic(lambda x: 0.0, [np.array([])])


class TestCorrelation:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0
        assert pearson_correlation(np.arange(2.0), np.arange(2.0)[:2] * 0) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_point_biserial_matches_pearson(self):
        treatment = np.array([1.0, 0.0, 1.0, 0.0])
        outcome = np.array([3.0, 1.0, 4.0, 2.0])
        assert point_biserial(treatment, outcome) == pearson_correlation(treatment, outcome)

    def test_naive_difference(self):
        treatment = np.array([1.0, 1.0, 0.0, 0.0])
        outcome = np.array([5.0, 7.0, 1.0, 3.0])
        contrast = naive_difference(treatment, outcome)
        assert contrast["treated_mean"] == 6.0
        assert contrast["control_mean"] == 2.0
        assert contrast["difference"] == 4.0

    def test_naive_difference_with_empty_group_is_nan(self):
        contrast = naive_difference(np.ones(3), np.arange(3.0))
        assert np.isnan(contrast["control_mean"])


class TestOutcomeModel:
    @pytest.fixture()
    def peer_data(self):
        rng = np.random.default_rng(7)
        n = 800
        covariate = rng.normal(size=(n, 1))
        treatment = (rng.random(n) < 0.5).astype(float)
        peer_fraction = rng.random(n)
        peer_counts = rng.integers(1, 5, size=n).astype(float)
        peer_matrix = np.column_stack([peer_fraction, peer_counts])
        outcome = (
            1.0 + 2.0 * treatment + 0.5 * peer_fraction + 0.3 * covariate[:, 0]
            + rng.normal(scale=0.1, size=n)
        )
        return outcome, treatment, peer_matrix, peer_counts, covariate

    def test_recovers_structural_coefficients(self, peer_data):
        outcome, treatment, peer_matrix, peer_counts, covariate = peer_data
        model = OutcomeModel().fit(outcome, treatment, peer_matrix, covariate)
        coefficients = model.coefficients
        assert coefficients["treatment"] == pytest.approx(2.0, abs=0.05)
        assert coefficients["peer_0"] == pytest.approx(0.5, abs=0.1)

    def test_intervention_predictions(self, peer_data):
        outcome, treatment, peer_matrix, peer_counts, covariate = peer_data
        model = OutcomeModel().fit(outcome, treatment, peer_matrix, covariate)
        treated = model.predict_intervention(1.0, 1.0, peer_matrix, peer_counts, covariate)
        control = model.predict_intervention(0.0, 0.0, peer_matrix, peer_counts, covariate)
        assert float(np.mean(treated - control)) == pytest.approx(2.5, abs=0.1)

    def test_zero_peer_units_keep_zero_fraction(self):
        outcome = np.array([1.0, 2.0, 3.0, 4.0])
        treatment = np.array([0.0, 1.0, 0.0, 1.0])
        peer_matrix = np.zeros((4, 2))
        peer_counts = np.zeros(4)
        covariates = np.empty((4, 0))
        model = OutcomeModel().fit(outcome, treatment, peer_matrix, covariates)
        with_peers = model.predict_intervention(1.0, 1.0, peer_matrix, peer_counts, covariates)
        without_peers = model.predict_intervention(1.0, 0.0, peer_matrix, peer_counts, covariates)
        assert np.allclose(with_peers, without_peers)

    def test_ridge_variant(self, peer_data):
        outcome, treatment, peer_matrix, _, covariate = peer_data
        model = OutcomeModel(regression="ridge", ridge_alpha=1.0)
        model.fit(outcome, treatment, peer_matrix, covariate)
        assert model.coefficients["treatment"] == pytest.approx(2.0, abs=0.2)

    def test_unknown_regression(self):
        with pytest.raises(ValueError):
            OutcomeModel(regression="forest")
