"""Unit tests for the grounded causal graph container (repro.carl.causal_graph)."""

from __future__ import annotations

import pytest

from repro.carl.causal_graph import GroundedAttribute, GroundedCausalGraph, GroundedRule


def node(attribute: str, *key: object) -> GroundedAttribute:
    return GroundedAttribute(attribute, tuple(key))


@pytest.fixture()
def small_graph() -> GroundedCausalGraph:
    graph = GroundedCausalGraph()
    graph.add_grounded_rule(
        GroundedRule(head=node("Score", "s1"), body=(node("Prestige", "a1"), node("Prestige", "a2")))
    )
    graph.add_grounded_rule(
        GroundedRule(head=node("Score", "s2"), body=(node("Prestige", "a2"),))
    )
    graph.add_grounded_rule(
        GroundedRule(head=node("Prestige", "a1"), body=(node("Qual", "a1"),))
    )
    graph.add_grounded_rule(
        GroundedRule(head=node("AVG_Score", "a1"), body=(node("Score", "s1"),)), aggregate="AVG"
    )
    return graph


class TestStructure:
    def test_membership_and_counts(self, small_graph):
        assert node("Score", "s1") in small_graph
        assert len(small_graph) == 6
        assert small_graph.number_of_edges() == 5

    def test_nodes_of_attribute(self, small_graph):
        assert small_graph.nodes_of("Prestige") == [node("Prestige", "a1"), node("Prestige", "a2")]
        assert small_graph.nodes_of("Missing") == []

    def test_attribute_names(self, small_graph):
        assert set(small_graph.attribute_names()) == {"Score", "Prestige", "Qual", "AVG_Score"}

    def test_parents_and_children(self, small_graph):
        assert small_graph.parents(node("Score", "s1")) == {
            node("Prestige", "a1"),
            node("Prestige", "a2"),
        }
        assert small_graph.children(node("Prestige", "a2")) == {
            node("Score", "s1"),
            node("Score", "s2"),
        }

    def test_parents_by_attribute_groups_and_sorts(self, small_graph):
        grouped = small_graph.parents_by_attribute(node("Score", "s1"))
        assert list(grouped) == ["Prestige"]
        assert grouped["Prestige"] == [node("Prestige", "a1"), node("Prestige", "a2")]

    def test_aggregate_tracking(self, small_graph):
        assert small_graph.is_aggregate(node("AVG_Score", "a1"))
        assert small_graph.aggregate_of(node("AVG_Score", "a1")) == "AVG"
        assert small_graph.aggregate_of(node("Score", "s1")) is None


class TestReachabilityAndSeparation:
    def test_ancestors_descendants(self, small_graph):
        assert node("Qual", "a1") in small_graph.ancestors(node("AVG_Score", "a1"))
        assert node("AVG_Score", "a1") in small_graph.descendants(node("Qual", "a1"))

    def test_ancestor_nodes_of_attribute(self, small_graph):
        ancestors = small_graph.ancestor_nodes_of_attribute(node("AVG_Score", "a1"), "Prestige")
        assert ancestors == [node("Prestige", "a1"), node("Prestige", "a2")]

    def test_directed_path(self, small_graph):
        assert small_graph.has_directed_path(node("Prestige", "a2"), node("AVG_Score", "a1"))
        assert not small_graph.has_directed_path(node("AVG_Score", "a1"), node("Prestige", "a2"))

    def test_do_removes_incoming_edges(self, small_graph):
        mutilated = small_graph.do([node("Prestige", "a1")])
        assert not mutilated.has_edge(node("Qual", "a1"), node("Prestige", "a1"))
        assert mutilated.has_edge(node("Prestige", "a1"), node("Score", "s1"))

    def test_d_separation_on_grounded_graph(self, small_graph):
        # Qual[a1] -> Prestige[a1] -> Score[s1]: blocked by the treatment node.
        assert not small_graph.d_separated(node("Qual", "a1"), node("Score", "s1"))
        assert small_graph.d_separated(
            node("Qual", "a1"), node("Score", "s1"), [node("Prestige", "a1")]
        )

    def test_str_rendering(self):
        assert str(node("Score", "s1")) == "Score['s1']"


class TestNodeIdOrdering:
    """Ordered queries sort by interned node id, not ``str(key)``.

    Regression for the lexicographic-ordering bug: sorting by ``str(node.key)``
    put ``(10,)`` before ``(2,)`` for integer keys.  Node ids follow insertion
    order, so units interned in numeric order come back in numeric order.
    (This reordering is why the artifact format version was bumped: answers
    derived from stored v1 groundings could order covariate columns
    differently, so old artifacts are invalidated wholesale.)
    """

    @pytest.fixture()
    def numeric_graph(self) -> GroundedCausalGraph:
        graph = GroundedCausalGraph()
        for index in range(1, 13):
            graph.add_grounded_rule(
                GroundedRule(head=node("Score", 0), body=(node("Prestige", index),))
            )
        return graph

    def test_nodes_of_numeric_keys_in_numeric_order(self, numeric_graph):
        keys = [item.key for item in numeric_graph.nodes_of("Prestige")]
        assert keys == [(index,) for index in range(1, 13)]
        # str-sorting would have yielded (1,), (10,), (11,), (12,), (2,), ...
        assert keys != sorted(keys, key=str)

    def test_parents_by_attribute_numeric_order(self, numeric_graph):
        grouped = numeric_graph.parents_by_attribute(node("Score", 0))
        assert [item.key for item in grouped["Prestige"]] == [
            (index,) for index in range(1, 13)
        ]

    def test_ancestor_nodes_of_attribute_numeric_order(self, numeric_graph):
        ancestors = numeric_graph.ancestor_nodes_of_attribute(node("Score", 0), "Prestige")
        assert [item.key for item in ancestors] == [(index,) for index in range(1, 13)]
