"""Shared fixtures for the test suite.

Expensive objects (generated datasets, grounded engines) are session-scoped:
they are deterministic (fixed seeds) and read-only from the tests'
perspective, so sharing them keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro import CaRLEngine
from repro.datasets import (
    TOY_REVIEW_PROGRAM,
    generate_mimic_data,
    generate_nis_data,
    generate_review_data,
    generate_synthetic_review_data,
    toy_review_database,
)


@pytest.fixture(scope="session")
def toy_engine() -> CaRLEngine:
    """Engine over the Figure 2 toy instance with the Example 3.4 rules."""
    return CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM)


@pytest.fixture(scope="session")
def toy_database():
    return toy_review_database()


@pytest.fixture(scope="session")
def synthetic_review_small():
    """A small SYNTHETIC REVIEWDATA instance with relational effects."""
    return generate_synthetic_review_data(n_authors=400, papers_per_author=2.5, seed=42)


@pytest.fixture(scope="session")
def synthetic_review_medium():
    """A medium SYNTHETIC REVIEWDATA instance, large enough for estimate-quality tests."""
    return generate_synthetic_review_data(n_authors=1500, papers_per_author=3.0, seed=3)


@pytest.fixture(scope="session")
def synthetic_review_engine(synthetic_review_medium) -> CaRLEngine:
    return CaRLEngine(synthetic_review_medium.database, synthetic_review_medium.program)


@pytest.fixture(scope="session")
def mimic_small():
    return generate_mimic_data(n_patients=2500, seed=23)


@pytest.fixture(scope="session")
def nis_small():
    return generate_nis_data(n_admissions=3000, seed=31)


@pytest.fixture(scope="session")
def review_small():
    return generate_review_data(n_authors=500, n_submissions=300, seed=11)
