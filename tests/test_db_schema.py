"""Unit tests for table/column schemas (repro.db.schema)."""

from __future__ import annotations

import pytest

from repro.db.schema import ColumnSchema, SchemaError, TableSchema


class TestColumnSchema:
    def test_defaults(self):
        column = ColumnSchema("x")
        assert column.dtype == "any"
        assert not column.nullable

    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            ColumnSchema("x", "decimal")

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            ColumnSchema("")

    def test_int_validation(self):
        column = ColumnSchema("x", "int")
        assert column.validate(3) == 3
        with pytest.raises(SchemaError):
            column.validate(3.5)
        with pytest.raises(SchemaError):
            column.validate(True)

    def test_float_accepts_int(self):
        column = ColumnSchema("x", "float")
        assert column.validate(3) == 3.0
        assert isinstance(column.validate(3), float)

    def test_str_validation(self):
        column = ColumnSchema("x", "str")
        assert column.validate("hello") == "hello"
        with pytest.raises(SchemaError):
            column.validate(5)

    def test_bool_validation(self):
        column = ColumnSchema("x", "bool")
        assert column.validate(True) is True
        with pytest.raises(SchemaError):
            column.validate(1)

    def test_nullability(self):
        nullable = ColumnSchema("x", "int", nullable=True)
        assert nullable.validate(None) is None
        strict = ColumnSchema("x", "int")
        with pytest.raises(SchemaError):
            strict.validate(None)

    def test_any_passes_everything(self):
        column = ColumnSchema("x", "any")
        assert column.validate({"nested": 1}) == {"nested": 1}


class TestTableSchema:
    def test_from_spec_with_mapping(self):
        schema = TableSchema.from_spec("t", {"a": "int", "b": "str"}, primary_key=["a"])
        assert schema.column_names == ("a", "b")
        assert schema.column("a").dtype == "int"
        assert schema.primary_key == ("a",)

    def test_from_spec_with_sequence(self):
        schema = TableSchema.from_spec("t", ["a", "b"])
        assert schema.column("b").dtype == "any"

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", (ColumnSchema("a"), ColumnSchema("a")))

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema.from_spec("t", ["a"], primary_key=["missing"])

    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", ())

    def test_index_of_and_unknown_column(self):
        schema = TableSchema.from_spec("t", ["a", "b"])
        assert schema.index_of("b") == 1
        with pytest.raises(SchemaError):
            schema.index_of("zzz")
        with pytest.raises(SchemaError):
            schema.column("zzz")

    def test_validate_row_orders_and_checks(self):
        schema = TableSchema.from_spec("t", {"a": "int", "b": "str"})
        assert schema.validate_row({"b": "x", "a": 1}) == (1, "x")

    def test_validate_row_rejects_unknown_and_missing(self):
        schema = TableSchema.from_spec("t", {"a": "int"})
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1, "zzz": 2})
        with pytest.raises(SchemaError):
            schema.validate_row({})

    def test_validate_row_fills_nullable(self):
        schema = TableSchema("t", (ColumnSchema("a", "int"), ColumnSchema("b", "str", nullable=True)))
        assert schema.validate_row({"a": 1}) == (1, None)
