"""Unit tests for ATE estimators (repro.inference.estimators) and friends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference.estimators import (
    ESTIMATORS,
    EstimatorError,
    cem_ate,
    doubly_robust_ate,
    estimate_ate,
    ipw_ate,
    matching_ate,
    naive_ate,
    outcome_model_ate,
    propensity_matching_ate,
    stratification_ate,
)

TRUE_EFFECT = 2.0


@pytest.fixture(scope="module")
def confounded_data():
    """Confounded data with a known effect: Z -> T, Z -> Y, true ATE = 2."""
    rng = np.random.default_rng(5)
    n = 1500
    confounder = rng.normal(size=n)
    treatment = (rng.random(n) < 1.0 / (1.0 + np.exp(-1.5 * confounder))).astype(float)
    outcome = 1.0 + TRUE_EFFECT * treatment + 3.0 * confounder + rng.normal(scale=0.5, size=n)
    return outcome, treatment, confounder.reshape(-1, 1)


@pytest.fixture(scope="module")
def randomized_data():
    """Randomized treatment: every estimator should land close to the truth."""
    rng = np.random.default_rng(6)
    n = 1000
    covariate = rng.normal(size=(n, 2))
    treatment = (rng.random(n) < 0.5).astype(float)
    outcome = TRUE_EFFECT * treatment + covariate[:, 0] + rng.normal(scale=0.3, size=n)
    return outcome, treatment, covariate


class TestAdjustedEstimators:
    @pytest.mark.parametrize(
        "estimator_fn, tolerance",
        [
            (outcome_model_ate, 0.15),
            (ipw_ate, 0.35),
            (stratification_ate, 0.5),
            (doubly_robust_ate, 0.2),
            (propensity_matching_ate, 0.6),
            (matching_ate, 0.6),
        ],
    )
    def test_recover_effect_under_confounding(self, confounded_data, estimator_fn, tolerance):
        outcome, treatment, covariates = confounded_data
        estimate = estimator_fn(outcome, treatment, covariates)
        assert estimate.ate == pytest.approx(TRUE_EFFECT, abs=tolerance)
        assert estimate.n_units == len(outcome)
        assert estimate.n_treated + estimate.n_control == len(outcome)

    def test_cem_reduces_bias_with_fine_bins(self, confounded_data):
        outcome, treatment, covariates = confounded_data
        naive = naive_ate(outcome, treatment, covariates)
        cem = cem_ate(outcome, treatment, covariates, bins=12)
        assert abs(cem.ate - TRUE_EFFECT) < abs(naive.ate - TRUE_EFFECT)
        assert cem.ate == pytest.approx(TRUE_EFFECT, abs=0.6)

    def test_naive_estimator_is_biased_under_confounding(self, confounded_data):
        outcome, treatment, covariates = confounded_data
        naive = naive_ate(outcome, treatment, covariates)
        adjusted = outcome_model_ate(outcome, treatment, covariates)
        assert abs(naive.ate - TRUE_EFFECT) > 1.0
        assert abs(adjusted.ate - TRUE_EFFECT) < 0.2

    def test_all_estimators_agree_under_randomization(self, randomized_data):
        outcome, treatment, covariates = randomized_data
        for name in ("regression", "ipw", "naive", "aipw", "stratification"):
            estimate = estimate_ate(outcome, treatment, covariates, estimator=name)
            assert estimate.ate == pytest.approx(TRUE_EFFECT, abs=0.25), name


class TestDispatchAndValidation:
    def test_registry_names(self):
        assert {"regression", "matching", "psm", "ipw", "aipw", "naive"} <= set(ESTIMATORS)

    def test_unknown_estimator(self, randomized_data):
        outcome, treatment, covariates = randomized_data
        with pytest.raises(EstimatorError, match="unknown estimator"):
            estimate_ate(outcome, treatment, covariates, estimator="magic")

    def test_requires_both_groups(self):
        outcome = np.array([1.0, 2.0, 3.0])
        with pytest.raises(EstimatorError):
            outcome_model_ate(outcome, np.ones(3), None)
        with pytest.raises(EstimatorError):
            outcome_model_ate(outcome, np.zeros(3), None)

    def test_requires_rows(self):
        with pytest.raises(EstimatorError):
            outcome_model_ate(np.array([]), np.array([]), None)

    def test_shape_mismatch(self):
        with pytest.raises(EstimatorError):
            outcome_model_ate(np.ones(3), np.array([1.0, 0.0]), None)

    def test_no_covariates_reduces_to_naive(self):
        outcome = np.array([3.0, 3.0, 1.0, 1.0])
        treatment = np.array([1.0, 1.0, 0.0, 0.0])
        regression = outcome_model_ate(outcome, treatment, None)
        naive = naive_ate(outcome, treatment, None)
        assert regression.ate == pytest.approx(naive.ate)
        assert naive.ate == pytest.approx(2.0)

    def test_float_conversion(self, randomized_data):
        outcome, treatment, covariates = randomized_data
        estimate = outcome_model_ate(outcome, treatment, covariates)
        assert float(estimate) == estimate.ate

    def test_estimate_details_present(self, confounded_data):
        outcome, treatment, covariates = confounded_data
        assert "r_squared" in outcome_model_ate(outcome, treatment, covariates).details
        assert "propensity_range" in propensity_matching_ate(outcome, treatment, covariates).details
