"""Unit tests for balance/overlap diagnostics (repro.inference.diagnostics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference.diagnostics import (
    BalanceReport,
    covariate_balance,
    standardized_mean_difference,
)


@pytest.fixture()
def confounded():
    rng = np.random.default_rng(8)
    n = 1200
    confounder = rng.normal(size=n)
    noise = rng.normal(size=n)
    treatment = (rng.random(n) < 1 / (1 + np.exp(-1.5 * confounder))).astype(float)
    covariates = np.column_stack([confounder, noise])
    return treatment, covariates


class TestSMD:
    def test_zero_for_identical_groups(self):
        values = np.array([1.0, 2.0, 1.0, 2.0])
        treatment = np.array([1.0, 1.0, 0.0, 0.0])
        assert standardized_mean_difference(values, treatment) == pytest.approx(0.0)

    def test_sign_follows_treated_minus_control(self):
        values = np.array([3.0, 4.0, 1.0, 2.0])
        treatment = np.array([1.0, 1.0, 0.0, 0.0])
        assert standardized_mean_difference(values, treatment) > 0
        assert standardized_mean_difference(values, 1.0 - treatment) < 0

    def test_constant_covariate_is_zero(self):
        values = np.ones(6)
        treatment = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0])
        assert standardized_mean_difference(values, treatment) == 0.0

    def test_single_group_is_zero(self):
        assert standardized_mean_difference(np.arange(4.0), np.ones(4)) == 0.0

    def test_weights_shift_the_difference(self):
        values = np.array([0.0, 10.0, 0.0, 10.0])
        treatment = np.array([1.0, 1.0, 0.0, 0.0])
        unweighted = standardized_mean_difference(values, treatment)
        weights = np.array([10.0, 1.0, 1.0, 10.0])
        weighted = standardized_mean_difference(values, treatment, weights)
        assert weighted != pytest.approx(unweighted)


class TestCovariateBalance:
    def test_weighting_improves_balance_of_confounder(self, confounded):
        treatment, covariates = confounded
        report = covariate_balance(treatment, covariates, ["confounder", "noise"])
        confounder_entry = report.covariates[0]
        assert abs(confounder_entry.smd_unadjusted) > 0.3
        assert abs(confounder_entry.smd_weighted) < abs(confounder_entry.smd_unadjusted)

    def test_noise_covariate_is_balanced(self, confounded):
        treatment, covariates = confounded
        report = covariate_balance(treatment, covariates, ["confounder", "noise"])
        assert abs(report.covariates[1].smd_unadjusted) < 0.15

    def test_report_summaries(self, confounded):
        treatment, covariates = confounded
        report = covariate_balance(treatment, covariates)
        assert report.worst_unadjusted_smd >= report.covariates[1].smd_unadjusted
        assert 0.0 <= report.overlap() <= 1.0
        rows = report.to_rows()
        assert len(rows) == 2
        assert {"covariate", "smd_unadjusted", "smd_weighted", "balanced"} <= set(rows[0])

    def test_name_mismatch_rejected(self, confounded):
        treatment, covariates = confounded
        with pytest.raises(ValueError):
            covariate_balance(treatment, covariates, ["only_one_name"])

    def test_empty_covariates_give_empty_report(self):
        report = covariate_balance(np.array([1.0, 0.0]), np.empty((2, 0)))
        assert report.covariates == []
        assert report.all_balanced
        assert report.overlap() == 0.0
        assert report.worst_weighted_smd == 0.0

    def test_default_report_is_empty(self):
        report = BalanceReport()
        assert report.to_rows() == []
