"""Unit and integration tests for the CaRL engine (repro.carl.engine)."""

from __future__ import annotations

import pytest

from repro.carl.engine import CaRLEngine
from repro.carl.errors import QueryError
from repro.carl.queries import ATEResult, EffectsResult
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database


class TestGrounding:
    def test_graph_is_cached(self, toy_engine):
        first = toy_engine.graph
        assert toy_engine.graph is first

    def test_invalidate_rebuilds(self):
        engine = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM)
        first = engine.graph
        engine.invalidate()
        assert engine.graph is not first

    def test_values_include_observed_and_aggregates(self, toy_engine):
        from repro.carl.causal_graph import GroundedAttribute

        values = toy_engine.values
        assert values[GroundedAttribute("Score", ("s1",))] == pytest.approx(0.75)
        assert values[GroundedAttribute("AVG_Score", ("Bob",))] == pytest.approx(0.75)


class TestATEQueries:
    def test_basic_ate_query(self, toy_engine):
        answer = toy_engine.answer("Score[S] <= Prestige[A] ?")
        result = answer.result
        assert isinstance(result, ATEResult)
        assert result.n_units == 3
        assert result.n_treated == 2
        assert result.n_control == 1
        assert result.naive_difference == pytest.approx((0.75 + 0.416666) / 2 - 0.1, abs=1e-3)
        assert answer.unit_table_seconds >= 0.0
        assert answer.total_seconds >= answer.unit_table_seconds

    def test_aggregated_response_query_reuses_declared_aggregate(self, toy_engine):
        answer = toy_engine.answer("AVG_Score[A] <= Prestige[A] ?")
        assert answer.result.n_units == 3

    def test_query_object_input(self, toy_engine):
        from repro.carl.parser import parse_query

        answer = toy_engine.answer(parse_query("Score[S] <= Prestige[A] ?"))
        assert isinstance(answer.result, ATEResult)

    def test_treatment_threshold_binarizes(self, toy_engine):
        answer = toy_engine.answer("AVG_Score[A] <= Qualification[A] >= 20 ?")
        result = answer.result
        # Bob (50) and Carlos (20) are treated; Eva (2) is control.
        assert result.n_treated == 2
        assert result.n_control == 1

    def test_where_restriction_on_response_entity(self, toy_engine):
        answer = toy_engine.answer(
            'Score[S] <= Prestige[A] ? WHERE Submitted(S, C), Blind[C] = "double"'
        )
        # Only s2 and s3 (ConfAI) count; Bob has no double-blind submission and
        # is dropped from the unit table.
        assert answer.result.n_units == 2

    def test_where_restriction_on_treated_entity(self, toy_engine):
        answer = toy_engine.answer(
            'AVG_Score[A] <= Prestige[A] ? WHERE Author(A, S), S = "s3"'
        )
        # Only the authors of s3 (Eva, Carlos) remain as units.
        assert answer.result.n_units == 2

    def test_alternative_estimators_run(self, toy_engine):
        for estimator in ("naive", "ipw"):
            answer = toy_engine.answer("AVG_Score[A] <= Prestige[A] ?", estimator=estimator)
            assert answer.result.estimator == estimator

    def test_bootstrap_interval(self, toy_engine):
        answer = toy_engine.answer("AVG_Score[A] <= Prestige[A] ?", bootstrap=25, seed=1)
        interval = answer.result.confidence_interval
        assert interval is not None
        assert interval[0] <= interval[1]


class TestEffectsQueries:
    def test_peer_query_returns_effects(self, toy_engine):
        answer = toy_engine.answer("Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED")
        result = answer.result
        assert isinstance(result, EffectsResult)
        assert result.peer_condition.kind == "ALL"
        assert result.n_units == 3
        assert result.mean_peer_count == pytest.approx(4 / 3)

    def test_decomposition_holds(self, toy_engine):
        """Proposition 4.1: AOE = AIE + ARE."""
        result = toy_engine.answer("Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED").result
        assert result.decomposition_gap < 1e-9

    def test_fraction_peer_condition(self, toy_engine):
        result = toy_engine.answer(
            "Score[S] <= Prestige[A] ? WHEN MORE THAN 1/3 PEERS TREATED"
        ).result
        assert isinstance(result, EffectsResult)
        assert result.decomposition_gap < 1e-9

    def test_none_condition_yields_zero_relational_effect(self, toy_engine):
        result = toy_engine.answer("Score[S] <= Prestige[A] ? WHEN NONE PEERS TREATED").result
        assert result.are == pytest.approx(0.0, abs=1e-12)
        assert result.aoe == pytest.approx(result.aie, abs=1e-12)


class TestConditionalEffects:
    def test_conditional_effects_shape(self, toy_engine):
        cate = toy_engine.conditional_effects("AVG_Score[A] <= Prestige[A] ?")
        assert cate.shape == (3,)


class TestErrors:
    def test_unknown_treatment(self, toy_engine):
        with pytest.raises(QueryError, match="unknown treatment"):
            toy_engine.answer("Score[S] <= Fame[A] ?")

    def test_latent_treatment_rejected(self, toy_engine):
        with pytest.raises(QueryError, match="latent"):
            toy_engine.answer("Score[S] <= Quality[S] ?")

    def test_unknown_response(self, toy_engine):
        with pytest.raises(QueryError, match="unknown response"):
            toy_engine.answer("Fame[A] <= Prestige[A] ?")

    def test_latent_response_rejected(self, toy_engine):
        with pytest.raises(QueryError, match="latent"):
            toy_engine.answer("Quality[S] <= Prestige[A] ?")

    def test_condition_excluding_every_unit(self, toy_engine):
        with pytest.raises(QueryError, match="excludes every unit"):
            toy_engine.answer('AVG_Score[A] <= Prestige[A] ? WHERE Author(A, S), S = "zzz"')

    def test_unit_table_helper(self, toy_engine):
        table = toy_engine.unit_table("AVG_Score[A] <= Prestige[A] ?")
        assert len(table) == 3
