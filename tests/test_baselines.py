"""Unit tests for the universal-table and naive baselines (repro.baselines)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    build_universal_table,
    flat_ate,
    flat_cate,
    naive_contrast,
    universal_review_table,
)
from repro.datasets import toy_review_database


class TestUniversalTable:
    def test_build_universal_table_on_toy_data(self):
        db = toy_review_database()
        universal = build_universal_table(
            db, ["Person", "Author", "Submission", "Submitted", "Conference"]
        )
        # One row per authorship record, with author, submission and venue columns.
        assert len(universal) == 5
        assert {"person", "prestige", "sub", "score", "conf", "blind"} <= set(universal.columns)

    def test_universal_review_table_dispatches_by_schema(self, synthetic_review_small):
        toy_universal = universal_review_table(toy_review_database())
        assert len(toy_universal) == 5
        synthetic_universal = universal_review_table(synthetic_review_small.database)
        assert len(synthetic_universal) == synthetic_review_small.n_submissions

    def test_empty_table_order_rejected(self):
        with pytest.raises(ValueError):
            build_universal_table(toy_review_database(), [])


class TestFlatEstimates:
    def test_flat_ate_on_synthetic_review(self, synthetic_review_small):
        universal = universal_review_table(synthetic_review_small.database)
        estimate = flat_ate(
            universal,
            treatment_column="prestige",
            outcome_column="score",
            covariate_columns=["qualification"],
            estimator="regression",
        )
        # The flat estimate conflates isolated and relational effects; it is a
        # real number of plausible magnitude but need not equal the ground truth.
        assert np.isfinite(estimate.ate)
        assert estimate.n_units == len(universal)

    def test_flat_cate_shape(self, synthetic_review_small):
        universal = universal_review_table(synthetic_review_small.database)
        cate = flat_cate(
            universal,
            treatment_column="prestige",
            outcome_column="score",
            covariate_columns=["qualification"],
        )
        assert cate.shape == (len(universal),)

    def test_flat_ate_empty_table_rejected(self):
        with pytest.raises(ValueError):
            flat_ate([], "t", "y")


class TestNaiveContrast:
    def test_matches_hand_computation(self):
        rows = [
            {"t": 1, "y": 4.0},
            {"t": 1, "y": 6.0},
            {"t": 0, "y": 1.0},
            {"t": 0, "y": 3.0},
        ]
        contrast = naive_contrast(rows, "t", "y")
        assert contrast["treated_mean"] == 5.0
        assert contrast["control_mean"] == 2.0
        assert contrast["difference"] == 3.0
        assert contrast["n_rows"] == 4
        assert -1.0 <= contrast["correlation"] <= 1.0

    def test_accepts_table_objects(self):
        db = toy_review_database()
        contrast = naive_contrast(db.table("Person"), "prestige", "qualification")
        assert contrast["treated_mean"] == pytest.approx(26.0)
        assert contrast["control_mean"] == pytest.approx(20.0)

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            naive_contrast([], "t", "y")
