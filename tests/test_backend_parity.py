"""Differential tests: the columnar backend must match the row backend.

Every query shape the engine supports — equality filters, predicate
selections, projections, joins, group-bys over every registered aggregate,
conjunctive-query evaluation, and unit-table materialization — is generated
randomly with Hypothesis and executed against both backends; results must be
identical (bit-for-bit for discrete values, to tolerance for floating-point
aggregates).  NaN values, empty tables and single-row tables are part of the
generated space.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.carl.causal_graph import GroundedAttribute, GroundedCausalGraph, GroundedRule
from repro.carl.embeddings import EMBEDDINGS
from repro.carl.peers import compute_peers
from repro.carl.unit_table import build_unit_table
from repro.db.aggregates import AGGREGATES, AggregateError, aggregate, grouped_aggregate
from repro.db.query import Atom, ConjunctiveQuery, Variable
from repro.db.schema import TableSchema
from repro.db.table import ColumnarTable, Table

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
floats_with_nan = st.one_of(finite_floats, st.just(math.nan))
small_ints = st.integers(min_value=-3, max_value=3)
labels = st.sampled_from(["a", "b", "c", "d"])

row_strategy = st.fixed_dictionaries(
    {
        "k": small_ints,
        "v": floats_with_nan,
        "s": labels,
        "b": st.booleans(),
    }
)
rows_strategy = st.lists(row_strategy, min_size=0, max_size=12)

TABLE_SCHEMA = TableSchema.from_spec(
    "t", {"k": "int", "v": "float", "s": "str", "b": "bool"}
)


def both_backends(rows: list[dict]) -> tuple[Table, ColumnarTable]:
    """The same rows in both backends (sharing value objects, like a real
    ingest would)."""
    return Table(TABLE_SCHEMA, rows), ColumnarTable(TABLE_SCHEMA, rows)


def assert_same_rows(left, right) -> None:
    left_rows, right_rows = left.to_list(), right.to_list()
    assert len(left_rows) == len(right_rows)
    for expected, actual in zip(left_rows, right_rows):
        assert expected.keys() == actual.keys()
        for column in expected:
            e, a = expected[column], actual[column]
            if isinstance(e, float) and isinstance(a, float) and math.isnan(e):
                assert math.isnan(a)
            else:
                assert e == a, (column, e, a)


# ----------------------------------------------------------------------
# relational operators
# ----------------------------------------------------------------------
@given(rows_strategy, small_ints, labels)
def test_where_parity(rows, key, label):
    row_table, columnar = both_backends(rows)
    assert_same_rows(row_table.where(k=key), columnar.where(k=key))
    assert_same_rows(row_table.where(k=key, s=label), columnar.where(k=key, s=label))
    predicate = lambda row: row["b"] and row["k"] >= 0  # noqa: E731
    assert_same_rows(row_table.select(predicate), columnar.select(predicate))


@given(rows_strategy, st.booleans())
def test_project_parity(rows, distinct):
    row_table, columnar = both_backends(rows)
    assert_same_rows(
        row_table.project(["s", "k"], distinct=distinct),
        columnar.project(["s", "k"], distinct=distinct),
    )
    assert_same_rows(
        row_table.rename({"v": "value"}, name="renamed"),
        columnar.rename({"v": "value"}, name="renamed"),
    )


@given(rows_strategy, rows_strategy, st.sampled_from([None, ["k"], ["k", "s"], []]))
def test_join_parity(left_rows, right_rows, on):
    left_row, left_col = both_backends(left_rows)
    # Rename one non-join column so the right side contributes new columns.
    right_row = Table(TABLE_SCHEMA, right_rows).rename({"v": "w", "b": "c"}, name="r")
    right_col = ColumnarTable(TABLE_SCHEMA, right_rows).rename({"v": "w", "b": "c"}, name="r")
    expected = left_row.join(right_row, on=on)
    actual = left_col.join(right_col, on=on)
    assert expected.columns == actual.columns
    assert_same_rows(expected, actual)


@given(rows_strategy, st.sampled_from([["s"], ["k"], ["s", "b"], []]))
def test_group_by_all_aggregates_parity(rows, keys):
    row_table, columnar = both_backends(rows)
    aggregations = {f"agg_{name.lower()}": ("v", name) for name in AGGREGATES}
    expected = row_table.group_by(keys, aggregations).to_list()
    actual = columnar.group_by(keys, aggregations).to_list()
    assert len(expected) == len(actual)
    for expected_row, actual_row in zip(expected, actual):
        assert expected_row.keys() == actual_row.keys()
        for column in expected_row:
            e, a = expected_row[column], actual_row[column]
            if isinstance(e, float) and (isinstance(a, (int, float))):
                if math.isnan(e):
                    assert math.isnan(a), column
                else:
                    assert a == pytest.approx(e, rel=1e-9, abs=1e-9), column
            else:
                assert e == a, (column, e, a)


@given(
    st.lists(floats_with_nan, min_size=0, max_size=30),
    st.integers(min_value=1, max_value=5),
    st.randoms(use_true_random=False),
)
def test_scalar_vs_grouped_aggregate_parity(values, n_groups, rng):
    """The grouped numpy kernels agree with per-group scalar aggregation."""
    group_ids = np.asarray([rng.randrange(n_groups) for _ in values], dtype=np.intp)
    groups = [[] for _ in range(n_groups)]
    for group, value in zip(group_ids, values):
        groups[group].append(value)
    for name in AGGREGATES:
        empty_groups = any(not group for group in groups)
        if name in ("MIN", "MAX") and empty_groups:
            with pytest.raises(AggregateError):
                grouped_aggregate(name, np.asarray(values), group_ids, n_groups)
            continue
        vectorized = grouped_aggregate(name, np.asarray(values), group_ids, n_groups)
        for group, result in zip(groups, vectorized.tolist()):
            expected = aggregate(name, group)
            if isinstance(expected, float) and math.isnan(expected):
                assert math.isnan(result), name
            elif isinstance(expected, bool):
                assert result == expected, name
            else:
                assert result == pytest.approx(expected, rel=1e-9, abs=1e-9), name


def test_non_finite_sum_avg_parity():
    """inf/overflow inputs: scalar and grouped SUM/AVG must agree (IEEE
    semantics), not raise on one backend and return on the other."""
    cases = [
        [math.inf, -math.inf],  # fsum would raise ValueError
        [1e308, 1e308],  # fsum would raise OverflowError
        [math.inf, 1.0],
        [-math.inf, -5.0],
    ]
    for values in cases:
        for name in ("SUM", "AVG", "VAR", "STD", "SKEW"):
            scalar = aggregate(name, values)
            grouped = grouped_aggregate(
                name, np.asarray(values), np.zeros(len(values), dtype=np.intp), 1
            )[0]
            if math.isnan(scalar):
                assert math.isnan(grouped), (name, values)
            else:
                assert grouped == scalar, (name, values, scalar, grouped)
        rows = [{"k": 0, "v": value, "s": "a", "b": False} for value in values]
        row_table, columnar = both_backends(rows)
        aggregations = {"total": ("v", "SUM"), "mean": ("v", "AVG")}
        assert_same_rows(
            row_table.group_by(["k"], aggregations), columnar.group_by(["k"], aggregations)
        )


def test_where_with_sequence_values_parity():
    """Sequence-valued equality filters must compare cell-wise, not broadcast."""
    rows = [{"k": (1, 2)}, {"k": (3, 4)}, {"k": 5}]
    schema = TableSchema.from_spec("seq", {"k": "any"})
    row_table = Table(schema, rows)
    columnar = ColumnarTable(schema, rows)
    assert_same_rows(row_table.where(k=(1, 2)), columnar.where(k=(1, 2)))
    assert_same_rows(row_table.where(k=[1, 2]), columnar.where(k=[1, 2]))
    assert_same_rows(row_table.where(k=(9,)), columnar.where(k=(9,)))
    assert_same_rows(row_table.where(k=5), columnar.where(k=5))


@given(
    st.lists(st.lists(finite_floats, min_size=0, max_size=6), min_size=0, max_size=10),
    st.sampled_from(sorted(EMBEDDINGS)),
)
def test_embedding_flat_parity(groups, embedding_name):
    """Embedding.apply_flat matches a per-group apply loop after fitting."""
    cls = EMBEDDINGS[embedding_name]
    scalar = cls().fit(groups)
    expected = [scalar.apply(group) for group in groups]
    counts = [len(group) for group in groups]
    values = np.asarray([value for group in groups for value in group], dtype=float)
    group_ids = np.repeat(np.arange(len(groups)), counts).astype(np.intp)
    flat = cls().fit_flat(values, group_ids, len(groups))
    assert getattr(flat, "width", None) == getattr(scalar, "width", None)
    matrix = flat.apply_flat(values, group_ids, len(groups))
    if matrix is None:  # no vectorized kernel: nothing to diff
        return
    assert matrix.shape == (len(groups), scalar.dimension)
    for expected_row, actual_row in zip(expected, matrix.tolist()):
        assert actual_row == pytest.approx(expected_row, rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# conjunctive queries
# ----------------------------------------------------------------------
@given(
    st.lists(st.tuples(small_ints, small_ints), min_size=0, max_size=10),
    st.lists(st.tuples(small_ints, labels), min_size=0, max_size=10),
    small_ints,
)
def test_conjunctive_query_backend_parity(r_pairs, s_pairs, constant):
    from repro.db.database import Database

    database = Database("parity")
    database.load_rows("R", [{"x": x, "y": y} for x, y in r_pairs] or [{"x": 0, "y": 0}])
    database.load_rows("S", [{"y": y, "z": z} for y, z in s_pairs] or [{"y": 0, "z": "a"}])
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    queries = [
        ConjunctiveQuery([Atom("R", (x, y))]),
        ConjunctiveQuery([Atom("R", (x, x))]),
        ConjunctiveQuery([Atom("R", (constant, y))]),
        ConjunctiveQuery([Atom("R", (x, y)), Atom("S", (y, z))]),
        ConjunctiveQuery([Atom("R", (x, y)), Atom("R", (y, x))]),
        ConjunctiveQuery([Atom("R", (x, y)), Atom("S", (y, "a"))]),
    ]
    for query in queries:
        assert query.evaluate(database, backend="rows") == query.evaluate(
            database, backend="columnar"
        )


# ----------------------------------------------------------------------
# unit-table materialization
# ----------------------------------------------------------------------
@st.composite
def grounded_setups(draw):
    """A random grounded causal graph + values for T/Y/C attributes.

    Units get their own treatment/outcome/covariate nodes, random
    covariate->treatment/outcome edges, random treatment->outcome edges and
    random peer edges T[p] -> Y[u]; treatments and outcomes can be missing.
    """
    n_units = draw(st.integers(min_value=1, max_value=7))
    graph = GroundedCausalGraph()
    values: dict[GroundedAttribute, object] = {}
    units = [(index,) for index in range(n_units)]

    for unit in units:
        treatment = GroundedAttribute("T", unit)
        outcome = GroundedAttribute("Y", unit)
        graph.add_node(treatment)
        graph.add_node(outcome)
        if draw(st.booleans()):
            graph.add_grounded_rule(GroundedRule(head=outcome, body=(treatment,)))
        if draw(st.booleans()):
            values[treatment] = draw(st.sampled_from([0, 1, True, False, 0.0, 1.0]))
        if draw(st.booleans()):
            values[outcome] = draw(finite_floats)
        for attribute in ("C1", "C2"):
            if draw(st.booleans()):
                covariate = GroundedAttribute(attribute, unit)
                graph.add_grounded_rule(GroundedRule(head=treatment, body=(covariate,)))
                if draw(st.booleans()):
                    graph.add_grounded_rule(GroundedRule(head=outcome, body=(covariate,)))
                if attribute == "C1":
                    values[covariate] = draw(floats_with_nan)
                else:
                    values[covariate] = draw(st.one_of(finite_floats, labels))
    # Random peer edges between distinct units.
    for source in units:
        for target in units:
            if source != target and draw(st.integers(0, 3)) == 0:
                graph.add_grounded_rule(
                    GroundedRule(
                        head=GroundedAttribute("Y", target),
                        body=(GroundedAttribute("T", source),),
                    )
                )
    return graph, values, units


@given(grounded_setups(), st.sampled_from(sorted(EMBEDDINGS)))
@settings(max_examples=60)
def test_unit_table_backend_parity(setup, embedding):
    graph, values, units = setup
    peers = compute_peers(graph, "T", "Y", units)

    def build(backend):
        try:
            return build_unit_table(
                graph,
                values,
                "T",
                "Y",
                units,
                peers,
                is_observed=lambda name: True,
                embedding=embedding,
                backend=backend,
            )
        except Exception as error:  # noqa: BLE001 - compared across backends
            return error

    expected = build("rows")
    actual = build("columnar")
    if isinstance(expected, Exception) or isinstance(actual, Exception):
        assert type(expected) is type(actual), (expected, actual)
        return
    assert expected.unit_keys == actual.unit_keys
    assert expected.peer_columns == actual.peer_columns
    assert expected.covariate_columns == actual.covariate_columns
    for attribute in ("outcome", "treatment", "peer_treatment", "peer_counts", "covariates"):
        left = getattr(expected, attribute)
        right = getattr(actual, attribute)
        assert left.shape == right.shape, attribute
        assert np.allclose(left, right, rtol=1e-9, atol=1e-12, equal_nan=True), attribute


def test_group_by_callable_aggregates_are_bitwise_identical():
    """An explicitly passed callable must run as-is on both backends — the
    columnar backend may not substitute its approximate numpy kernel."""
    from repro.db.aggregates import agg_sum

    rows = [{"k": 0, "v": 0.1, "s": "a", "b": False} for _ in range(10)]
    row_table, columnar = both_backends(rows)
    expected = row_table.group_by(["k"], {"total": ("v", agg_sum)}).to_list()
    actual = columnar.group_by(["k"], {"total": ("v", agg_sum)}).to_list()
    assert actual == expected  # exact equality: fsum on both sides
    assert actual[0]["total"] == 1.0


def test_from_columns_rejects_null_in_non_nullable_any_column():
    """Bulk construction must enforce the null check that insert() enforces."""
    from repro.db.schema import SchemaError

    with pytest.raises(SchemaError, match="not nullable"):
        ColumnarTable.from_columns("t", {"x": [1, None, 3]})
    table = ColumnarTable.from_columns("t", {"x": [1, 2, 3]})
    assert table.column("x") == [1, 2, 3]


def test_custom_embedding_subclass_overrides_are_honoured():
    """A subclass overriding only the scalar apply()/fit() must not be
    silently bypassed by the inherited vectorized kernels."""
    from repro.carl.embeddings import MeanEmbedding, PaddingEmbedding
    from repro.carl.unit_table import _apply_embedder, _fit_embedder

    class ClippedMean(MeanEmbedding):
        def apply(self, values):
            mean, count = super().apply(values)
            return [min(mean, 1.0), count]

    values = np.asarray([5.0, 7.0], dtype=float)
    group_ids = np.asarray([0, 0], dtype=np.intp)
    matrix = _apply_embedder(ClippedMean(), values, group_ids, 1)
    assert matrix.tolist() == [[1.0, 2.0]]  # the override's clipping applied

    class WidePadding(PaddingEmbedding):
        def fit(self, groups):
            self.width = 7
            return self

    fitted = _fit_embedder(WidePadding(), values, group_ids, 1)
    assert fitted.width == 7  # the custom fit ran, not the inherited fit_flat


# ----------------------------------------------------------------------
# end-to-end: engine answers must not depend on the backend
# ----------------------------------------------------------------------
def test_engine_answer_backend_parity(toy_engine):
    rows = toy_engine.answer("Score[S] <= Prestige[A] ?", backend="rows")
    columnar = toy_engine.answer("Score[S] <= Prestige[A] ?", backend="columnar")
    assert columnar.result.ate == pytest.approx(rows.result.ate, rel=1e-12)
    assert columnar.result.naive_difference == pytest.approx(
        rows.result.naive_difference, rel=1e-12
    )
    assert columnar.unit_table_summary == rows.unit_table_summary


def test_engine_defaults_to_columnar(toy_engine):
    assert toy_engine.backend == "columnar"


# ----------------------------------------------------------------------
# full-strength differential sweep (excluded from the tier-1 loop)
# ----------------------------------------------------------------------
@pytest.mark.slow
@given(rows_strategy, st.sampled_from([["s"], ["k", "b"]]))
@settings(max_examples=800, deadline=None)
def test_group_by_parity_exhaustive(rows, keys):
    row_table, columnar = both_backends(rows)
    aggregations = {f"agg_{name.lower()}": ("v", name) for name in AGGREGATES}
    expected = row_table.group_by(keys, aggregations).to_list()
    actual = columnar.group_by(keys, aggregations).to_list()
    assert len(expected) == len(actual)
    for expected_row, actual_row in zip(expected, actual):
        for column in expected_row:
            e, a = expected_row[column], actual_row[column]
            if isinstance(e, float):
                if math.isnan(e):
                    assert math.isnan(a)
                else:
                    assert a == pytest.approx(e, rel=1e-9, abs=1e-9)
            else:
                assert e == a
