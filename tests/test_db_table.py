"""Unit tests for the in-memory table (repro.db.table)."""

from __future__ import annotations

import pytest

from repro.db.schema import SchemaError, TableSchema
from repro.db.table import Table


@pytest.fixture()
def people() -> Table:
    return Table.from_rows(
        "people",
        [
            {"name": "bob", "age": 41, "city": "seattle"},
            {"name": "eva", "age": 35, "city": "durham"},
            {"name": "carlos", "age": 29, "city": "seattle"},
        ],
        primary_key=["name"],
    )


@pytest.fixture()
def visits() -> Table:
    return Table.from_rows(
        "visits",
        [
            {"name": "bob", "hospital": "h1"},
            {"name": "bob", "hospital": "h2"},
            {"name": "eva", "hospital": "h1"},
        ],
    )


class TestConstruction:
    def test_from_rows_infers_types(self, people):
        assert people.schema.column("age").dtype == "int"
        assert people.schema.column("name").dtype == "str"

    def test_from_rows_requires_rows(self):
        with pytest.raises(SchemaError):
            Table.from_rows("empty", [])

    def test_insert_validates_schema(self, people):
        with pytest.raises(SchemaError):
            people.insert({"name": "dana", "age": "not a number", "city": "x"})

    def test_primary_key_uniqueness(self, people):
        with pytest.raises(SchemaError):
            people.insert({"name": "bob", "age": 50, "city": "x"})

    def test_len_and_iteration(self, people):
        assert len(people) == 3
        assert sorted(row["name"] for row in people) == ["bob", "carlos", "eva"]

    def test_get_by_key(self, people):
        assert people.get_by_key("eva")["age"] == 35
        with pytest.raises(KeyError):
            people.get_by_key("nobody")

    def test_get_by_key_requires_primary_key(self, visits):
        with pytest.raises(SchemaError):
            visits.get_by_key("bob")


class TestColumns:
    def test_column_values(self, people):
        assert people.column("age") == [41, 35, 29]

    def test_distinct(self, people):
        assert people.distinct("city") == ["seattle", "durham"]

    def test_to_list_round_trip(self, people):
        rows = people.to_list()
        rebuilt = Table(people.schema, rows)
        assert rebuilt.to_list() == rows


class TestOperators:
    def test_select(self, people):
        seattle = people.select(lambda row: row["city"] == "seattle")
        assert len(seattle) == 2

    def test_where(self, people):
        assert len(people.where(city="seattle", age=29)) == 1
        with pytest.raises(SchemaError):
            people.where(unknown_column=1)

    def test_project(self, people):
        projected = people.project(["city"])
        assert projected.columns == ("city",)
        assert len(projected) == 3

    def test_project_distinct(self, people):
        projected = people.project(["city"], distinct=True)
        assert len(projected) == 2

    def test_rename(self, people):
        renamed = people.rename({"name": "person"}, name="renamed")
        assert renamed.name == "renamed"
        assert "person" in renamed.columns
        assert "name" not in renamed.columns

    def test_natural_join(self, people, visits):
        joined = people.join(visits)
        assert len(joined) == 3
        assert set(joined.columns) == {"name", "age", "city", "hospital"}
        bob_rows = [row for row in joined if row["name"] == "bob"]
        assert {row["hospital"] for row in bob_rows} == {"h1", "h2"}

    def test_join_without_shared_columns_is_cartesian(self, people):
        other = Table.from_rows("flags", [{"flag": 1}, {"flag": 2}])
        product = people.join(other)
        assert len(product) == 6

    def test_group_by(self, people):
        grouped = people.group_by(
            ["city"], {"n": ("name", len), "mean_age": ("age", lambda ages: sum(ages) / len(ages))}
        )
        by_city = {row["city"]: row for row in grouped}
        assert by_city["seattle"]["n"] == 2
        assert by_city["seattle"]["mean_age"] == 35.0

    def test_lookup_with_and_without_index(self, people):
        assert len(people.lookup("city", "seattle")) == 2
        people.build_index("city")
        assert len(people.lookup("city", "seattle")) == 2
        assert people.lookup("city", "nowhere") == []

    def test_index_updated_on_insert(self, visits):
        visits.build_index("name")
        visits.insert({"name": "carlos", "hospital": "h3"})
        assert len(visits.lookup("name", "carlos")) == 1
