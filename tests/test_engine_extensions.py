"""Tests for engine conveniences: answer_all and diagnostics."""

from __future__ import annotations

import pytest

from repro.carl.queries import ATEResult, EffectsResult
from repro.inference.diagnostics import BalanceReport


class TestAnswerAll:
    def test_dict_of_queries(self, toy_engine):
        answers = toy_engine.answer_all(
            {
                "ate": "AVG_Score[A] <= Prestige[A] ?",
                "peers": "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
            }
        )
        assert set(answers) == {"ate", "peers"}
        assert isinstance(answers["ate"].result, ATEResult)
        assert isinstance(answers["peers"].result, EffectsResult)

    def test_list_of_queries_uses_indices(self, toy_engine):
        answers = toy_engine.answer_all(["AVG_Score[A] <= Prestige[A] ?"])
        assert list(answers) == ["0"]

    def test_estimator_override_applies_to_all(self, toy_engine):
        answers = toy_engine.answer_all(
            {"ate": "AVG_Score[A] <= Prestige[A] ?"}, estimator="naive"
        )
        assert answers["ate"].result.estimator == "naive"


class TestDiagnostics:
    def test_toy_diagnostics_report(self, toy_engine):
        report = toy_engine.diagnostics("AVG_Score[A] <= Prestige[A] ?")
        assert isinstance(report, BalanceReport)
        names = [entry.name for entry in report.covariates]
        assert any("Qualification" in name for name in names)
        assert 0.0 <= report.overlap() <= 1.0

    def test_synthetic_diagnostics_show_confounding(self, synthetic_review_medium, synthetic_review_engine):
        data = synthetic_review_medium
        report = synthetic_review_engine.diagnostics(data.queries["peer_single"])
        by_name = {entry.name: entry for entry in report.covariates}
        own_qualification = by_name["cov_own_Qualification_mean"]
        # Qualification is genuinely imbalanced before adjustment (it drives
        # prestige), and inverse-propensity weighting improves the balance.
        assert abs(own_qualification.smd_unadjusted) > 0.3
        assert abs(own_qualification.smd_weighted) < abs(own_qualification.smd_unadjusted)

    def test_diagnostics_accept_parsed_queries(self, toy_engine):
        from repro.carl.parser import parse_query

        report = toy_engine.diagnostics(parse_query("Score[S] <= Prestige[A] ?"))
        assert isinstance(report, BalanceReport)
