"""Unit tests for d-separation (repro.graph.dseparation)."""

from __future__ import annotations

from repro.graph.dag import DAG
from repro.graph.dseparation import d_separated, find_minimal_separator


def build(edges: list[tuple[str, str]]) -> DAG:
    graph = DAG()
    for parent, child in edges:
        graph.add_edge(parent, child)
    return graph


class TestCanonicalStructures:
    def test_chain_is_connected_marginally(self):
        graph = build([("x", "m"), ("m", "y")])
        assert not d_separated(graph, "x", "y")

    def test_chain_is_blocked_by_mediator(self):
        graph = build([("x", "m"), ("m", "y")])
        assert d_separated(graph, "x", "y", ["m"])

    def test_fork_is_connected_marginally(self):
        graph = build([("z", "x"), ("z", "y")])
        assert not d_separated(graph, "x", "y")

    def test_fork_is_blocked_by_common_cause(self):
        graph = build([("z", "x"), ("z", "y")])
        assert d_separated(graph, "x", "y", ["z"])

    def test_collider_blocks_marginally(self):
        graph = build([("x", "c"), ("y", "c")])
        assert d_separated(graph, "x", "y")

    def test_collider_opens_when_conditioned(self):
        graph = build([("x", "c"), ("y", "c")])
        assert not d_separated(graph, "x", "y", ["c"])

    def test_collider_opens_when_descendant_conditioned(self):
        graph = build([("x", "c"), ("y", "c"), ("c", "d")])
        assert not d_separated(graph, "x", "y", ["d"])

    def test_unrelated_nodes_are_separated(self):
        graph = build([("a", "b"), ("c", "d")])
        assert d_separated(graph, "a", "d")


class TestSetsAndEdgeCases:
    def test_set_arguments(self):
        graph = build([("a", "m"), ("b", "m"), ("m", "y")])
        assert not d_separated(graph, ["a", "b"], ["y"])
        assert d_separated(graph, ["a", "b"], ["y"], ["m"])

    def test_node_in_conditioning_set_is_ignored(self):
        graph = build([("x", "y")])
        assert d_separated(graph, "x", "y", ["y"])

    def test_overlapping_sets_are_connected(self):
        graph = build([("x", "y")])
        assert not d_separated(graph, ["x", "y"], ["y"])

    def test_unknown_nodes_are_treated_as_absent(self):
        graph = build([("x", "y")])
        assert d_separated(graph, "x", "unknown")

    def test_backdoor_example(self):
        # Classic confounding triangle: Z -> T, Z -> Y, T -> Y.
        graph = build([("z", "t"), ("z", "y"), ("t", "y")])
        assert not d_separated(graph, "y", "z")
        # Conditioning on T alone does not block (and opens nothing new here);
        # conditioning on Z blocks the backdoor path from Pa(T) to Y.
        assert d_separated(graph, "y", "z", ["z", "t"])

    def test_m_structure_conditioning_harms(self):
        # M-bias: conditioning on the collider m opens a path between t and y.
        graph = build([("u1", "t"), ("u1", "m"), ("u2", "m"), ("u2", "y")])
        assert d_separated(graph, "t", "y")
        assert not d_separated(graph, "t", "y", ["m"])


class TestMinimalSeparator:
    def test_minimal_separator_shrinks(self):
        graph = build([("z", "x"), ("z", "y"), ("w", "x")])
        result = find_minimal_separator(graph, "x", "y", ["z", "w"])
        assert result == ["z"]

    def test_minimal_separator_returns_none_when_candidate_fails(self):
        graph = build([("x", "y")])
        assert find_minimal_separator(graph, "x", "y", []) is None

    def test_minimal_separator_keeps_necessary_nodes(self):
        graph = build([("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")])
        result = find_minimal_separator(graph, "x", "y", ["a", "b"])
        assert result is not None
        assert set(result) == {"a", "b"}

    def test_minimal_separator_of_separated_nodes_is_empty(self):
        graph = build([("a", "b"), ("c", "d")])
        assert find_minimal_separator(graph, "a", "d", ["b"]) == []
