"""Behavioral tests for the persistent artifact cache.

Covers the fingerprint contract (content-addressed, mutation-sensitive), the
store's key verification and maintenance commands, the engine integration
(warm runs skip grounding entirely and return bit-identical answers; database
mutations invalidate automatically), and the ``cache`` CLI group.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import CaRLEngine
from repro.cache import ArtifactCache, CacheKey
from repro.cache.fingerprint import model_fingerprint, query_fingerprint
from repro.carl.parser import parse_query
from repro.cli import main
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database
from repro.db.database import Database

#: The quickstart example's three query shapes (ATE over a unified aggregated
#: response, the effect triple under a peer condition, and a restricted ATE).
QUICKSTART_QUERIES = (
    "AVG_Score[A] <= Prestige[A] ?",
    "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
    'Score[S] <= Prestige[A] ? WHERE Submitted(S, C), Blind[C] = "double"',
)


# ----------------------------------------------------------------------
# fingerprints and version tokens
# ----------------------------------------------------------------------
class TestFingerprints:
    def test_identical_content_identical_fingerprint(self):
        assert toy_review_database().fingerprint() == toy_review_database().fingerprint()

    def test_insert_changes_fingerprint_and_token(self):
        database = toy_review_database()
        fingerprint = database.fingerprint()
        token = database.version_token()
        database.insert("Person", {"person": "zz", "prestige": 1, "qualification": 5})
        assert database.version_token() != token
        assert database.fingerprint() != fingerprint

    def test_fingerprint_cached_until_mutation(self):
        database = toy_review_database()
        assert database.fingerprint() is database.fingerprint()  # cached string

    def test_structural_changes_move_the_token(self):
        database = Database("d")
        token = database.version_token()
        database.create_table("t", {"a": "int"})
        assert database.version_token() != token
        token = database.version_token()
        database.drop_table("t")
        assert database.version_token() != token

    def test_fingerprint_is_backend_independent(self):
        database = toy_review_database()  # row backend
        columnar = database.to_backend("columnar")
        assert columnar.fingerprint() == database.fingerprint()
        assert columnar.to_backend("rows").fingerprint() == database.fingerprint()

    def test_value_type_changes_fingerprint(self):
        left, right = Database("l"), Database("r")
        left.load_rows("t", [{"a": 1}])
        right.load_rows("t", [{"a": "1"}])
        assert left.fingerprint() != right.fingerprint()

    def test_model_fingerprint_tracks_dynamic_aggregates(self):
        engine = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM)
        before = model_fingerprint(engine.program, engine.model)
        engine.answer("MAX_Score[A] <= Prestige[A] ?")
        # Unifying Score onto authors via MAX registered a new aggregate rule
        # (the program itself only declares the AVG unification).
        assert model_fingerprint(engine.program, engine.model) != before

    def test_query_fingerprint_distinguishes_embedding_and_backend(self):
        query = parse_query("AVG_Score[A] <= Prestige[A] ?")
        base = query_fingerprint(query, "mean", "columnar")
        assert query_fingerprint(query, "moments", "columnar") != base
        assert query_fingerprint(query, "mean", "rows") != base
        other = parse_query("AVG_Score[A] <= Qualification[A] >= 5 ?")
        assert query_fingerprint(other, "mean", "columnar") != base


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class TestArtifactStore:
    def key(self, **overrides):
        parts = {"database": "ab" * 32, "program": "cd" * 32, "kind": "grounding"}
        parts.update(overrides)
        return CacheKey(**parts)

    def test_prefix_collision_reads_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        stored = self.key()
        cache.store(stored, {"x": np.arange(3)})
        # Same 16-char prefixes, different full fingerprint.
        colliding = self.key(database="ab" * 8 + "ef" * 24)
        assert cache.path_for(colliding) == cache.path_for(stored)
        assert cache.load(colliding) is None
        assert cache.stats.miss_count("grounding") == 1

    def test_corrupt_artifact_reads_as_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = self.key()
        path = cache.store(key, {"x": np.arange(3)})
        path.write_bytes(b"not a zip archive")
        assert cache.load(key) is None

    def test_reserved_payload_name_rejected(self, tmp_path):
        with pytest.raises(Exception, match="reserved"):
            ArtifactCache(tmp_path).store(self.key(), {"cache_key": np.arange(1)})

    def test_invalid_keys_rejected(self):
        with pytest.raises(Exception, match="hex"):
            self.key(database="NOT HEX")
        with pytest.raises(Exception, match="kind"):
            self.key(kind="../escape")

    def test_clear_by_kind_and_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store(self.key(), {"x": np.arange(3)})
        cache.store(self.key(kind="unit_table", detail="ee" * 32), {"x": np.arange(5)})
        assert {entry.kind for entry in cache.entries()} == {"grounding", "unit_table"}
        removed, freed = cache.clear(kind="unit_table")
        assert removed == 1 and freed > 0
        assert [entry.kind for entry in cache.entries()] == ["grounding"]
        removed, _ = cache.clear()
        assert removed == 1 and cache.entries() == []

    def test_outdated_format_counts_as_miss(self, tmp_path):
        import numpy as _np

        from repro.cache.serialization import FORMAT_VERSION

        cache = ArtifactCache(tmp_path)
        key = self.key()
        cache.store(
            key,
            {"meta": _np.asarray(json.dumps({"format": FORMAT_VERSION - 1, "kind": "x"}))},
        )
        assert cache.load(key) is None
        assert cache.stats.summary() == {
            "grounding": {"hits": 0, "misses": 1, "stores": 1}
        }

    def test_stats_summary_counts(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = self.key()
        assert cache.load(key) is None
        cache.store(key, {"x": np.arange(2)})
        assert cache.load(key) is not None
        assert cache.stats.summary() == {
            "grounding": {"hits": 1, "misses": 1, "stores": 1}
        }

    def store_aged(self, cache, **overrides):
        """Store an artifact and age its mtime monotonically per call."""
        key = self.key(**overrides)
        path = cache.store(key, {"x": np.arange(64)})
        stamp = getattr(self, "_stamp", 1_000_000_000)
        self._stamp = stamp + 100
        import os

        os.utime(path, (stamp, stamp))
        return key, path

    def test_evict_oldest_first_down_to_budget(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        oldest, oldest_path = self.store_aged(cache)
        middle, _ = self.store_aged(cache, kind="unit_table", detail="aa" * 32)
        newest, newest_path = self.store_aged(cache, kind="unit_table", detail="bb" * 32)
        sizes = {entry.path: entry.size_bytes for entry in cache.entries()}
        total = sum(sizes.values())

        # Budget that forces exactly one eviction: the oldest goes.
        removed, freed = cache.evict(total - 1)
        assert removed == 1 and freed == sizes[oldest_path]
        assert not oldest_path.exists() and newest_path.exists()

        # Already within budget: nothing happens.
        assert cache.evict(total) == (0, 0)

        # Budget zero clears everything (no pins).
        removed, _ = cache.evict(0)
        assert removed == 2 and cache.entries() == []
        with pytest.raises(Exception, match="max_bytes"):
            cache.evict(-1)

    def test_evict_skips_pinned_artifacts(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        pinned_key, pinned_path = self.store_aged(cache)
        _, other_path = self.store_aged(cache, kind="unit_table", detail="aa" * 32)
        cache.pin(pinned_key)
        removed, _ = cache.evict(0)
        # The pinned (older) artifact survives; the unpinned one is evicted.
        assert removed == 1
        assert pinned_path.exists() and not other_path.exists()
        cache.unpin(pinned_key)
        assert cache.evict(0)[0] == 1
        assert cache.entries() == []

    def test_evict_kind_filter_budgets_that_kind_alone(self, tmp_path):
        """--kind eviction: only the named kind is counted and deleted."""
        cache = ArtifactCache(tmp_path)
        _, grounding_path = self.store_aged(cache)
        _, partial_a = self.store_aged(cache, kind="unit_inputs", detail="aa" * 32)
        _, partial_b = self.store_aged(cache, kind="unit_inputs", detail="bb" * 32)
        removed, _ = cache.evict(0, kind="unit_inputs")
        assert removed == 2
        assert grounding_path.exists()
        assert not partial_a.exists() and not partial_b.exists()
        # A kind under budget evicts nothing even when the cache overall is over.
        assert cache.evict(10**9, kind="grounding") == (0, 0)
        assert grounding_path.exists()

    def test_evict_respects_live_pin_from_another_cache_handle(self, tmp_path):
        """The pin sidecar protects an in-flight session's partials against
        evictions issued through *any* handle — the `repro cache evict`
        scenario, where the evicting process never saw the pin call."""
        session_cache = ArtifactCache(tmp_path)
        pinned_key, pinned_path = self.store_aged(
            session_cache, kind="unit_inputs", detail="aa" * 32
        )
        _, loose_path = self.store_aged(
            session_cache, kind="unit_inputs", detail="bb" * 32
        )
        session_cache.pin(pinned_key)
        sidecar = session_cache._pin_path(pinned_path)
        assert sidecar.exists()
        evictor = ArtifactCache(tmp_path)  # fresh handle: no in-memory pins
        removed, _ = evictor.evict(0)
        assert removed == 1
        assert pinned_path.exists() and not loose_path.exists()
        session_cache.unpin(pinned_key)
        assert not sidecar.exists()
        assert evictor.evict(0)[0] == 1

    def test_evict_ignores_and_cleans_stale_pin_sidecars(self, tmp_path):
        """A sidecar naming a dead process is stale: the artifact is evicted
        and the sidecar cleaned up — crashes never leak protection."""
        cache = ArtifactCache(tmp_path)
        _, path = self.store_aged(cache, kind="unit_inputs", detail="aa" * 32)
        sidecar = path.with_name(f"{path.name}.pin.{2**22 + 12345}")  # no such pid
        sidecar.write_text("{}")
        removed, _ = cache.evict(0)
        assert removed == 1
        assert not path.exists() and not sidecar.exists()

    def test_unpin_never_strips_another_processes_pin(self, tmp_path):
        """Sidecars are per-process: two live sessions pinning the same
        artifact hold independent sidecars, so one unpinning leaves the
        other's protection intact."""
        cache = ArtifactCache(tmp_path)
        key, path = self.store_aged(cache)
        cache.pin(key)
        # A second, still-running process's pin (pid 1 is always alive).
        other = path.with_name(path.name + ".pin.1")
        other.write_text("{}")
        cache.unpin(key)  # removes only this process's sidecar
        assert not cache._pin_path(path).exists()
        assert other.exists()
        assert cache.evict(0) == (0, 0)  # still protected by the other pin
        other.unlink()
        assert cache.evict(0)[0] == 1

    def test_pin_refcount_keeps_sidecar_until_last_unpin(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key, path = self.store_aged(cache)
        sidecar = cache._pin_path(path)
        cache.pin(key)
        cache.pin(key)
        cache.unpin(key)
        assert sidecar.exists()  # one pin still held
        assert cache.evict(0) == (0, 0)
        cache.unpin(key)
        assert not sidecar.exists()
        cache.unpin(key)  # extra unpin is a no-op

    def test_evict_skips_undeletable_files(self, tmp_path, monkeypatch):
        """skip-on-EBUSY semantics: an unlink the OS refuses is skipped, the
        sweep continues, and the artifact simply survives."""
        from pathlib import Path

        cache = ArtifactCache(tmp_path)
        _, busy_path = self.store_aged(cache)
        _, free_path = self.store_aged(cache, kind="unit_table", detail="aa" * 32)
        real_unlink = Path.unlink

        def fake_unlink(self, *args, **kwargs):
            if self == busy_path:
                raise OSError(16, "Device or resource busy")
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", fake_unlink)
        removed, _ = cache.evict(0)
        assert removed == 1
        assert busy_path.exists() and not free_path.exists()


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
class TestEngineCache:
    def run_pipeline(self, root) -> tuple[CaRLEngine, dict[str, object]]:
        engine = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=root)
        answers = {query: engine.answer(query) for query in QUICKSTART_QUERIES}
        return engine, answers

    def test_warm_run_does_zero_grounding_work(self, tmp_path):
        root = tmp_path / "cache"
        cold_engine, cold = self.run_pipeline(root)
        assert cold_engine.grounding_runs == 1
        assert cold_engine.cache_stats()["grounding"]["stores"] == 1

        warm_engine, warm = self.run_pipeline(root)
        # Zero grounding work: no full grounding run happened anywhere.  When
        # every unit table hits, the grounded graph is never even loaded, so
        # the grounding counters may show no activity at all — only misses
        # would indicate grounding work.
        assert warm_engine.grounding_runs == 0
        assert warm_engine.grounder.ground_count == 0
        stats = warm_engine.cache_stats()
        assert stats.get("grounding", {}).get("misses", 0) == 0
        assert stats["unit_table"]["hits"] == len(QUICKSTART_QUERIES)
        assert stats["unit_table"]["misses"] == 0

        # ... and every answer is bit-identical to the cold run's.
        for query in QUICKSTART_QUERIES:
            cold_result, warm_result = cold[query].result, warm[query].result
            if hasattr(cold_result, "ate"):
                assert warm_result.ate == cold_result.ate
            else:
                assert warm_result.aie == cold_result.aie
                assert warm_result.are == cold_result.are
                assert warm_result.aoe == cold_result.aoe
            assert warm_result.naive_difference == cold_result.naive_difference
            assert warm_result.correlation == cold_result.correlation
            assert warm_result.n_units == cold_result.n_units

    def test_uncached_engine_matches_cached(self, tmp_path):
        _, cached = self.run_pipeline(tmp_path / "cache")
        plain = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM)
        for query in QUICKSTART_QUERIES[:1]:
            assert plain.answer(query).result.ate == cached[query].result.ate

    def test_mutation_invalidates_and_reruns(self, tmp_path):
        engine = CaRLEngine(
            toy_review_database(), TOY_REVIEW_PROGRAM, cache=tmp_path / "cache"
        )
        before = engine.answer(QUICKSTART_QUERIES[0]).result
        engine.database.insert(
            "Person", {"person": "newbie", "prestige": 0, "qualification": 3}
        )
        engine.database.insert("Author", {"person": "newbie", "sub": "s1"})
        after = engine.answer(QUICKSTART_QUERIES[0]).result
        assert engine.grounding_runs == 2  # stale grounding was redone
        assert after.n_units == before.n_units + 1

        # A fresh engine over an identically mutated database must agree —
        # the re-ground used current data, not the stale graph.
        database = toy_review_database()
        database.insert("Person", {"person": "newbie", "prestige": 0, "qualification": 3})
        database.insert("Author", {"person": "newbie", "sub": "s1"})
        fresh = CaRLEngine(database, TOY_REVIEW_PROGRAM).answer(QUICKSTART_QUERIES[0]).result
        assert fresh.ate == after.ate
        assert fresh.n_units == after.n_units

    def test_stale_graph_never_served_after_mutation(self):
        engine = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM)
        nodes_before = len(engine.graph)
        engine.database.insert(
            "Person", {"person": "late", "prestige": 1, "qualification": 7}
        )
        assert len(engine.graph) > nodes_before  # no manual invalidate() needed

    def test_warm_cross_predicate_query_does_zero_grounding(self, tmp_path):
        # A query whose response lives on another predicate registers a
        # unifying aggregate rule at resolution time.  Warm engines must
        # still answer it from the cache without any grounding: the
        # unit-table probe runs before the graph is extended, and the cold
        # engine stored the rule-extended grounding for miss paths.
        root = tmp_path / "cache"
        query = "MAX_Score[A] <= Prestige[A] ?"
        cold = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=root)
        cold.answer(QUICKSTART_QUERIES[0])  # grounds before the MAX rule exists
        cold_answer = cold.answer(query)

        warm = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=root)
        warm_answer = warm.answer(query)
        assert warm.grounder.ground_count == 0 and warm.grounding_runs == 0
        assert warm.cache_stats().get("grounding", {}).get("misses", 0) == 0
        assert warm_answer.result.ate == cold_answer.result.ate

        # Even with the unit table evicted, the extended grounding loads
        # instead of re-grounding.
        ArtifactCache(root).clear(kind="unit_table")
        warmish = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=root)
        warmish_answer = warmish.answer(query)
        assert warmish.grounder.ground_count == 0 and warmish.grounding_runs == 0
        assert warmish.cache_stats()["grounding"]["hits"] == 1
        assert warmish_answer.result.ate == cold_answer.result.ate

    def test_cache_keys_do_not_depend_on_session_history(self, tmp_path):
        # Session A answers a cross-predicate query (registering a unifying
        # rule) before the plain query; session B answers only the plain
        # query.  B must still hit A's artifacts — keys are built from the
        # program as written plus the per-query resolution, never from the
        # session's accumulated rule list.
        root = tmp_path / "cache"
        session_a = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=root)
        session_a.answer("MAX_Score[A] <= Prestige[A] ?")  # registers MAX rule
        plain = session_a.answer(QUICKSTART_QUERIES[0])

        session_b = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=root)
        answer_b = session_b.answer(QUICKSTART_QUERIES[0])
        assert session_b.grounder.ground_count == 0 and session_b.grounding_runs == 0
        assert session_b.cache_stats()["unit_table"] == {"hits": 1, "misses": 0, "stores": 0}
        assert answer_b.result.ate == plain.result.ate

    def test_unit_table_cache_used_by_unit_table_api(self, tmp_path):
        root = tmp_path / "cache"
        cold = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=root)
        cold_table = cold.unit_table(QUICKSTART_QUERIES[0])
        warm = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=root)
        warm_table = warm.unit_table(QUICKSTART_QUERIES[0])
        assert warm.cache_stats()["unit_table"]["hits"] == 1
        assert warm_table.equals(cold_table)  # bit-exact, via the loaded mmap


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCacheCli:
    def test_query_with_cache_then_ls_stats_clear(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert main(["--demo", "toy", "--cache", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["_cache"]["grounding"]["stores"] == 1

        assert main(["--demo", "toy", "--cache", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # The unit-table hit answers without loading the grounding at all.
        assert payload["_cache"].get("grounding", {}).get("misses", 0) == 0
        assert payload["_cache"]["unit_table"]["hits"] == 1

        assert main(["cache", "ls", "--root", root]) == 0
        listing = capsys.readouterr().out
        assert "grounding" in listing and "unit_table" in listing

        assert main(["cache", "stats", "--root", root, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["kinds"]["grounding"]["entries"] == 1

        assert main(["cache", "clear", "--root", root, "--kind", "unit_table"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "clear", "--root", root, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 1

        assert main(["cache", "ls", "--root", root]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_ls_on_missing_root(self, tmp_path, capsys):
        assert main(["cache", "ls", "--root", str(tmp_path / "nothing")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_evict_cli(self, tmp_path, capsys):
        root = str(tmp_path / "cache")
        assert main(["--demo", "toy", "--cache", root, "--json"]) == 0
        capsys.readouterr()

        # A generous budget evicts nothing.
        assert main(["cache", "evict", "--root", root, "--max-bytes", "10000000"]) == 0
        assert "evicted 0" in capsys.readouterr().out

        # Budget zero clears the cache, oldest artifacts first.
        assert main(["cache", "evict", "--root", root, "--max-bytes", "0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed"] >= 2 and payload["bytes_freed"] > 0
        assert main(["cache", "ls", "--root", root]) == 0
        assert "empty" in capsys.readouterr().out

        assert main(["cache", "evict", "--root", root, "--max-bytes", "-1"]) == 2

    def test_cache_evict_cli_kind_filter(self, tmp_path, capsys):
        """`repro cache evict --kind unit_inputs` clears shard partials
        independently of groundings and unit tables."""
        root = str(tmp_path / "cache")
        engine = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=root)
        engine.answer_all(
            {"q": "AVG_Score[A] <= Prestige[A] ?"}, jobs=2, executor="process", shards=2
        )
        cache = ArtifactCache(root)
        kinds = [entry.kind for entry in cache.entries()]
        assert "unit_inputs" in kinds and "grounding" in kinds

        assert main(
            ["cache", "evict", "--root", root, "--max-bytes", "0",
             "--kind", "unit_inputs", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["removed"] == kinds.count("unit_inputs")
        left = [entry.kind for entry in cache.entries()]
        assert "unit_inputs" not in left
        assert "grounding" in left and "unit_table" in left
