"""Shard-merge parity suite (see ``docs/sharding.md``).

Three layers of the sharded execution stack are held to differential
contracts against their serial references:

* **grouped aggregates** — ``sharded_grouped_aggregate`` must match the
  scalar aggregate family (``agg_*``) bit-for-bit per group (NaNs compare as
  NaNs: the merge canonicalizes NaN payloads, scalar inf arithmetic does
  not), and must be bit-*identical* — payload bits included — across shard
  counts 1/2/7;
* **unit-table collection** — collecting consecutive unit ranges and merging
  must reproduce the unsharded collection exactly (bit-identical
  materialized unit tables);
* **process-pool answering** — ``answer_all(executor="process")`` must be
  answer-for-answer bit-identical to the serial loop at any shard count, and
  a worker that dies or raises must fail the batch with a clean
  :class:`QueryError`, never a hang.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cache.serialization import (
    load_unit_inputs,
    unit_inputs_payload,
)
from repro.cache.store import ArtifactCache, CacheKey
from repro.carl.engine import CaRLEngine
from repro.carl.errors import QueryError
from repro.carl.unit_table import materialize_unit_table, merge_unit_table_inputs
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database
from repro.db.aggregates import (
    AGGREGATES,
    SHARDABLE_AGGREGATES,
    AggregateError,
    grouped_shard_partial,
    merge_grouped_shards,
    shard_ranges,
    sharded_grouped_aggregate,
)
from repro.db.table import ColumnarTable, Table

SHARD_COUNTS = (1, 2, 7)

#: The batch used by the process-executor parity tests: every query family
#: (plain ATE, aggregate-unified response, threshold variants, peer effects).
QUERIES = {
    "ate": "Score[S] <= Prestige[A] ?",
    "agg": "AVG_Score[A] <= Prestige[A] ?",
    "thresh": "AVG_Score[A] <= Prestige[A] >= 1 ?",
    "peers": "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
}


def fresh_engine(**kwargs) -> CaRLEngine:
    return CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, **kwargs)


def result_key(answer):
    """Every numeric field of an answer that must match bit-for-bit."""
    result = answer.result
    if hasattr(result, "ate"):
        return (
            result.ate,
            result.naive_difference,
            result.treated_mean,
            result.control_mean,
            result.correlation,
            result.n_units,
            result.n_treated,
            result.n_control,
            result.confidence_interval,
        )
    return (
        result.aie,
        result.are,
        result.aoe,
        result.naive_difference,
        result.correlation,
        result.n_units,
        result.mean_peer_count,
    )


# ----------------------------------------------------------------------
# sharded grouped aggregates vs the scalar family
# ----------------------------------------------------------------------
@st.composite
def grouped_data(draw):
    """A flat value array with group assignments; NaNs included, some groups
    possibly empty, sizes down to zero rows and one row."""
    n_groups = draw(st.integers(min_value=1, max_value=5))
    values = draw(
        st.lists(
            st.one_of(
                st.floats(min_value=-1e12, max_value=1e12, allow_nan=False),
                st.just(math.nan),
            ),
            min_size=0,
            max_size=40,
        )
    )
    group_ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_groups - 1),
            min_size=len(values),
            max_size=len(values),
        )
    )
    return np.asarray(values, dtype=float), np.asarray(group_ids, dtype=np.intp), n_groups


def assert_matches_scalar(name, out, reference):
    """Bitwise equality, with NaN==NaN (payload bits aside)."""
    out = np.asarray(out, dtype=float)
    reference = np.asarray(reference, dtype=float)
    both_nan = np.isnan(out) & np.isnan(reference)
    assert np.array_equal(
        np.where(both_nan, 0.0, out), np.where(both_nan, 0.0, reference)
    ), f"{name}: sharded {out!r} != scalar {reference!r}"


@pytest.mark.parametrize("name", SHARDABLE_AGGREGATES)
@given(data=grouped_data())
def test_sharded_aggregate_matches_scalar_per_group(name, data):
    values, group_ids, n_groups = data
    try:
        reference = [
            AGGREGATES[name](values[group_ids == group].tolist())
            for group in range(n_groups)
        ]
    except AggregateError:
        # MIN/MAX of an empty group: every shard count must raise too.
        for shards in SHARD_COUNTS:
            with pytest.raises(AggregateError):
                sharded_grouped_aggregate(name, values, group_ids, n_groups, shards=shards)
        return
    outputs = []
    for shards in SHARD_COUNTS:
        out = np.asarray(
            sharded_grouped_aggregate(name, values, group_ids, n_groups, shards=shards),
            dtype=float,
        )
        assert_matches_scalar(name, out, reference)
        outputs.append(out.tobytes())
    # Across shard counts the result is bit-identical, NaN payloads included.
    assert len(set(outputs)) == 1, f"{name}: result depends on the shard count"


@pytest.mark.parametrize("name", SHARDABLE_AGGREGATES)
def test_sharded_aggregate_infinity_edges(name):
    """Signed infinities follow the scalar family's IEEE-fallback semantics."""
    values = np.asarray([math.inf, 1.0, -math.inf, 2.0, math.inf, -1.0])
    group_ids = np.asarray([0, 0, 0, 1, 1, 2])
    reference = [AGGREGATES[name](values[group_ids == g].tolist()) for g in range(3)]
    for shards in SHARD_COUNTS:
        out = sharded_grouped_aggregate(name, values, group_ids, 3, shards=shards)
        assert_matches_scalar(name, out, reference)


def test_sharded_aggregate_same_sign_overflow_matches_scalar():
    """A running sum that overflows the double range degrades to the scalar
    family's IEEE fallback (inf), never to a manufactured NaN, and stays
    shard-count independent."""
    values = np.asarray([1e308, 1e308, 1e308, -1.0])
    group_ids = np.zeros(4, dtype=np.intp)
    assert AGGREGATES["SUM"](values.tolist()) == math.inf
    for name in ("SUM", "AVG"):
        reference = AGGREGATES[name](values.tolist())
        for shards in (1, 2, 4):
            out = sharded_grouped_aggregate(name, values, group_ids, 1, shards=shards)
            assert float(out[0]) == reference, (name, shards, out)


def test_sharded_aggregate_single_row_and_empty():
    one = np.asarray([5.0])
    zero_groups = np.asarray([0])
    for shards in SHARD_COUNTS:
        assert sharded_grouped_aggregate("AVG", one, zero_groups, 1, shards=shards)[0] == 5.0
        assert sharded_grouped_aggregate("VAR", one, zero_groups, 1, shards=shards)[0] == 0.0
        # Groups beyond the data are empty: COUNT 0, AVG 0.0 (agg_avg on []).
        counts = sharded_grouped_aggregate("COUNT", one, zero_groups, 3, shards=shards)
        assert counts.tolist() == [1, 0, 0]
        means = sharded_grouped_aggregate("AVG", one, zero_groups, 3, shards=shards)
        assert means.tolist() == [5.0, 0.0, 0.0]
        empty = sharded_grouped_aggregate(
            "SUM", np.empty(0), np.empty(0, dtype=np.intp), 2, shards=shards
        )
        assert empty.tolist() == [0.0, 0.0]


def test_shard_ranges_cover_and_balance():
    with pytest.raises(AggregateError):
        shard_ranges(10, 0)
    for n_rows, shards in [(0, 3), (1, 7), (10, 3), (10, 1), (100, 7)]:
        ranges = shard_ranges(n_rows, shards)
        assert len(ranges) == shards
        assert ranges[0][0] == 0 and ranges[-1][1] == n_rows
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start  # contiguous, in order
        sizes = [stop - start for start, stop in ranges]
        assert max(sizes) - min(sizes) <= 1


def test_shard_partials_round_trip_through_artifact_store(tmp_path):
    """Partials are numeric npz payloads: storing and loading them through the
    artifact cache (the process boundary) must not change the merged result."""
    rng = np.random.default_rng(3)
    values = rng.normal(size=200) * 1e6
    group_ids = rng.integers(0, 6, size=200)
    cache = ArtifactCache(tmp_path)
    for name in ("SUM", "AVG", "MEDIAN", "MIN", "COUNT"):
        direct = sharded_grouped_aggregate(name, values, group_ids, 6, shards=3)
        parts = []
        for index, (start, stop) in enumerate(shard_ranges(len(values), 3)):
            partial = grouped_shard_partial(
                name, values[start:stop], group_ids[start:stop], 6
            )
            key = CacheKey(
                database="ab" * 32, program="cd" * 32, kind="unit_inputs",
                detail=f"{index:02x}" * 8,
            )
            cache.store(key, partial)
            parts.append(cache.load(key))
        merged = merge_grouped_shards(name, parts, 6)
        assert np.asarray(merged, dtype=float).tobytes() == np.asarray(
            direct, dtype=float
        ).tobytes()


# ----------------------------------------------------------------------
# sharded ColumnarTable.group_by vs the row backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SHARDABLE_AGGREGATES)
def test_sharded_group_by_matches_row_backend_bitwise(name):
    """With shards set, the columnar group-by adopts the scalar (fsum) family
    and therefore matches the row backend *bit for bit*, at any shard count."""
    rng = np.random.default_rng(11)
    rows = [
        {"k": int(i % 4), "v": float(v)}
        for i, v in enumerate(rng.normal(size=150) * 10.0 ** rng.integers(-3, 7, size=150).astype(float))
    ]
    row_table = Table.from_rows("t", rows)
    columnar = row_table.to_columnar()
    reference = row_table.group_by(["k"], {"out": ("v", name)}).to_list()
    for shards in SHARD_COUNTS:
        sharded = columnar.group_by(["k"], {"out": ("v", name)}, shards=shards).to_list()
        assert sharded == reference


def test_row_slice_shards_reassemble():
    rng = np.random.default_rng(5)
    table = ColumnarTable.from_columns(
        "t",
        {"a": rng.normal(size=23).tolist(), "b": [f"s{i}" for i in range(23)]},
        dtypes={"a": "float", "b": "str"},
    )
    pieces = [table.row_slice(start, stop) for start, stop in shard_ranges(len(table), 5)]
    reassembled = [row for piece in pieces for row in piece.to_list()]
    assert reassembled == table.to_list()
    assert len(table.row_slice(50, 99)) == 0  # clamped, not an error
    assert table.row_slice(-5, 4).to_list() == table.to_list()[:4]


# ----------------------------------------------------------------------
# sharded unit-table collection
# ----------------------------------------------------------------------
def collect_via_shards(engine, query, shards):
    n_units = None
    # Derive the full unit count exactly as the dispatcher does.
    parsed = query
    from repro.carl.parser import parse_query

    if isinstance(parsed, str):
        parsed = parse_query(parsed)
    with engine._state_lock:  # noqa: SLF001 - test reaches into the engine
        t_attr, t_subject = engine._validated_treatment(parsed)  # noqa: SLF001
        response = engine._resolve_response(parsed, t_subject)  # noqa: SLF001
        engine.graph
        engine._apply_pending_aggregates()  # noqa: SLF001
        _, units = engine._restricted_units(parsed, t_attr, response)  # noqa: SLF001
        n_units = len(units)
    parts = [
        engine.collect_shard_inputs(parsed, start, stop, expected_units=n_units)
        for start, stop in shard_ranges(n_units, shards)
    ]
    return merge_unit_table_inputs(parts)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("query", list(QUERIES.values()))
def test_sharded_collection_merges_to_serial(query, shards):
    engine = fresh_engine()
    serial = engine.unit_table(query)
    merged_inputs = collect_via_shards(engine, query, shards)
    from repro.carl.parser import parse_query

    parsed = parse_query(query)
    binarize = None
    if parsed.treatment_threshold is not None:
        threshold = parsed.treatment_threshold
        binarize = lambda value: 1.0 if threshold.evaluate(value) else 0.0  # noqa: E731
    merged = materialize_unit_table(merged_inputs, embedding="mean", binarize=binarize)
    assert merged.equals(serial)


def test_unit_inputs_payload_round_trip():
    engine = fresh_engine()
    inputs = engine.collect_shard_inputs("Score[S] <= Prestige[A] ?", 0, 10**9)
    loaded = load_unit_inputs(unit_inputs_payload(inputs))
    assert loaded.unit_keys == inputs.unit_keys
    assert loaded.outcomes_raw == inputs.outcomes_raw
    assert loaded.treatments_raw == inputs.treatments_raw
    assert loaded.peer_counts == inputs.peer_counts
    assert loaded.peer_values_raw == inputs.peer_values_raw
    assert loaded.peer_group_ids == inputs.peer_group_ids
    assert loaded.covariate_order == inputs.covariate_order
    assert loaded.buckets == inputs.buckets
    assert materialize_unit_table(loaded).equals(materialize_unit_table(inputs))


def test_merge_rejects_mismatched_collections():
    import dataclasses

    from repro.carl.errors import EstimationError

    engine = fresh_engine()
    a = engine.collect_shard_inputs("Score[S] <= Prestige[A] ?", 0, 5)
    b = dataclasses.replace(a, response_attribute="SomethingElse")
    with pytest.raises(EstimationError, match="disagree"):
        merge_unit_table_inputs([a, b])
    with pytest.raises(EstimationError):
        merge_unit_table_inputs([])


# ----------------------------------------------------------------------
# answer_all(executor="process")
# ----------------------------------------------------------------------
def test_process_executor_is_bit_identical_to_serial():
    serial = fresh_engine().answer_all(QUERIES, jobs=1)
    for shards in SHARD_COUNTS:
        answers = fresh_engine().answer_all(
            QUERIES, jobs=2, executor="process", shards=shards
        )
        assert set(answers) == set(QUERIES)
        for name in QUERIES:
            assert result_key(answers[name]) == result_key(serial[name]), (shards, name)
            assert (
                answers[name].unit_table_summary == serial[name].unit_table_summary
            ), (shards, name)


def test_process_executor_artifact_transport_is_bit_identical(monkeypatch):
    """Force the portable transport (workers rebuild the engine from the
    published memory-mapped artifacts instead of fork-inheriting it): the
    answers must be exactly the same either way."""
    serial = fresh_engine().answer_all(QUERIES, jobs=1)
    monkeypatch.setenv("REPRO_SHARD_NO_INHERIT", "1")
    answers = fresh_engine().answer_all(QUERIES, jobs=2, executor="process", shards=3)
    for name in QUERIES:
        assert result_key(answers[name]) == result_key(serial[name]), name
        assert answers[name].unit_table_summary == serial[name].unit_table_summary


def test_process_executor_honors_estimator_and_bootstrap():
    options = {"estimator": "ipw", "bootstrap": 25, "seed": 9}
    serial = fresh_engine().answer_all({"ate": QUERIES["ate"]}, jobs=1, **options)
    sharded = fresh_engine().answer_all(
        {"ate": QUERIES["ate"]}, jobs=2, executor="process", shards=2, **options
    )
    assert result_key(sharded["ate"]) == result_key(serial["ate"])
    assert sharded["ate"].result.estimator == "ipw"
    assert sharded["ate"].result.confidence_interval is not None


def test_process_executor_with_cache_warm_run(tmp_path):
    cold_engine = fresh_engine(cache=tmp_path / "cache")
    cold = cold_engine.answer_all(QUERIES, jobs=2, executor="process", shards=2)
    # Shard partials persist under deterministic (signature, range) keys so
    # later sweeps can reuse them; groundings and unit tables persist too
    # ("table" artifacts appear only on the no-fork transport, which
    # publishes them).  Nothing stays pinned once the batch is done.
    store = ArtifactCache(tmp_path / "cache")
    kinds = [entry.kind for entry in store.entries()]
    assert "unit_inputs" in kinds
    assert "grounding" in kinds and "unit_table" in kinds
    assert cold_engine.cache.pinned_paths() == set()
    assert not list((tmp_path / "cache").glob("*/*.pin.*"))
    # A fresh engine over the warm cache answers without grounding at all.
    warm_engine = fresh_engine(cache=tmp_path / "cache")
    warm = warm_engine.answer_all(QUERIES, jobs=2, executor="process", shards=2)
    assert warm_engine.grounding_runs == 0
    for name in QUERIES:
        assert result_key(warm[name]) == result_key(cold[name])


def test_process_executor_shard_level_cache_reuse(tmp_path):
    """With unit tables evicted but partials kept, a re-sweep performs zero
    shard collection: every collect task resolves from the cache."""
    cold_engine = fresh_engine(cache=tmp_path / "cache")
    cold = cold_engine.answer_all(QUERIES, jobs=2, executor="process", shards=2)
    store = ArtifactCache(tmp_path / "cache")
    partial_count = sum(1 for e in store.entries() if e.kind == "unit_inputs")
    assert partial_count > 0
    # Drop the finished unit tables; keep the shard partials.
    removed, _ = store.clear(kind="unit_table")
    assert removed > 0
    warm_engine = fresh_engine(cache=tmp_path / "cache")
    warm = warm_engine.answer_all(QUERIES, jobs=2, executor="process", shards=2)
    stats = warm_engine.cache_stats()
    # Every shard range of every query probed warm: no dispatcher-side probe
    # missed, and no new partial artifact appeared on disk (collect tasks
    # would have stored one each from their worker processes).
    assert stats["unit_inputs"]["misses"] == 0
    assert stats["unit_inputs"]["hits"] > 0
    after = sum(1 for e in ArtifactCache(tmp_path / "cache").entries() if e.kind == "unit_inputs")
    assert after == partial_count
    for name in QUERIES:
        assert result_key(warm[name]) == result_key(cold[name])


def test_threshold_sweep_shares_collections_within_one_batch(tmp_path):
    """Queries differing only in treatment threshold have one collection
    signature: a cold 3-query sweep collects each unit range once."""
    sweep = {
        "t1": "AVG_Score[A] <= Prestige[A] >= 1 ?",
        "t2": "AVG_Score[A] <= Prestige[A] >= 2 ?",
        "t3": "AVG_Score[A] <= Prestige[A] >= 3 ?",
    }
    engine = fresh_engine(cache=tmp_path / "cache")
    serial = {name: fresh_engine().answer(q) for name, q in sweep.items()}
    answers = engine.answer_all(sweep, jobs=2, executor="process", shards=2)
    partials = [
        e for e in ArtifactCache(tmp_path / "cache").entries() if e.kind == "unit_inputs"
    ]
    # 2 shard-partial artifacts total, not 2 per query: the sweep shares one
    # collection signature, so ranges are collected once and shared in flight.
    assert len(partials) == 2
    for name in sweep:
        # repr-compare: exact float round-trip, but NaN == NaN (the >=1
        # threshold treats every unit, so the naive contrast is NaN).
        assert repr(result_key(answers[name])) == repr(result_key(serial[name]))


def test_process_executor_worker_death_raises_cleanly(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKER_FAULT", "exit")
    with pytest.raises(QueryError):
        fresh_engine().answer_all(
            {"ate": QUERIES["ate"]}, jobs=2, executor="process", shards=2
        )


def test_process_executor_worker_exception_raises_cleanly(monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKER_FAULT", "raise")
    with pytest.raises(QueryError, match="shard worker"):
        fresh_engine().answer_all(
            {"ate": QUERIES["ate"]}, jobs=2, executor="process", shards=2
        )


def test_answer_all_option_validation():
    engine = fresh_engine()
    with pytest.raises(QueryError, match="executor"):
        engine.answer_all(QUERIES, executor="fiber")
    with pytest.raises(QueryError, match="shards"):
        engine.answer_all(QUERIES, jobs=2, shards=0, executor="process")
    with pytest.raises(QueryError, match="shards"):
        engine.answer_all(QUERIES, jobs=2, shards=2)  # thread executor
    with pytest.raises(QueryError, match="columnar"):
        engine.answer_all(QUERIES, jobs=2, executor="process", backend="rows")
    assert engine.answer_all({}, jobs=2, executor="process") == {}
    # An explicit shards=0 must never silently become `jobs` (the old
    # `shards or jobs` resolution): it is rejected with a clear error, at
    # any jobs setting — including the jobs=None (one per CPU) default.
    with pytest.raises(QueryError, match="shards must be a positive integer"):
        engine.answer_all(QUERIES, jobs=None, shards=0, executor="process")
    with pytest.raises(QueryError, match="shards must be a positive integer"):
        engine.answer_all(QUERIES, jobs=1, shards=-3, executor="process")
    with pytest.raises(QueryError, match="jobs must be a positive integer"):
        engine.answer_all(QUERIES, jobs=0)
    with pytest.raises(QueryError, match="jobs must be a positive integer"):
        engine.answer_all(QUERIES, jobs=-1, executor="process")


def test_process_executor_jobs_none_defaults_per_cpu(monkeypatch):
    """The executor='process' + jobs=None default path: one job per CPU and
    one shard per job, bit-identical to serial."""
    import os as os_module

    monkeypatch.setattr(os_module, "cpu_count", lambda: 2)
    serial = fresh_engine().answer_all({"ate": QUERIES["ate"]}, jobs=1)
    answers = fresh_engine().answer_all(
        {"ate": QUERIES["ate"]}, jobs=None, executor="process"
    )
    assert result_key(answers["ate"]) == result_key(serial["ate"])
