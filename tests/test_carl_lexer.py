"""Unit tests for the CaRL tokenizer (repro.carl.lexer)."""

from __future__ import annotations

import pytest

from repro.carl.errors import ParseError
from repro.carl.lexer import iter_statements, tokenize


def kinds(text: str) -> list[str]:
    return [token.kind for token in tokenize(text)]


def values(text: str) -> list[object]:
    return [token.value for token in tokenize(text)[:-1]]  # drop EOF


class TestTokenize:
    def test_identifiers_and_brackets(self):
        assert values("Score[S]") == ["Score", "[", "S", "]"]

    def test_keywords_are_case_insensitive(self):
        assert values("where Entity TREATED") == ["WHERE", "ENTITY", "TREATED"]

    def test_arrow_variants_normalize(self):
        assert values("A[X] <= B[Y]")[4] == "<="
        assert values("A[X] <- B[Y]")[4] == "<="
        assert values("A[X] ⇐ B[Y]")[4] == "<="

    def test_numbers(self):
        assert values("42 3.5 0.1") == [42, 3.5, 0.1]
        assert isinstance(values("42")[0], int)
        assert isinstance(values("3.5")[0], float)

    def test_strings_with_both_quote_styles(self):
        assert values('"single" \'double\'') == ["single", "double"]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize('"oops')

    def test_comments_are_skipped(self):
        assert values("A[X] // trailing comment\n# whole line\nB[Y]") == [
            "A",
            "[",
            "X",
            "]",
            "B",
            "[",
            "Y",
            "]",
        ]

    def test_positions_are_tracked(self):
        tokens = tokenize("A[X]\nB[Y]")
        b_token = [t for t in tokens if t.value == "B"][0]
        assert b_token.line == 2
        assert b_token.column == 1

    def test_unknown_character_raises_with_location(self):
        with pytest.raises(ParseError, match="line 1"):
            tokenize("A[X] @")

    def test_eof_token_terminates(self):
        assert kinds("A")[-1] == "EOF"


class TestStatementSplitting:
    def test_semicolons_split(self):
        statements = list(iter_statements(tokenize("A[X] <= B[X]; C[Y] <= D[Y];")))
        assert len(statements) == 2

    def test_newlines_split_complete_statements(self):
        text = "Prestige[A] <= Qualification[A] WHERE Person(A)\nScore[S] <= Quality[S] WHERE Submission(S)"
        statements = list(iter_statements(tokenize(text)))
        assert len(statements) == 2

    def test_incomplete_line_continues(self):
        text = "Quality[S] <= Qualification[A],\n  Prestige[A] WHERE Author(A, S)"
        statements = list(iter_statements(tokenize(text)))
        assert len(statements) == 1

    def test_empty_input(self):
        assert list(iter_statements(tokenize("   \n  // nothing\n"))) == []
