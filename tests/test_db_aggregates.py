"""Unit tests for aggregate functions (repro.db.aggregates)."""

from __future__ import annotations

import math

import pytest

from repro.db.aggregates import (
    AGGREGATES,
    AggregateError,
    agg_avg,
    agg_count,
    agg_median,
    agg_skew,
    agg_std,
    agg_var,
    aggregate,
)


class TestIndividualAggregates:
    def test_count(self):
        assert agg_count([1, 2, 3]) == 3
        assert agg_count([]) == 0

    def test_avg(self):
        assert agg_avg([1, 2, 3]) == 2.0
        assert agg_avg([]) == 0.0
        assert agg_avg([True, False]) == 0.5

    def test_sum_and_minmax(self):
        assert aggregate("SUM", [1.5, 2.5]) == 4.0
        assert aggregate("MIN", [3, 1, 2]) == 1
        assert aggregate("MAX", [3, 1, 2]) == 3

    def test_min_of_empty_is_error(self):
        with pytest.raises(AggregateError):
            aggregate("MIN", [])

    def test_median_odd_and_even(self):
        assert agg_median([3, 1, 2]) == 2
        assert agg_median([4, 1, 2, 3]) == 2.5
        assert agg_median([]) == 0.0

    def test_variance_and_std(self):
        assert agg_var([2, 2, 2]) == 0.0
        assert agg_var([5]) == 0.0
        assert agg_var([1, 3]) == 1.0
        assert agg_std([1, 3]) == 1.0

    def test_skewness(self):
        assert agg_skew([1, 2, 3]) == pytest.approx(0.0)
        assert agg_skew([1, 1, 10]) > 0
        assert agg_skew([5, 5, 5]) == 0.0
        assert agg_skew([1]) == 0.0

    def test_any_all(self):
        assert aggregate("ANY", [0, 0, 1]) is True
        assert aggregate("ALL", [1, 1, 0]) is False
        assert aggregate("ALL", []) is True

    def test_non_numeric_rejected(self):
        with pytest.raises(AggregateError):
            agg_avg(["a", "b"])


class TestRegistry:
    def test_lookup_is_case_insensitive(self):
        assert aggregate("avg", [2, 4]) == 3.0
        assert aggregate("Median", [1, 2, 3]) == 2

    def test_unknown_aggregate(self):
        with pytest.raises(AggregateError, match="unknown aggregate"):
            aggregate("PRODUCT", [1, 2])

    def test_registry_contains_paper_aggregates(self):
        # The paper explicitly mentions AVG and VAR (Section 3.2.4).
        assert "AVG" in AGGREGATES
        assert "VAR" in AGGREGATES
        assert "COUNT" in AGGREGATES

    def test_fsum_precision(self):
        values = [0.1] * 10
        assert aggregate("SUM", values) == pytest.approx(1.0, abs=1e-12)
        assert not math.isnan(aggregate("VAR", values))
