"""Concurrency tests for the artifact cache.

The batch executor (`CaRLEngine.answer_all(jobs>1)`) probes and populates one
`ArtifactCache` from several worker threads at once, so two properties are
load-bearing and hammered here:

1. `ArtifactStore.store`/`load` on the *same key* must stay atomic — a load
   observes one complete artifact version or a miss, never arrays stitched
   from two different stores (the single-open-handle guarantee in
   ``_read_npz``);
2. `CacheStats` counters must be exact under parallel recording — they are
   the evidence tests and benchmark gates use to prove "zero grounding work
   happened".
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cache.store import ArtifactCache, CacheKey
from repro.carl.engine import CaRLEngine
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database

KEY = CacheKey(database="ab" * 20, program="cd" * 20, kind="table")


def variant_payload(version: int) -> dict[str, np.ndarray]:
    """A payload whose members are mutually consistent only within a version."""
    return {
        "a": np.full(4096, version, dtype=np.int64),
        "b": np.full(4096, -version, dtype=np.int64),
    }


class TestConcurrentStoreLoad:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_same_key_hammer_never_tears(self, tmp_path, mmap):
        cache = ArtifactCache(tmp_path, mmap=mmap)
        cache.store(KEY, variant_payload(1))
        stop = threading.Event()
        errors: list[str] = []
        loads = 0

        def writer(seed: int) -> None:
            version = seed
            while not stop.is_set():
                cache.store(KEY, variant_payload(version))
                version += 7

        def reader() -> int:
            performed = 0
            while not stop.is_set():
                payload = cache.load(KEY)
                performed += 1
                if payload is None:
                    # A miss is acceptable (e.g. verification raced); a torn
                    # payload is not.
                    continue
                a = np.asarray(payload["a"])
                b = np.asarray(payload["b"])
                if not (a == a[0]).all() or not (b == -a[0]).all():
                    errors.append(
                        f"torn read: a={np.unique(a)!r} b={np.unique(b)!r}"
                    )
                    stop.set()
            return performed

        with ThreadPoolExecutor(max_workers=8) as pool:
            writers = [pool.submit(writer, seed) for seed in (2, 3, 5)]
            readers = [pool.submit(reader) for _ in range(4)]
            timer = threading.Timer(1.5, stop.set)
            timer.start()
            try:
                loads = sum(future.result() for future in readers)
                for future in writers:
                    future.result()
            finally:
                timer.cancel()
                stop.set()

        assert not errors, errors[0]
        assert loads > 0
        # Counter exactness: every load is accounted as exactly one hit or miss.
        stats = cache.stats
        assert stats.hit_count("table") + stats.miss_count("table") == loads

    def test_store_counter_exact_under_parallel_stores(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        per_thread = 25

        def spam(seed: int) -> None:
            for index in range(per_thread):
                cache.store(KEY, variant_payload(seed * 1000 + index))

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(spam, range(8)))
        assert cache.stats.store_count("table") == 8 * per_thread


class TestCacheStatsLocking:
    def test_record_is_atomic(self, tmp_path):
        stats = ArtifactCache(tmp_path).stats
        per_thread = 2000

        def spam() -> None:
            for _ in range(per_thread):
                stats.record(stats.hits, "unit_table")

        threads = [threading.Thread(target=spam) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.hit_count("unit_table") == 8 * per_thread
        assert stats.summary()["unit_table"]["hits"] == 8 * per_thread


class TestStatsUnderParallelAnswerAll:
    QUERIES = {
        "ate": "Score[S] <= Prestige[A] ?",
        "agg": "AVG_Score[A] <= Prestige[A] ?",
        "peers": "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
    }

    def test_counters_exact_cold_then_warm(self, tmp_path):
        cold = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=tmp_path)
        cold.answer_all(self.QUERIES, jobs=4)
        assert cold.cache_stats() == {
            "grounding": {"hits": 0, "misses": 1, "stores": 1},
            "unit_table": {"hits": 0, "misses": 3, "stores": 3},
        }
        assert cold.grounding_runs == 1

        warm = CaRLEngine(toy_review_database(), TOY_REVIEW_PROGRAM, cache=tmp_path)
        warm.answer_all(self.QUERIES, jobs=4)
        # Every query hit a cached unit table, so the batch never touched the
        # graph: the grounding cache shows no activity at all.
        assert warm.cache_stats() == {
            "unit_table": {"hits": 3, "misses": 0, "stores": 0},
        }
        assert warm.grounding_runs == 0
