"""Unit tests for the synthetic dataset generators (repro.datasets)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.carl.parser import parse_program, parse_query
from repro.carl.schema import RelationalCausalSchema
from repro.datasets import (
    generate_mimic_data,
    generate_nis_data,
    generate_review_data,
    generate_synthetic_review_data,
    toy_review_database,
)


class TestToyReview:
    def test_figure_2_contents(self):
        db = toy_review_database()
        assert set(db.table_names) == {"Person", "Submission", "Conference", "Author", "Submitted"}
        assert len(db.table("Person")) == 3
        assert len(db.table("Author")) == 5
        assert db.table("Person").get_by_key("Bob")["qualification"] == 50
        assert db.table("Conference").get_by_key("ConfDB")["blind"] == "single"


class TestSyntheticReview:
    def test_sizes_and_schema_binding(self, synthetic_review_small):
        data = synthetic_review_small
        db = data.database
        assert len(db.table("Author")) == data.n_authors
        assert len(db.table("Submission")) == data.n_submissions
        assert len(db.table("Writes")) == data.n_submissions
        schema = RelationalCausalSchema.from_program(parse_program(data.program))
        schema.bind(db)  # must not raise

    def test_ground_truth_fields(self, synthetic_review_small):
        gt = synthetic_review_small.ground_truth
        assert gt.isolated_single == 1.0
        assert gt.isolated_double == 0.0
        assert gt.overall_single == 1.5
        assert gt.overall_double == 0.5

    def test_queries_parse(self, synthetic_review_small):
        for text in synthetic_review_small.queries.values():
            parse_query(text)

    def test_confounding_is_present(self, synthetic_review_small):
        """Prestigious authors must be more qualified (the confounding channel)."""
        authors = synthetic_review_small.database.table("Author").to_list()
        prestigious = [a["qualification"] for a in authors if a["prestige"] == 1]
        ordinary = [a["qualification"] for a in authors if a["prestige"] == 0]
        assert np.mean(prestigious) > np.mean(ordinary) + 5

    def test_homophily_in_collaborations(self, synthetic_review_small):
        db = synthetic_review_small.database
        prestige = {row["author"]: row["prestige"] for row in db.table("Author")}
        same = 0
        total = 0
        for row in db.table("Collaborates"):
            total += 1
            same += int(prestige[row["author"]] == prestige[row["peer"]])
        assert same / total > 0.55

    def test_determinism(self):
        first = generate_synthetic_review_data(n_authors=50, seed=99)
        second = generate_synthetic_review_data(n_authors=50, seed=99)
        assert first.database.table("Submission").to_list() == second.database.table(
            "Submission"
        ).to_list()

    def test_no_relational_effect_variant(self):
        data = generate_synthetic_review_data(n_authors=80, relational_effect=0.0, seed=1)
        assert data.ground_truth.relational == 0.0
        assert data.ground_truth.overall_single == 1.0


class TestReviewData:
    def test_structure(self, review_small):
        db = review_small.database
        assert len(db.table("Person")) == review_small.n_authors
        assert len(db.table("Submission")) == review_small.n_submissions
        assert len(db.table("Conference")) == review_small.n_conferences
        # Multi-author papers exist.
        assert len(db.table("Author")) > review_small.n_submissions

    def test_scores_are_probabilities(self, review_small):
        scores = review_small.database.table("Submission").column("score")
        assert min(scores) >= 0.0 and max(scores) <= 1.0

    def test_both_blinding_policies_present(self, review_small):
        blinds = set(review_small.database.table("Conference").column("blind"))
        assert blinds == {"single", "double"}

    def test_program_binds(self, review_small):
        schema = RelationalCausalSchema.from_program(parse_program(review_small.program))
        schema.bind(review_small.database)


class TestMimic:
    def test_structure(self, mimic_small):
        db = mimic_small.database
        assert len(db.table("Patient")) == mimic_small.n_patients
        for table in ("Caregiver", "Drug", "Care", "Given", "Prescribes"):
            assert table in db

    def test_selfpay_groups_are_both_present(self, mimic_small):
        selfpay = mimic_small.database.table("Patient").column("selfpay")
        assert 0.05 < np.mean(selfpay) < 0.8

    def test_confounding_direction(self, mimic_small):
        """Self-payers present with higher acute severity but lower chronic load."""
        patients = mimic_small.database.table("Patient").to_list()
        severity_selfpay = np.mean([p["severity"] for p in patients if p["selfpay"] == 1])
        severity_insured = np.mean([p["severity"] for p in patients if p["selfpay"] == 0])
        chronic_selfpay = np.mean([p["chronic"] for p in patients if p["selfpay"] == 1])
        chronic_insured = np.mean([p["chronic"] for p in patients if p["selfpay"] == 0])
        assert severity_selfpay > severity_insured
        assert chronic_selfpay < chronic_insured

    def test_program_binds(self, mimic_small):
        schema = RelationalCausalSchema.from_program(parse_program(mimic_small.program))
        schema.bind(mimic_small.database)


class TestNis:
    def test_structure(self, nis_small):
        db = nis_small.database
        assert len(db.table("Admission")) == nis_small.n_admissions
        assert len(db.table("Hospital")) == nis_small.n_hospitals
        assert len(db.table("AdmittedTo")) == nis_small.n_admissions

    def test_selection_on_severity(self, nis_small):
        admissions = nis_small.database.table("Admission").to_list()
        severity_large = np.mean([a["severity"] for a in admissions if a["admitted_to_large"] == 1])
        severity_small = np.mean([a["severity"] for a in admissions if a["admitted_to_large"] == 0])
        assert severity_large > severity_small + 0.5

    def test_admitted_to_large_is_consistent_with_hospital(self, nis_small):
        db = nis_small.database
        hospital_size = {row["hosp"]: row["large"] for row in db.table("Hospital")}
        admissions = {row["adm"]: row["admitted_to_large"] for row in db.table("Admission")}
        for row in db.table("AdmittedTo").to_list()[:200]:
            assert admissions[row["adm"]] == hospital_size[row["hosp"]]

    def test_program_binds(self, nis_small):
        schema = RelationalCausalSchema.from_program(parse_program(nis_small.program))
        schema.bind(nis_small.database)
