"""Quickstart: the paper's running example (Figure 2 / Example 3.4) end to end.

Run with::

    python examples/quickstart.py

It builds the tiny REVIEWDATA instance of Figure 2, writes the relational
causal model of Example 3.4 in CaRL, grounds it into the relational causal
graph of Figure 4/5, prints the unit table of Table 1 and answers the three
kinds of causal queries CaRL supports.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CaRLEngine
from repro.datasets import TOY_REVIEW_PROGRAM, toy_review_database


def main() -> None:
    database = toy_review_database()
    print("Tables:", ", ".join(database.table_names))
    print("Rows per table:", {name: stats["rows"] for name, stats in database.summary().items()})

    # ------------------------------------------------------------------
    # 1. Parse the CaRL program (schema + rules) and ground it.
    # ------------------------------------------------------------------
    engine = CaRLEngine(database, TOY_REVIEW_PROGRAM)
    graph = engine.graph
    print(f"\nGrounded causal graph: {len(graph)} nodes, {graph.number_of_edges()} edges")
    print("Grounded attributes:", ", ".join(sorted(graph.attribute_names())))

    # ------------------------------------------------------------------
    # 2. The unit table (paper Table 1) for the effect of an author's
    #    prestige on their average review score.
    # ------------------------------------------------------------------
    unit_table = engine.unit_table("AVG_Score[A] <= Prestige[A] ?")
    print("\nUnit table (one row per author):")
    for row in unit_table.to_rows():
        print("  ", row)

    # ------------------------------------------------------------------
    # 3. Causal queries.
    # ------------------------------------------------------------------
    ate = engine.answer("AVG_Score[A] <= Prestige[A] ?").result
    print("\nATE of Prestige on AVG_Score:")
    print(f"  causal estimate  : {ate.ate:+.3f}")
    print(f"  naive difference : {ate.naive_difference:+.3f}")
    print(f"  correlation      : {ate.correlation:+.3f}")

    effects = engine.answer("Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED").result
    print("\nIsolated / relational / overall effects (all peers treated):")
    print(f"  AIE = {effects.aie:+.3f}   ARE = {effects.are:+.3f}   AOE = {effects.aoe:+.3f}")
    print(f"  decomposition gap |AOE - (AIE + ARE)| = {effects.decomposition_gap:.2e}")

    restricted = engine.answer(
        'Score[S] <= Prestige[A] ? WHERE Submitted(S, C), Blind[C] = "double"'
    ).result
    print("\nSame ATE restricted to double-blind venues:")
    print(f"  causal estimate  : {restricted.ate:+.3f}  (over {restricted.n_units} authors)")


if __name__ == "__main__":
    main()
