"""Are large hospitals less affordable than small ones?

Reproduces the NIS analysis of Section 6.2 (Table 3, row NIS 1) on the
synthetic stand-in.  Naively, patients at large hospitals are far more
likely to receive a high bill; causally, being admitted to a large hospital
*reduces* the probability of a high bill, because large hospitals receive
systematically sicker patients (illness severity confounds hospital choice
and billing) and benefit from economies of scale.

Run with::

    python examples/hospital_affordability.py [--admissions N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CaRLEngine
from repro.datasets import generate_nis_data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--admissions", type=int, default=6000)
    parser.add_argument("--seed", type=int, default=31)
    args = parser.parse_args()

    data = generate_nis_data(n_admissions=args.admissions, seed=args.seed)
    engine = CaRLEngine(data.database, data.program)
    print(
        f"Synthetic NIS-like database: {data.n_admissions} admissions across "
        f"{data.n_hospitals} hospitals"
    )

    result = engine.answer(data.queries["affordability"]).result
    print("\nNIS 1 — AVG_Bill[H] <= AdmittedToLarge[P] ?  (probability of a high bill)")
    print(f"  large-hospital admissions : {result.treated_mean * 100:6.1f}% high bills")
    print(f"  small-hospital admissions : {result.control_mean * 100:6.1f}% high bills")
    print(f"  naive difference          : {result.naive_difference * 100:+6.1f} points")
    print(f"  ATE (after adjustment)    : {result.ate * 100:+6.1f} points")
    print(f"  true simulated effect     : {data.true_bill_effect * 100:+6.1f} points")

    # Estimator robustness: the sign reversal should not depend on the estimator.
    print("\nEstimator robustness check:")
    for estimator in ("regression", "ipw", "aipw", "stratification"):
        ate = engine.answer(data.queries["affordability"], estimator=estimator).result.ate
        print(f"  {estimator:<15} ATE = {ate * 100:+6.1f} points")

    print(
        "\nReading: correlation says large hospitals are less affordable; the causal "
        "estimate — after adjusting for the severity-driven selection of patients into "
        "large hospitals — reverses the sign, in line with the economies-of-scale "
        "literature the paper cites."
    )


if __name__ == "__main__":
    main()
