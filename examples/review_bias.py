"""Does double-blind reviewing reduce institutional prestige bias?

Reproduces the REVIEWDATA analysis of Section 6.2 (Figure 7) on the synthetic
stand-in: the correlation between author prestige and review scores is large
at both single- and double-blind venues, but the *causal* effect of prestige
is only present at single-blind venues — exactly the kind of conclusion that
naive correlational analysis gets wrong.

Run with::

    python examples/review_bias.py [--authors N] [--submissions N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CaRLEngine
from repro.datasets import generate_review_data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--authors", type=int, default=1200, help="number of authors to generate")
    parser.add_argument("--submissions", type=int, default=700, help="number of submissions")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    data = generate_review_data(
        n_authors=args.authors, n_submissions=args.submissions, seed=args.seed
    )
    engine = CaRLEngine(data.database, data.program)
    print(
        f"REVIEWDATA stand-in: {data.n_authors} authors, {data.n_submissions} submissions, "
        f"{data.n_conferences} venues"
    )

    # ------------------------------------------------------------------
    # Figure 7(a): ATE and correlation per review policy.
    # ------------------------------------------------------------------
    print("\nEffect of author prestige on their average review score:")
    print(f"{'policy':<14}{'correlation':>12}{'naive diff':>12}{'ATE':>10}{'units':>8}")
    for policy in ("single", "double"):
        result = engine.answer(data.queries[f"ate_{policy}"]).result
        print(
            f"{policy + '-blind':<14}{result.correlation:>12.3f}{result.naive_difference:>12.3f}"
            f"{result.ate:>10.3f}{result.n_units:>8}"
        )

    # ------------------------------------------------------------------
    # Figure 7(b): isolated vs relational effects at single-blind venues.
    # ------------------------------------------------------------------
    effects = engine.answer(data.queries["peer_single"]).result
    print("\nSingle-blind venues, query (37) — MORE THAN 1/3 PEERS TREATED:")
    print(f"  isolated effect  (own prestige)            AIE = {effects.aie:+.4f}")
    print(f"  relational effect (collaborators' prestige) ARE = {effects.are:+.4f}")
    print(f"  overall effect                              AOE = {effects.aoe:+.4f}")
    print(f"  (AOE = AIE + ARE up to {effects.decomposition_gap:.1e})")

    print(
        "\nReading: double-blind reviewing removes (most of) the causal prestige advantage, "
        "even though prestige and scores remain correlated under both policies."
    )


if __name__ == "__main__":
    main()
