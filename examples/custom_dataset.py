"""Using CaRL on your own relational data, from scratch.

This example builds a small university domain (students, courses,
enrollments) directly through the public API — no prepared generator — and
walks through every step a user of the library would take:

1. create an in-memory relational database and fill it with rows;
2. declare the relational causal schema and background knowledge in CaRL;
3. ask an ATE query and a relational (peer) query;
4. compare embeddings and estimators;
5. export the data to CSV and load it back.

The domain: does attending office hours improve a student's grade, and do
their study-group partners' attendance spill over onto their grade?

Run with::

    python examples/custom_dataset.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CaRLEngine, Database

PROGRAM = """
ENTITY Student(student);
ENTITY Course(course);
RELATIONSHIP Enrolled(student, course);
RELATIONSHIP StudyGroup(student Student, partner Student);

ATTRIBUTE Motivation OF Student;
ATTRIBUTE OfficeHours OF Student COLUMN office_hours;
ATTRIBUTE Grade OF Student;
ATTRIBUTE Difficulty OF Course;

// Background knowledge: motivated students attend office hours and get
// better grades; grades also react to study partners' office-hours habits
// (shared notes, explanations) and to course difficulty.
OfficeHours[S] <= Motivation[S] WHERE Student(S);
Grade[S] <= Motivation[S] WHERE Student(S);
Grade[S] <= OfficeHours[S] WHERE Student(S);
Grade[S] <= OfficeHours[P] WHERE StudyGroup(S, P);
Grade[S] <= Difficulty[C] WHERE Enrolled(S, C);
"""

TRUE_OWN_EFFECT = 6.0
TRUE_PEER_EFFECT = 2.0


def build_database(n_students: int = 800, n_courses: int = 12, seed: int = 5) -> Database:
    """Simulate the university domain with known ground-truth effects."""
    rng = np.random.default_rng(seed)
    db = Database(name="university")

    motivation = rng.normal(50, 12, size=n_students)
    office_hours = (rng.random(n_students) < 1 / (1 + np.exp(-(motivation - 52) / 6))).astype(int)

    # Study groups of 2-4 students.
    partners: list[list[int]] = [[] for _ in range(n_students)]
    group_rows = []
    for student in range(n_students):
        for _ in range(int(rng.integers(1, 4))):
            partner = int(rng.integers(0, n_students))
            if partner != student and partner not in partners[student]:
                partners[student].append(partner)
                group_rows.append({"student": f"st{student}", "partner": f"st{partner}"})

    difficulty = rng.uniform(0, 10, size=n_courses)
    enrollment = rng.integers(0, n_courses, size=n_students)

    peer_rate = np.array(
        [np.mean(office_hours[p]) if p else 0.0 for p in partners]
    )
    grade = (
        40.0
        + 0.5 * motivation
        + TRUE_OWN_EFFECT * office_hours
        + TRUE_PEER_EFFECT * peer_rate
        - 1.5 * difficulty[enrollment]
        + rng.normal(0, 3, size=n_students)
    )

    db.create_table(
        "Student",
        {"student": "str", "motivation": "float", "office_hours": "int", "grade": "float"},
        primary_key=("student",),
    ).insert_many(
        {
            "student": f"st{i}",
            "motivation": float(motivation[i]),
            "office_hours": int(office_hours[i]),
            "grade": float(grade[i]),
        }
        for i in range(n_students)
    )
    db.create_table(
        "Course", {"course": "str", "difficulty": "float"}, primary_key=("course",)
    ).insert_many({"course": f"c{i}", "difficulty": float(difficulty[i])} for i in range(n_courses))
    db.create_table("Enrolled", {"student": "str", "course": "str"}).insert_many(
        {"student": f"st{i}", "course": f"c{enrollment[i]}"} for i in range(n_students)
    )
    db.create_table("StudyGroup", {"student": "str", "partner": "str"}).insert_many(group_rows)
    return db


def main() -> None:
    database = build_database()
    engine = CaRLEngine(database, PROGRAM)
    print(f"Database: {database.table_names}, {database.total_rows()} rows total")
    print(f"Grounded graph: {len(engine.graph)} nodes, {engine.graph.number_of_edges()} edges")

    # ------------------------------------------------------------------
    # ATE of office-hours attendance on the grade, with a threshold-free
    # binary treatment and motivation automatically detected as confounder.
    # ------------------------------------------------------------------
    ate = engine.answer("Grade[S] <= OfficeHours[S] ?").result
    print("\nGrade[S] <= OfficeHours[S] ?")
    print(f"  naive difference : {ate.naive_difference:+.2f} grade points")
    print(f"  ATE              : {ate.ate:+.2f} grade points "
          f"(true own + spillover = {TRUE_OWN_EFFECT + TRUE_PEER_EFFECT:+.1f})")

    # ------------------------------------------------------------------
    # Peer effects through the study group.
    # ------------------------------------------------------------------
    effects = engine.answer("Grade[S] <= OfficeHours[S] ? WHEN ALL PEERS TREATED").result
    print("\nGrade[S] <= OfficeHours[S] ? WHEN ALL PEERS TREATED")
    print(f"  isolated  (own attendance)       AIE = {effects.aie:+.2f}  (true {TRUE_OWN_EFFECT:+.1f})")
    print(f"  relational (partners' attendance) ARE = {effects.are:+.2f}  (true {TRUE_PEER_EFFECT:+.1f})")
    print(f"  overall                           AOE = {effects.aoe:+.2f}")

    # ------------------------------------------------------------------
    # Estimator and embedding comparison on the same query.
    # ------------------------------------------------------------------
    print("\nEstimator comparison (ATE):")
    for estimator in ("regression", "ipw", "aipw", "naive"):
        value = engine.answer("Grade[S] <= OfficeHours[S] ?", estimator=estimator).result.ate
        print(f"  {estimator:<12} {value:+.2f}")

    print("\nEmbedding comparison (AIE):")
    for embedding in ("mean", "median", "moments", "padding"):
        value = engine.answer(
            "Grade[S] <= OfficeHours[S] ? WHEN ALL PEERS TREATED", embedding=embedding
        ).result.aie
        print(f"  {embedding:<12} {value:+.2f}")

    # ------------------------------------------------------------------
    # CSV round trip.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as directory:
        paths = database.export_csv(directory)
        print(f"\nExported {len(paths)} CSV files to {directory}")
        restored = Database("restored")
        restored.import_csv("Student", Path(directory) / "Student.csv")
        print(f"Re-imported Student table with {len(restored.table('Student'))} rows")


if __name__ == "__main__":
    main()
