"""Does lacking health insurance increase ICU mortality and length of stay?

Reproduces the MIMIC-III analysis of Section 6.2 (Table 3, rows MIMIC 1 and
MIMIC 2) on the synthetic stand-in.  The naive comparison of self-paying vs
insured patients shows a large mortality gap and a large length-of-stay gap;
after relational covariate adjustment (the demographics that drive both
insurance status and admission severity), the mortality effect all but
disappears — care givers do not discriminate by insurance status — and the
length-of-stay effect is strongly attenuated.

Run with::

    python examples/healthcare_insurance.py [--patients N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import CaRLEngine
from repro.datasets import generate_mimic_data


def describe(name: str, result, unit: str, scale: float = 1.0) -> None:
    print(f"\n{name}")
    print(f"  treated (self-pay) mean : {result.treated_mean * scale:10.2f} {unit}")
    print(f"  control (insured) mean  : {result.control_mean * scale:10.2f} {unit}")
    print(f"  naive difference        : {result.naive_difference * scale:+10.2f} {unit}")
    print(f"  ATE (after adjustment)  : {result.ate * scale:+10.2f} {unit}")
    print(f"  units                   : {result.n_units}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=6000)
    parser.add_argument("--estimator", default="regression", help="regression | ipw | aipw | psm")
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    data = generate_mimic_data(n_patients=args.patients, seed=args.seed)
    engine = CaRLEngine(data.database, data.program)
    print(f"Synthetic MIMIC-III-like database: {data.n_patients} patients, "
          f"{len(data.database.table_names)} tables")

    death = engine.answer(data.queries["death"], estimator=args.estimator).result
    describe("MIMIC 1 — Death[P] <= SelfPay[P] ?", death, "probability points", scale=100.0)

    length = engine.answer(data.queries["length"], estimator=args.estimator).result
    describe("MIMIC 2 — Length[P] <= SelfPay[P] ?", length, "hours")

    print(
        "\nReading: the raw gaps are dominated by confounding — the demographic groups "
        "that tend to self-pay arrive sicker (raising naive mortality) and carry fewer "
        "chronic conditions (shortening naive stays).  Adjusting for the parents of the "
        "treatment (Theorem 5.2) removes most of both gaps."
    )
    print(f"\nTrue simulated effects: death {data.true_death_effect * 100:+.1f} points, "
          f"length {data.true_length_effect:+.1f} hours.")


if __name__ == "__main__":
    main()
