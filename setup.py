"""Setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
legacy editable installs (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) work on environments whose setuptools cannot
build editable wheels (offline machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
