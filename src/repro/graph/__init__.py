"""Directed-acyclic-graph substrate used by the CaRL engine.

The grounded relational causal graph of the paper (Section 3.2.3) is a DAG
over grounded attributes.  This package provides the generic graph machinery
the engine relies on: a :class:`DAG` container with ancestor/descendant
queries and topological ordering, :class:`CSRGraph` — the arrays-first
adjacency the grounded graph compiles its walks onto — and d-separation
(used by covariate detection, Theorem 5.2).
"""

from repro.graph.csr import CSRGraph
from repro.graph.dag import CycleError, DAG
from repro.graph.dseparation import d_separated, find_minimal_separator

__all__ = ["DAG", "CSRGraph", "CycleError", "d_separated", "find_minimal_separator"]
