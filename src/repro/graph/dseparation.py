"""d-separation on DAGs via the Bayes-ball reachability algorithm.

Covariate detection in CaRL (Theorem 5.2) requires checking conditional
independence statements of the form ``Y _||_ Pa(T) | (T, Z)`` in the grounded
causal graph.  d-separation is the graphical criterion for those statements.

The implementation follows the classic "Bayes ball" formulation: a node ``y``
is d-connected to ``x`` given ``Z`` iff there is a path from ``x`` to ``y``
on which every collider is in ``Z`` or has a descendant in ``Z`` and every
non-collider is outside ``Z``.  We explore (node, direction) states so the
traversal is linear in the number of edges.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable
from typing import Any

from repro.graph.dag import DAG


def _reachable(graph: DAG, sources: set[Hashable], given: set[Hashable]) -> set[Hashable]:
    """Nodes d-connected to any node in ``sources`` conditioned on ``given``."""
    # Ancestors of the conditioning set: a collider is "active" iff it or one
    # of its descendants is observed, i.e. iff the collider is an ancestor of
    # (or in) the conditioning set.
    conditioning_ancestors = graph.ancestors_of_set(given)

    # States are (node, direction) where direction 'up' means we arrived at
    # the node travelling against an edge (from a child), and 'down' means we
    # arrived travelling along an edge (from a parent).
    # Order-insensitive: the BFS returns a membership set, so the frontier's
    # seeding order cannot leak into any caller-visible ordering.
    frontier: deque[tuple[Hashable, str]] = deque((s, "up") for s in sources)  # repro-lint: disable=det-set-iter
    visited: set[tuple[Hashable, str]] = set()
    reachable: set[Hashable] = set()

    while frontier:
        node, direction = frontier.popleft()
        if (node, direction) in visited:
            continue
        visited.add((node, direction))

        if node not in given:
            reachable.add(node)

        if direction == "up" and node not in given:
            # Arrived from a child; can continue to parents (chain) and to
            # children (fork at this node).
            for parent in graph.parents(node):
                frontier.append((parent, "up"))
            for child in graph.children(node):
                frontier.append((child, "down"))
        elif direction == "down":
            if node not in given:
                # Chain: keep moving to children.
                for child in graph.children(node):
                    frontier.append((child, "down"))
            if node in conditioning_ancestors:
                # Collider (or ancestor of the conditioning set): the path
                # through this node's parents is active.
                for parent in graph.parents(node):
                    frontier.append((parent, "up"))
    return reachable


def d_separated(
    graph: DAG | Any,
    x: Iterable[Hashable] | Hashable,
    y: Iterable[Hashable] | Hashable,
    given: Iterable[Hashable] = (),
) -> bool:
    """Return True when ``x`` and ``y`` are d-separated by ``given`` in ``graph``.

    ``x`` and ``y`` may be single nodes or iterables of nodes; the statement
    holds when *every* node of ``x`` is d-separated from *every* node of
    ``y``.  Nodes in the conditioning set are excluded from both sides.

    ``graph`` is usually a :class:`DAG` (walked with the classic Bayes-ball
    traversal above); a graph exposing its own ``d_separated`` method — the
    CSR-backed :class:`~repro.carl.causal_graph.GroundedCausalGraph` — is
    delegated to, which keeps :func:`find_minimal_separator` generic over
    both representations.
    """
    own = getattr(graph, "d_separated", None)
    if own is not None:
        return own(x, y, given)
    x_set = _as_set(graph, x)
    y_set = _as_set(graph, y)
    given_set = _as_set(graph, given)
    x_set -= given_set
    y_set -= given_set
    if not x_set or not y_set:
        return True
    if x_set & y_set:
        return False
    reachable = _reachable(graph, x_set, given_set)
    return not (reachable & y_set)


def find_minimal_separator(
    graph: DAG | Any,
    x: Iterable[Hashable] | Hashable,
    y: Iterable[Hashable] | Hashable,
    candidate: Iterable[Hashable],
) -> list[Hashable] | None:
    """Greedily shrink ``candidate`` to a minimal set still d-separating x and y.

    Returns the reduced separator (order-stable with respect to ``candidate``)
    or None when ``candidate`` itself does not separate ``x`` from ``y``.
    The result is *minimal* (no single element can be dropped), not
    necessarily *minimum*.
    """
    candidate_list = list(dict.fromkeys(candidate))
    if not d_separated(graph, x, y, candidate_list):
        return None
    keep = list(candidate_list)
    for node in candidate_list:
        trial = [other for other in keep if other != node]
        if d_separated(graph, x, y, trial):
            keep = trial
    return keep


def _as_set(graph: DAG, nodes: Iterable[Hashable] | Hashable) -> set[Hashable]:
    # A single node may itself be iterable (e.g. a grounded attribute is a
    # NamedTuple); if the argument is a graph node, treat it as one node.
    if isinstance(nodes, Hashable):
        try:
            if nodes in graph:
                return {nodes}
        except TypeError:  # unhashable despite the isinstance check
            pass
    if isinstance(nodes, (str, bytes)) or not isinstance(nodes, Iterable):
        return set()
    return {node for node in nodes if node in graph}
