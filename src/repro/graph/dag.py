"""A small, dependency-free directed acyclic graph implementation.

The grounded causal graphs produced by CaRL can contain one node per grounded
attribute (one per author, per submission, per patient, ...), so the
implementation favours flat adjacency maps and iterative traversals over
anything recursive.

Adjacency is stored as dict-of-dicts rather than dict-of-sets: Python dicts
preserve insertion order, so every iteration (``edges``,
``topological_order``, traversals) is deterministic and independent of
``PYTHONHASHSEED``.  Set iteration order is hash-seed-dependent, which made
the old representation nondeterministic across processes.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator
from typing import Any


class CycleError(ValueError):
    """Raised when an operation requires acyclicity and the graph has a cycle."""


class DAG:
    """A directed graph with helpers for causal reasoning.

    Nodes may be any hashable object.  Edges are directed ``parent -> child``
    and self-loops are rejected.  Acyclicity is *not* enforced on every edge
    insertion (grounding adds edges in bulk); call :meth:`validate_acyclic`
    or :meth:`topological_order` to check.
    """

    def __init__(self) -> None:
        # Inner dicts are used as insertion-ordered sets (values are None).
        self._parents: dict[Hashable, dict[Hashable, None]] = {}
        self._children: dict[Hashable, dict[Hashable, None]] = {}
        self._node_data: dict[Hashable, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable, **data: Any) -> None:
        """Add ``node`` (idempotent); keyword arguments become node metadata."""
        if node not in self._parents:
            self._parents[node] = {}
            self._children[node] = {}
            self._node_data[node] = {}
        if data:
            self._node_data[node].update(data)

    def add_edge(self, parent: Hashable, child: Hashable) -> None:
        """Add the directed edge ``parent -> child``, creating missing nodes."""
        if parent == child:
            raise ValueError(f"self-loop not allowed: {parent!r}")
        self.add_node(parent)
        self.add_node(child)
        self._children[parent][child] = None
        self._parents[child][parent] = None

    def remove_edge(self, parent: Hashable, child: Hashable) -> None:
        """Remove the edge ``parent -> child`` if present."""
        children = self._children.get(parent)
        if children is not None:
            children.pop(child, None)
        parents = self._parents.get(child)
        if parents is not None:
            parents.pop(parent, None)

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._parents:
            return
        for parent in self._parents.pop(node):
            self._children[parent].pop(node, None)
        for child in self._children.pop(node):
            self._parents[child].pop(node, None)
        self._node_data.pop(node, None)

    def copy(self) -> "DAG":
        """Return a structural copy (node metadata is shallow-copied)."""
        clone = DAG()
        for node, data in self._node_data.items():
            clone.add_node(node, **data)
        for child, parents in self._parents.items():
            for parent in parents:
                clone.add_edge(parent, child)
        return clone

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Hashable) -> bool:
        return node in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parents)

    @property
    def nodes(self) -> list[Hashable]:
        """All nodes, in insertion order."""
        return list(self._parents)

    @property
    def edges(self) -> list[tuple[Hashable, Hashable]]:
        """All edges as ``(parent, child)`` pairs, in insertion order."""
        return [
            (parent, child)
            for parent, children in self._children.items()
            for child in children
        ]

    def number_of_edges(self) -> int:
        return sum(len(children) for children in self._children.values())

    def node_data(self, node: Hashable) -> dict[str, Any]:
        """Metadata dict attached to ``node``."""
        return self._node_data[node]

    def has_edge(self, parent: Hashable, child: Hashable) -> bool:
        children = self._children.get(parent)
        return children is not None and child in children

    def parents(self, node: Hashable) -> set[Hashable]:
        """Direct parents (empty set for unknown nodes)."""
        return set(self._parents.get(node, ()))

    def children(self, node: Hashable) -> set[Hashable]:
        """Direct children (empty set for unknown nodes)."""
        return set(self._children.get(node, ()))

    def roots(self) -> list[Hashable]:
        """Nodes with no parents."""
        return [node for node, parents in self._parents.items() if not parents]

    def leaves(self) -> list[Hashable]:
        """Nodes with no children."""
        return [node for node, children in self._children.items() if not children]

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def ancestors(self, node: Hashable) -> set[Hashable]:
        """All nodes with a directed path *to* ``node`` (excluding itself)."""
        return self._reach(node, self._parents)

    def descendants(self, node: Hashable) -> set[Hashable]:
        """All nodes with a directed path *from* ``node`` (excluding itself)."""
        return self._reach(node, self._children)

    def ancestors_of_set(self, nodes: Iterable[Hashable]) -> set[Hashable]:
        """Union of the ancestors of every node in ``nodes``, plus the nodes."""
        result: set[Hashable] = set()
        for node in nodes:
            if node in self:
                result.add(node)
                result |= self.ancestors(node)
        return result

    def has_directed_path(self, source: Hashable, target: Hashable) -> bool:
        """True when there is a directed path from ``source`` to ``target``."""
        if source not in self or target not in self:
            return False
        if source == target:
            return True
        return target in self.descendants(source)

    def _reach(
        self, node: Hashable, adjacency: dict[Hashable, dict[Hashable, None]]
    ) -> set[Hashable]:
        if node not in self._parents:
            return set()
        seen: set[Hashable] = set()
        frontier = deque(adjacency[node])
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(
                neighbour for neighbour in adjacency[current] if neighbour not in seen
            )
        return seen

    # ------------------------------------------------------------------
    # ordering / validation
    # ------------------------------------------------------------------
    def topological_order(self) -> list[Hashable]:
        """Kahn's algorithm; raises :class:`CycleError` on cyclic graphs."""
        in_degree = {node: len(parents) for node, parents in self._parents.items()}
        queue = deque(node for node, degree in in_degree.items() if degree == 0)
        order: list[Hashable] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for child in self._children[node]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._parents):
            raise CycleError("graph contains a directed cycle")
        return order

    def is_acyclic(self) -> bool:
        """True when the graph has no directed cycle."""
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def validate_acyclic(self) -> None:
        """Raise :class:`CycleError` when the graph has a directed cycle."""
        self.topological_order()

    # ------------------------------------------------------------------
    # causal-graph surgery
    # ------------------------------------------------------------------
    def do(self, nodes: Iterable[Hashable]) -> "DAG":
        """Return the mutilated graph of an intervention on ``nodes``.

        Following Pearl's do-operator, every edge *into* an intervened node
        is removed; the rest of the graph is unchanged.
        """
        mutilated = self.copy()
        for node in nodes:
            for parent in mutilated.parents(node):
                mutilated.remove_edge(parent, node)
        return mutilated

    def subgraph(self, nodes: Iterable[Hashable]) -> "DAG":
        """Induced subgraph on ``nodes``, preserving this graph's node order."""
        keep = {node for node in nodes if node in self}
        sub = DAG()
        for node in self._parents:
            if node in keep:
                sub.add_node(node, **self._node_data[node])
        for node in self._children:
            if node not in keep:
                continue
            for child in self._children[node]:
                if child in keep:
                    sub.add_edge(node, child)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DAG(nodes={len(self)}, edges={self.number_of_edges()})"
