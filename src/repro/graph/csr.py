"""Compressed-sparse-row adjacency for grounded causal graphs.

The grounded graph ``G(Phi_Delta)`` can hold hundreds of thousands of nodes,
and the dict-of-sets :class:`~repro.graph.dag.DAG` representation has two
costs at that scale: every walk pays a Python frame per visited node, and
every ``set`` iterates in ``PYTHONHASHSEED``-dependent order — which is how
hash-order nondeterminism leaked into adjacency iteration before this module
existed.

:class:`CSRGraph` stores both adjacency directions as classic CSR arrays
(``indptr``/``indices``), with neighbour lists sorted by node id.  Every
query is an array sweep: ancestor/descendant closures and Bayes-ball
d-separation run as boolean-mask frontier expansions, topological order is a
level-synchronous Kahn, and edge membership is a binary search.  Iteration
order is a pure function of node ids, so results are identical in every
process regardless of hash seed.

Instances are immutable; :meth:`from_edges` deduplicates and sorts, and
:class:`~repro.carl.causal_graph.GroundedCausalGraph` recompiles a fresh
snapshot after mutations.  The arrays may be memory-mapped straight out of a
cached grounding artifact (any integer dtype is accepted and never copied).
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.graph.dag import CycleError

_EMPTY = np.empty(0, dtype=np.int64)


def _gather(indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Concatenate the adjacency ranges of every node in ``frontier``.

    Vectorized multi-range gather: one ``np.repeat`` builds per-element
    offsets into ``indices`` instead of a Python loop over frontier nodes.
    """
    starts = indptr[frontier].astype(np.int64, copy=False)
    counts = indptr[frontier + 1].astype(np.int64, copy=False) - starts
    ends = np.cumsum(counts)
    total = int(ends[-1]) if ends.size else 0
    if total == 0:
        return _EMPTY
    offsets = np.repeat(starts - (ends - counts), counts)
    return indices[np.arange(total, dtype=np.int64) + offsets]


class CSRGraph:
    """Immutable dual-CSR adjacency over nodes ``0..n-1``.

    ``parent_indptr``/``parent_indices`` hold each node's parents (incoming
    edges, grouped by child); ``child_indptr``/``child_indices`` hold each
    node's children (outgoing edges, grouped by parent).  Neighbour lists are
    sorted ascending by node id.
    """

    __slots__ = ("n", "parent_indptr", "parent_indices", "child_indptr", "child_indices")

    def __init__(
        self,
        n: int,
        parent_indptr: np.ndarray,
        parent_indices: np.ndarray,
        child_indptr: np.ndarray,
        child_indices: np.ndarray,
    ) -> None:
        self.n = int(n)
        self.parent_indptr = parent_indptr
        self.parent_indices = parent_indices
        self.child_indptr = child_indptr
        self.child_indices = child_indices

    @classmethod
    def from_edges(cls, n: int, parents: np.ndarray, children: np.ndarray) -> "CSRGraph":
        """Build from (possibly duplicated) ``parent -> child`` id pairs.

        Edges are deduplicated; both CSR directions come out sorted by node
        id, so the result is independent of the input edge order.
        """
        parents = np.asarray(parents, dtype=np.int64)
        children = np.asarray(children, dtype=np.int64)
        if parents.size:
            # Encoding as child*n + parent sorts by (child, parent): exactly
            # the parent-CSR layout.  n < 2**31 in practice, so no overflow.
            codes = np.unique(children * np.int64(n) + parents)
            edge_children, edge_parents = np.divmod(codes, np.int64(n))
        else:
            edge_children = edge_parents = _EMPTY
        parent_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(edge_children, minlength=n), out=parent_indptr[1:])
        order = np.lexsort((edge_children, edge_parents))
        child_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(edge_parents, minlength=n), out=child_indptr[1:])
        return cls(n, parent_indptr, edge_parents, child_indptr, edge_children[order])

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        return int(self.parent_indices.size)

    def parents_of(self, index: int) -> np.ndarray:
        """Parent ids of ``index``, ascending."""
        return self.parent_indices[self.parent_indptr[index] : self.parent_indptr[index + 1]]

    def children_of(self, index: int) -> np.ndarray:
        """Child ids of ``index``, ascending."""
        return self.child_indices[self.child_indptr[index] : self.child_indptr[index + 1]]

    def has_edge(self, parent: int, child: int) -> bool:
        """Binary-search the (sorted) parent list of ``child``."""
        row = self.parents_of(child)
        position = int(np.searchsorted(row, parent))
        return position < row.size and int(row[position]) == parent

    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All edges as ``(parents, children)`` id arrays, in parent-CSR order."""
        counts = np.diff(self.parent_indptr)
        children = np.repeat(np.arange(self.n, dtype=np.int64), counts)
        return np.asarray(self.parent_indices, dtype=np.int64), children

    # ------------------------------------------------------------------
    # closures
    # ------------------------------------------------------------------
    def _sweep(
        self, indptr: np.ndarray, indices: np.ndarray, sources: Iterable[int], include: bool
    ) -> np.ndarray:
        mask = np.zeros(self.n, dtype=bool)
        frontier = np.unique(np.asarray(list(sources), dtype=np.int64))
        if include:
            mask[frontier] = True
        while frontier.size:
            frontier = np.unique(_gather(indptr, indices, frontier))
            frontier = frontier[~mask[frontier]]
            mask[frontier] = True
        return mask

    def ancestor_mask(self, sources: Iterable[int], include_sources: bool = False) -> np.ndarray:
        """Boolean mask over all nodes with a directed path *to* ``sources``."""
        return self._sweep(self.parent_indptr, self.parent_indices, sources, include_sources)

    def descendant_mask(self, sources: Iterable[int], include_sources: bool = False) -> np.ndarray:
        """Boolean mask over all nodes with a directed path *from* ``sources``."""
        return self._sweep(self.child_indptr, self.child_indices, sources, include_sources)

    def has_directed_path(self, source: int, target: int) -> bool:
        if source == target:
            return True
        return bool(self.ancestor_mask([target])[source])

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------
    def topological_order(self) -> np.ndarray:
        """Level-synchronous Kahn: each level is emitted in ascending id order,
        so the order is deterministic.  Raises :class:`CycleError` on cycles."""
        in_degree = np.diff(self.parent_indptr).astype(np.int64)
        frontier = np.flatnonzero(in_degree == 0)
        in_degree[frontier] = -1
        levels: list[np.ndarray] = []
        emitted = 0
        while frontier.size:
            levels.append(frontier)
            emitted += frontier.size
            children = _gather(self.child_indptr, self.child_indices, frontier)
            if not children.size:
                break
            np.subtract.at(in_degree, children, 1)
            ready = np.unique(children)
            ready = ready[in_degree[ready] == 0]
            in_degree[ready] = -1
            frontier = ready
        if emitted != self.n:
            raise CycleError("graph contains a directed cycle")
        return np.concatenate(levels) if levels else _EMPTY

    # ------------------------------------------------------------------
    # d-separation (Bayes ball)
    # ------------------------------------------------------------------
    def dconnected_mask(self, sources: Iterable[int], given: Iterable[int]) -> np.ndarray:
        """Nodes d-connected to any of ``sources`` conditioned on ``given``.

        Mask formulation of the classic Bayes-ball traversal
        (:mod:`repro.graph.dseparation`): states are (node, direction) pairs
        tracked as two boolean arrays, and each round expands every frontier
        state at once with vectorized gathers.
        """
        given_mask = np.zeros(self.n, dtype=bool)
        given_ids = np.asarray(list(given), dtype=np.int64)
        given_mask[given_ids] = True
        # A collider is active iff it is in the conditioning set or has a
        # descendant in it, i.e. iff it is an ancestor of (or in) the set.
        conditioning_ancestors = self.ancestor_mask(given_ids, include_sources=True)

        visited_up = np.zeros(self.n, dtype=bool)
        visited_down = np.zeros(self.n, dtype=bool)
        up = np.unique(np.asarray(list(sources), dtype=np.int64))
        visited_up[up] = True
        down = _EMPTY
        while up.size or down.size:
            # Travelling up through a non-conditioned node: continue to its
            # parents (chain) and children (fork).
            open_up = up[~given_mask[up]]
            # Travelling down: children stay reachable through non-conditioned
            # nodes (chain); parents become reachable through active colliders.
            pass_down = down[~given_mask[down]]
            bounce_down = down[conditioning_ancestors[down]]
            next_up = np.unique(
                np.concatenate(
                    (
                        _gather(self.parent_indptr, self.parent_indices, open_up),
                        _gather(self.parent_indptr, self.parent_indices, bounce_down),
                    )
                )
            )
            next_down = np.unique(
                np.concatenate(
                    (
                        _gather(self.child_indptr, self.child_indices, open_up),
                        _gather(self.child_indptr, self.child_indices, pass_down),
                    )
                )
            )
            up = next_up[~visited_up[next_up]]
            visited_up[up] = True
            down = next_down[~visited_down[next_down]]
            visited_down[down] = True
        return (visited_up | visited_down) & ~given_mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(nodes={self.n}, edges={self.n_edges})"
