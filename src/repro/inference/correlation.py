"""Naive (non-causal) quantities the paper contrasts causal estimates against."""

from __future__ import annotations

import math

import numpy as np


def pearson_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient; 0.0 when either variable is constant."""
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    if len(x) < 2:
        return 0.0
    x_std = float(x.std())
    y_std = float(y.std())
    if x_std == 0.0 or y_std == 0.0:
        return 0.0
    return float(((x - x.mean()) * (y - y.mean())).mean() / (x_std * y_std))


def point_biserial(treatment: np.ndarray, outcome: np.ndarray) -> float:
    """Point-biserial correlation between a binary treatment and an outcome.

    This is the Pearson correlation specialised to a binary regressor; the
    paper's Figure 7 reports "Pearson's correlation" between the score
    distributions of treated and untreated authors, which is this quantity.
    """
    return pearson_correlation(treatment, outcome)


def naive_difference(treatment: np.ndarray, outcome: np.ndarray) -> dict[str, float]:
    """Difference between the average outcomes of treated and control groups.

    Returns the treated mean, the control mean and their difference — the
    "Diff. of Averages" column of Table 3 in the paper.  Means are NaN when a
    group is empty.
    """
    treatment = np.asarray(treatment, dtype=float).ravel()
    outcome = np.asarray(outcome, dtype=float).ravel()
    treated_mask = treatment > 0.5
    control_mask = ~treated_mask
    treated_mean = float(outcome[treated_mask].mean()) if treated_mask.any() else math.nan
    control_mean = float(outcome[control_mask].mean()) if control_mask.any() else math.nan
    difference = treated_mean - control_mean
    return {
        "treated_mean": treated_mean,
        "control_mean": control_mean,
        "difference": difference,
    }
