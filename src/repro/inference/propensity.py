"""Propensity-score estimation: P(treated | covariates)."""

from __future__ import annotations

import numpy as np

from repro.inference.logistic import LogisticRegression


def estimate_propensity_scores(
    treatment: np.ndarray,
    covariates: np.ndarray,
    clip: float = 0.01,
    regularization: float = 1e-4,
) -> np.ndarray:
    """Estimate propensity scores with logistic regression.

    Scores are clipped away from 0 and 1 (``clip``) so that downstream
    inverse-propensity weights stay bounded.  When there are no covariates
    the marginal treatment probability is returned for every unit.
    """
    treatment = np.asarray(treatment, dtype=float).ravel()
    covariates = np.asarray(covariates, dtype=float)
    if covariates.ndim == 1:
        covariates = covariates.reshape(-1, 1)

    if covariates.size == 0 or covariates.shape[1] == 0:
        marginal = float(treatment.mean()) if len(treatment) else 0.5
        scores = np.full(len(treatment), marginal)
    else:
        standardized = _standardize(covariates)
        model = LogisticRegression(regularization=regularization)
        model.fit(standardized, treatment)
        scores = model.predict_proba(standardized)
    return np.clip(scores, clip, 1.0 - clip)


def _standardize(matrix: np.ndarray) -> np.ndarray:
    """Zero-mean / unit-variance columns (constant columns become zeros)."""
    means = matrix.mean(axis=0)
    stds = matrix.std(axis=0)
    stds[stds == 0.0] = 1.0
    return (matrix - means) / stds
