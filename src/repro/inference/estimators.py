"""Average-treatment-effect estimators on a flat (unit) table.

All estimators share the same signature: ``(outcome, treatment, covariates)``
arrays, returning an :class:`ATEEstimate`.  They correspond to the standard
techniques the paper points at once the unit table is built: regression
adjustment, matching, propensity-score matching, inverse propensity
weighting, stratification on the propensity score, and doubly-robust AIPW.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.inference.matching import coarsened_exact_matching, nearest_neighbor_match
from repro.inference.propensity import estimate_propensity_scores
from repro.inference.regression import LinearRegression


class EstimatorError(ValueError):
    """Raised when an effect cannot be estimated (e.g. a group is empty)."""


@dataclass
class ATEEstimate:
    """A point estimate of the average treatment effect plus diagnostics."""

    ate: float
    estimator: str
    n_units: int
    n_treated: int
    n_control: int
    details: dict[str, Any] = field(default_factory=dict)

    def __float__(self) -> float:
        return self.ate


def _prepare(
    outcome: np.ndarray, treatment: np.ndarray, covariates: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    outcome = np.asarray(outcome, dtype=float).ravel()
    treatment = np.asarray(treatment, dtype=float).ravel()
    if covariates is None:
        covariates = np.empty((len(outcome), 0))
    # ascontiguousarray is a no-op for the C-contiguous float64 matrices the
    # columnar unit-table backend hands over; anything else is normalized once
    # here so the BLAS-heavy estimators below never re-copy.
    covariates = np.ascontiguousarray(covariates, dtype=float)
    if covariates.ndim == 1:
        covariates = covariates.reshape(-1, 1)
    if len(outcome) != len(treatment) or len(outcome) != covariates.shape[0]:
        raise EstimatorError(
            "outcome, treatment and covariates must have the same number of rows"
        )
    if len(outcome) == 0:
        raise EstimatorError("cannot estimate an effect from zero units")
    treated = treatment > 0.5
    if not treated.any() or treated.all():
        raise EstimatorError(
            "both treated and control units are required "
            f"(treated={int(treated.sum())}, control={int((~treated).sum())})"
        )
    return outcome, treatment, covariates


def _counts(treatment: np.ndarray) -> tuple[int, int]:
    treated = treatment > 0.5
    return int(treated.sum()), int((~treated).sum())


# ----------------------------------------------------------------------
# estimators
# ----------------------------------------------------------------------
def outcome_model_ate(
    outcome: np.ndarray, treatment: np.ndarray, covariates: np.ndarray | None = None
) -> ATEEstimate:
    """Regression adjustment: fit ``y ~ [t | Z]`` and average the plug-in contrast."""
    outcome, treatment, covariates = _prepare(outcome, treatment, covariates)
    design = np.hstack([treatment.reshape(-1, 1), covariates])
    model = LinearRegression().fit(design, outcome)
    design_treated = design.copy()
    design_treated[:, 0] = 1.0
    design_control = design.copy()
    design_control[:, 0] = 0.0
    effect = float(np.mean(model.predict(design_treated) - model.predict(design_control)))
    n_treated, n_control = _counts(treatment)
    return ATEEstimate(
        ate=effect,
        estimator="regression",
        n_units=len(outcome),
        n_treated=n_treated,
        n_control=n_control,
        details={"r_squared": model.score(design, outcome)},
    )


def matching_ate(
    outcome: np.ndarray,
    treatment: np.ndarray,
    covariates: np.ndarray | None = None,
    metric: str = "euclidean",
) -> ATEEstimate:
    """Nearest-neighbour matching on covariates (ATT-style, symmetrized).

    The effect is the average of the treated-vs-matched-control contrast and
    the (negated) control-vs-matched-treated contrast, which estimates the
    ATE when treatment effect heterogeneity is mild.
    """
    outcome, treatment, covariates = _prepare(outcome, treatment, covariates)

    forward = nearest_neighbor_match(treatment, covariates, metric=metric)
    backward = nearest_neighbor_match(1.0 - treatment, covariates, metric=metric)
    contrasts: list[float] = []
    if len(forward):
        contrasts.append(
            float(np.mean(outcome[forward.treated_indices] - outcome[forward.control_indices]))
        )
    if len(backward):
        contrasts.append(
            float(np.mean(outcome[backward.control_indices] - outcome[backward.treated_indices]))
        )
    if not contrasts:
        raise EstimatorError("matching produced no matched pairs")
    n_treated, n_control = _counts(treatment)
    return ATEEstimate(
        ate=float(np.mean(contrasts)),
        estimator="matching",
        n_units=len(outcome),
        n_treated=n_treated,
        n_control=n_control,
        details={"n_pairs": len(forward) + len(backward), "metric": metric},
    )


def propensity_matching_ate(
    outcome: np.ndarray, treatment: np.ndarray, covariates: np.ndarray | None = None
) -> ATEEstimate:
    """Nearest-neighbour matching on the estimated propensity score."""
    outcome, treatment, covariates = _prepare(outcome, treatment, covariates)
    scores = estimate_propensity_scores(treatment, covariates)
    estimate = matching_ate(outcome, treatment, scores.reshape(-1, 1), metric="euclidean")
    estimate.estimator = "propensity_matching"
    estimate.details["propensity_range"] = (float(scores.min()), float(scores.max()))
    return estimate


def ipw_ate(
    outcome: np.ndarray, treatment: np.ndarray, covariates: np.ndarray | None = None
) -> ATEEstimate:
    """Inverse propensity weighting with stabilized (Hajek) weights."""
    outcome, treatment, covariates = _prepare(outcome, treatment, covariates)
    scores = estimate_propensity_scores(treatment, covariates)
    treated = treatment > 0.5
    weights_treated = 1.0 / scores[treated]
    weights_control = 1.0 / (1.0 - scores[~treated])
    treated_mean = float(np.sum(outcome[treated] * weights_treated) / np.sum(weights_treated))
    control_mean = float(np.sum(outcome[~treated] * weights_control) / np.sum(weights_control))
    n_treated, n_control = _counts(treatment)
    return ATEEstimate(
        ate=treated_mean - control_mean,
        estimator="ipw",
        n_units=len(outcome),
        n_treated=n_treated,
        n_control=n_control,
        details={"treated_mean": treated_mean, "control_mean": control_mean},
    )


def stratification_ate(
    outcome: np.ndarray,
    treatment: np.ndarray,
    covariates: np.ndarray | None = None,
    n_strata: int = 5,
) -> ATEEstimate:
    """Stratify on the propensity score and average within-stratum contrasts."""
    outcome, treatment, covariates = _prepare(outcome, treatment, covariates)
    scores = estimate_propensity_scores(treatment, covariates)
    quantiles = np.quantile(scores, np.linspace(0, 1, n_strata + 1)[1:-1])
    strata = np.digitize(scores, np.unique(quantiles))

    effects: list[float] = []
    weights: list[int] = []
    for stratum in np.unique(strata):
        mask = strata == stratum
        stratum_treatment = treatment[mask]
        if not (stratum_treatment > 0.5).any() or not (stratum_treatment <= 0.5).any():
            continue
        treated_mean = float(outcome[mask][stratum_treatment > 0.5].mean())
        control_mean = float(outcome[mask][stratum_treatment <= 0.5].mean())
        effects.append(treated_mean - control_mean)
        weights.append(int(mask.sum()))
    if not effects:
        raise EstimatorError("no stratum contains both treated and control units")
    effect = float(np.average(effects, weights=weights))
    n_treated, n_control = _counts(treatment)
    return ATEEstimate(
        ate=effect,
        estimator="stratification",
        n_units=len(outcome),
        n_treated=n_treated,
        n_control=n_control,
        details={"n_strata_used": len(effects)},
    )


def cem_ate(
    outcome: np.ndarray,
    treatment: np.ndarray,
    covariates: np.ndarray | None = None,
    bins: int = 5,
) -> ATEEstimate:
    """Coarsened exact matching: within-stratum contrasts weighted by stratum size."""
    outcome, treatment, covariates = _prepare(outcome, treatment, covariates)
    strata = coarsened_exact_matching(treatment, covariates, bins=bins)
    if not strata:
        raise EstimatorError("coarsened exact matching produced no usable strata")
    effects: list[float] = []
    weights: list[int] = []
    for members in strata.values():
        member_indices = np.asarray(members, dtype=int)
        member_treatment = treatment[member_indices]
        treated_mean = float(outcome[member_indices][member_treatment > 0.5].mean())
        control_mean = float(outcome[member_indices][member_treatment <= 0.5].mean())
        effects.append(treated_mean - control_mean)
        weights.append(len(members))
    effect = float(np.average(effects, weights=weights))
    n_treated, n_control = _counts(treatment)
    return ATEEstimate(
        ate=effect,
        estimator="cem",
        n_units=len(outcome),
        n_treated=n_treated,
        n_control=n_control,
        details={"n_strata": len(strata), "matched_units": int(sum(weights))},
    )


def doubly_robust_ate(
    outcome: np.ndarray, treatment: np.ndarray, covariates: np.ndarray | None = None
) -> ATEEstimate:
    """Augmented IPW (doubly robust): outcome regression + propensity correction."""
    outcome, treatment, covariates = _prepare(outcome, treatment, covariates)
    scores = estimate_propensity_scores(treatment, covariates)
    design = np.hstack([treatment.reshape(-1, 1), covariates])
    model = LinearRegression().fit(design, outcome)
    design_treated = design.copy()
    design_treated[:, 0] = 1.0
    design_control = design.copy()
    design_control[:, 0] = 0.0
    mu1 = model.predict(design_treated)
    mu0 = model.predict(design_control)
    treated = treatment
    augmented_1 = mu1 + treated * (outcome - mu1) / scores
    augmented_0 = mu0 + (1.0 - treated) * (outcome - mu0) / (1.0 - scores)
    effect = float(np.mean(augmented_1 - augmented_0))
    n_treated, n_control = _counts(treatment)
    return ATEEstimate(
        ate=effect,
        estimator="aipw",
        n_units=len(outcome),
        n_treated=n_treated,
        n_control=n_control,
        details={},
    )


def naive_ate(
    outcome: np.ndarray, treatment: np.ndarray, covariates: np.ndarray | None = None
) -> ATEEstimate:
    """Unadjusted difference of group means (the paper's naive baseline)."""
    outcome, treatment, _ = _prepare(outcome, treatment, covariates)
    treated = treatment > 0.5
    effect = float(outcome[treated].mean() - outcome[~treated].mean())
    n_treated, n_control = _counts(treatment)
    return ATEEstimate(
        ate=effect,
        estimator="naive",
        n_units=len(outcome),
        n_treated=n_treated,
        n_control=n_control,
        details={
            "treated_mean": float(outcome[treated].mean()),
            "control_mean": float(outcome[~treated].mean()),
        },
    )


#: Registry of ATE estimators by name.
ESTIMATORS: dict[str, Callable[..., ATEEstimate]] = {
    "regression": outcome_model_ate,
    "matching": matching_ate,
    "propensity_matching": propensity_matching_ate,
    "psm": propensity_matching_ate,
    "ipw": ipw_ate,
    "stratification": stratification_ate,
    "cem": cem_ate,
    "aipw": doubly_robust_ate,
    "doubly_robust": doubly_robust_ate,
    "naive": naive_ate,
}


def estimate_ate(
    outcome: np.ndarray,
    treatment: np.ndarray,
    covariates: np.ndarray | None = None,
    estimator: str = "regression",
    **kwargs: Any,
) -> ATEEstimate:
    """Dispatch to a registered estimator by name."""
    fn = ESTIMATORS.get(estimator.lower())
    if fn is None:
        raise EstimatorError(
            f"unknown estimator {estimator!r}; expected one of {sorted(ESTIMATORS)}"
        )
    return fn(outcome, treatment, covariates, **kwargs)


def estimate_ate_from_unit_table(
    unit_table: Any, estimator: str = "regression", **kwargs: Any
) -> ATEEstimate:
    """Estimate an ATE straight from a unit table's column arrays.

    The unit-table backends (``repro.carl.unit_table``) already hold the
    outcome, treatment and adjustment features as float64 arrays, so this
    entry point feeds them to the propensity/outcome models without any
    row-level materialization in between.
    """
    return estimate_ate(
        unit_table.outcome,
        unit_table.treatment,
        unit_table.adjustment_features(),
        estimator=estimator,
        **kwargs,
    )
