"""Diagnostics for causal analyses on a unit table.

The validity of CaRL's estimates rests on covariate adjustment, so the usual
observational-study diagnostics apply: covariate *balance* between treated
and control units (standardized mean differences, before and after
propensity weighting) and *overlap/positivity* of the propensity-score
distributions.  These helpers operate on plain arrays and are surfaced on
the engine via :meth:`repro.carl.engine.CaRLEngine.diagnostics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.inference.propensity import estimate_propensity_scores


@dataclass(frozen=True)
class CovariateBalance:
    """Balance of one covariate between treated and control groups."""

    name: str
    treated_mean: float
    control_mean: float
    smd_unadjusted: float
    smd_weighted: float

    @property
    def balanced(self) -> bool:
        """Conventional threshold: |SMD| < 0.1 after weighting."""
        return abs(self.smd_weighted) < 0.1


@dataclass
class BalanceReport:
    """Balance diagnostics for a full unit table."""

    covariates: list[CovariateBalance] = field(default_factory=list)
    propensity_treated: np.ndarray = field(default_factory=lambda: np.array([]))
    propensity_control: np.ndarray = field(default_factory=lambda: np.array([]))

    @property
    def worst_unadjusted_smd(self) -> float:
        if not self.covariates:
            return 0.0
        return max(abs(entry.smd_unadjusted) for entry in self.covariates)

    @property
    def worst_weighted_smd(self) -> float:
        if not self.covariates:
            return 0.0
        return max(abs(entry.smd_weighted) for entry in self.covariates)

    @property
    def all_balanced(self) -> bool:
        return all(entry.balanced for entry in self.covariates)

    def overlap(self) -> float:
        """A [0, 1] overlap score: 1 - distance between the propensity
        histograms of treated and control units (10 equal-width bins)."""
        if self.propensity_treated.size == 0 or self.propensity_control.size == 0:
            return 0.0
        bins = np.linspace(0.0, 1.0, 11)
        treated_hist, _ = np.histogram(self.propensity_treated, bins=bins, density=False)
        control_hist, _ = np.histogram(self.propensity_control, bins=bins, density=False)
        treated_frac = treated_hist / max(treated_hist.sum(), 1)
        control_frac = control_hist / max(control_hist.sum(), 1)
        return float(1.0 - 0.5 * np.abs(treated_frac - control_frac).sum())

    def to_rows(self) -> list[dict[str, object]]:
        """Rows suitable for tabular display."""
        return [
            {
                "covariate": entry.name,
                "treated_mean": entry.treated_mean,
                "control_mean": entry.control_mean,
                "smd_unadjusted": entry.smd_unadjusted,
                "smd_weighted": entry.smd_weighted,
                "balanced": entry.balanced,
            }
            for entry in self.covariates
        ]


def standardized_mean_difference(
    values: np.ndarray, treatment: np.ndarray, weights: np.ndarray | None = None
) -> float:
    """Standardized mean difference of one covariate between groups.

    The denominator is the pooled (unweighted) standard deviation, the
    convention used in the matching literature; ``weights`` (if given) are
    applied to the group means only.
    """
    values = np.asarray(values, dtype=float).ravel()
    treatment = np.asarray(treatment, dtype=float).ravel()
    treated = treatment > 0.5
    if not treated.any() or treated.all():
        return 0.0
    if weights is None:
        weights = np.ones_like(values)
    weights = np.asarray(weights, dtype=float).ravel()

    treated_mean = float(np.average(values[treated], weights=weights[treated]))
    control_mean = float(np.average(values[~treated], weights=weights[~treated]))
    pooled_variance = (float(values[treated].var()) + float(values[~treated].var())) / 2.0
    pooled_std = float(np.sqrt(pooled_variance))
    if pooled_std == 0.0:
        return 0.0
    return (treated_mean - control_mean) / pooled_std


def covariate_balance(
    treatment: np.ndarray,
    covariates: np.ndarray,
    covariate_names: Sequence[str] | None = None,
) -> BalanceReport:
    """Compute balance before and after inverse-propensity weighting.

    Returns a :class:`BalanceReport` with one entry per covariate column and
    the propensity-score distributions per group (for overlap checks).
    """
    treatment = np.asarray(treatment, dtype=float).ravel()
    covariates = np.asarray(covariates, dtype=float)
    if covariates.ndim == 1:
        covariates = covariates.reshape(-1, 1)
    n_columns = covariates.shape[1] if covariates.size else 0
    if covariate_names is None:
        covariate_names = [f"x{i}" for i in range(n_columns)]
    if len(covariate_names) != n_columns:
        raise ValueError(
            f"{n_columns} covariate columns but {len(covariate_names)} names were given"
        )

    treated = treatment > 0.5
    report = BalanceReport()
    if n_columns == 0 or not treated.any() or treated.all():
        return report

    scores = estimate_propensity_scores(treatment, covariates)
    weights = np.where(treated, 1.0 / scores, 1.0 / (1.0 - scores))
    report.propensity_treated = scores[treated]
    report.propensity_control = scores[~treated]

    for column, name in enumerate(covariate_names):
        values = covariates[:, column]
        report.covariates.append(
            CovariateBalance(
                name=name,
                treated_mean=float(values[treated].mean()),
                control_mean=float(values[~treated].mean()),
                smd_unadjusted=standardized_mean_difference(values, treatment),
                smd_weighted=standardized_mean_difference(values, treatment, weights),
            )
        )
    return report
