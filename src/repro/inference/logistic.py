"""Binary logistic regression fitted by iteratively reweighted least squares."""

from __future__ import annotations

import numpy as np

from repro.inference.regression import RegressionError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to avoid overflow in exp for extreme linear predictors.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression:
    """L2-regularized binary logistic regression (Newton / IRLS).

    A small ridge penalty keeps the Hessian invertible under separation,
    which occurs easily in small unit tables with near-deterministic
    treatment assignment.
    """

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-8,
        regularization: float = 1e-6,
        fit_intercept: bool = True,
    ) -> None:
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.regularization = regularization
        self.fit_intercept = fit_intercept
        self.coefficients: np.ndarray | None = None
        self.intercept: float = 0.0
        self.converged: bool = False
        self.n_iterations: int = 0

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels, dtype=float).ravel()
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.shape[0] != labels.shape[0]:
            raise RegressionError(
                f"features have {features.shape[0]} rows but labels have {labels.shape[0]}"
            )
        if features.shape[0] == 0:
            raise RegressionError("cannot fit a logistic regression on zero rows")
        if not set(np.unique(labels)).issubset({0.0, 1.0}):
            raise RegressionError("labels must be binary (0/1)")

        design = self._design(features)
        n_features = design.shape[1]
        beta = np.zeros(n_features)
        penalty = self.regularization * np.eye(n_features)
        if self.fit_intercept:
            penalty[0, 0] = 0.0

        self.converged = False
        for iteration in range(1, self.max_iterations + 1):
            linear = design @ beta
            probabilities = _sigmoid(linear)
            weights = np.clip(probabilities * (1.0 - probabilities), 1e-10, None)
            gradient = design.T @ (labels - probabilities) - penalty @ beta
            hessian = (design * weights[:, None]).T @ design + penalty
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, gradient, rcond=None)[0]
            beta = beta + step
            self.n_iterations = iteration
            if float(np.max(np.abs(step))) < self.tolerance:
                self.converged = True
                break

        if self.fit_intercept:
            self.intercept = float(beta[0])
            self.coefficients = beta[1:]
        else:
            self.intercept = 0.0
            self.coefficients = beta
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1 | features)."""
        if self.coefficients is None:
            raise RegressionError("model is not fitted")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.shape[1] != len(self.coefficients):
            raise RegressionError(
                f"expected {len(self.coefficients)} features, got {features.shape[1]}"
            )
        return _sigmoid(features @ self.coefficients + self.intercept)

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(float)

    def log_likelihood(self, features: np.ndarray, labels: np.ndarray) -> float:
        probabilities = np.clip(self.predict_proba(features), 1e-12, 1.0 - 1e-12)
        labels = np.asarray(labels, dtype=float).ravel()
        return float(np.sum(labels * np.log(probabilities) + (1 - labels) * np.log(1 - probabilities)))

    def _design(self, features: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.hstack([np.ones((features.shape[0], 1)), features])
        return features
