"""Single-table causal inference estimators, implemented from scratch.

Once CaRL has reduced a relational causal query to a flat unit table
(Section 5.2 of the paper), "standard approaches to causal analysis like
regression or matching methods" are applied.  This package provides those
standard approaches on top of numpy: ordinary least squares and ridge
regression, logistic regression (for propensity scores), nearest-neighbour
and propensity-score matching, coarsened exact matching, inverse propensity
weighting, stratification, doubly-robust estimation, bootstrap confidence
intervals, and the naive correlational quantities the paper contrasts
against (difference of averages, Pearson correlation).
"""

from repro.inference.bootstrap import bootstrap_statistic
from repro.inference.correlation import naive_difference, pearson_correlation, point_biserial
from repro.inference.estimators import (
    ATEEstimate,
    ESTIMATORS,
    estimate_ate,
    ipw_ate,
    matching_ate,
    outcome_model_ate,
    propensity_matching_ate,
    stratification_ate,
    doubly_robust_ate,
)
from repro.inference.logistic import LogisticRegression
from repro.inference.matching import (
    coarsened_exact_matching,
    nearest_neighbor_match,
)
from repro.inference.outcome import OutcomeModel
from repro.inference.propensity import estimate_propensity_scores
from repro.inference.regression import LinearRegression, RidgeRegression

__all__ = [
    "ATEEstimate",
    "ESTIMATORS",
    "LinearRegression",
    "LogisticRegression",
    "OutcomeModel",
    "RidgeRegression",
    "bootstrap_statistic",
    "coarsened_exact_matching",
    "doubly_robust_ate",
    "estimate_ate",
    "estimate_propensity_scores",
    "ipw_ate",
    "matching_ate",
    "naive_difference",
    "nearest_neighbor_match",
    "outcome_model_ate",
    "pearson_correlation",
    "point_biserial",
    "propensity_matching_ate",
    "stratification_ate",
]
