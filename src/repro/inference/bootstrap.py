"""Nonparametric bootstrap for effect estimates and arbitrary statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate, standard error and percentile confidence interval."""

    estimate: float
    standard_error: float
    lower: float
    upper: float
    samples: np.ndarray

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.estimate, self.lower, self.upper)


def bootstrap_statistic(
    statistic: Callable[..., float],
    arrays: Sequence[np.ndarray],
    n_bootstrap: int = 200,
    confidence: float = 0.95,
    seed: int | None = 0,
) -> BootstrapResult:
    """Bootstrap a statistic computed from row-aligned arrays.

    ``statistic`` receives the resampled arrays (same order as ``arrays``)
    and must return a float.  Resampling is with replacement over rows;
    bootstrap replicates that raise ``ValueError`` (e.g. a resample without
    any treated unit) are skipped, which slightly biases the interval but
    keeps small-sample usage robust.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    arrays = [np.asarray(array) for array in arrays]
    n_rows = len(arrays[0])
    for array in arrays:
        if len(array) != n_rows:
            raise ValueError("all arrays must have the same number of rows")
    if n_rows == 0:
        raise ValueError("cannot bootstrap zero rows")

    rng = np.random.default_rng(seed)
    point = float(statistic(*arrays))

    samples: list[float] = []
    attempts = 0
    max_attempts = n_bootstrap * 5
    while len(samples) < n_bootstrap and attempts < max_attempts:
        attempts += 1
        indices = rng.integers(0, n_rows, size=n_rows)
        resampled = [array[indices] for array in arrays]
        try:
            samples.append(float(statistic(*resampled)))
        except ValueError:
            continue

    if not samples:
        return BootstrapResult(point, float("nan"), float("nan"), float("nan"), np.array([]))

    sample_array = np.asarray(samples, dtype=float)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=point,
        standard_error=float(sample_array.std(ddof=1)) if len(sample_array) > 1 else 0.0,
        lower=float(np.quantile(sample_array, alpha)),
        upper=float(np.quantile(sample_array, 1.0 - alpha)),
        samples=sample_array,
    )
