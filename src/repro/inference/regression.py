"""Linear regression (OLS and ridge) on numpy arrays."""

from __future__ import annotations

import numpy as np


class RegressionError(ValueError):
    """Raised when a regression cannot be fit (shape mismatch, empty data, ...)."""


class LinearRegression:
    """Ordinary least squares with an optional intercept.

    Coefficients are computed with :func:`numpy.linalg.lstsq`, which handles
    rank-deficient designs gracefully (minimum-norm solution) — important
    because unit tables can contain collinear embedded covariates.
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coefficients: np.ndarray | None = None
        self.intercept: float = 0.0
        self._residual_variance: float | None = None

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, target: np.ndarray) -> "LinearRegression":
        features, target = _validate(features, target)
        design = self._design(features)
        solution, _, _, _ = np.linalg.lstsq(design, target, rcond=None)
        if self.fit_intercept:
            self.intercept = float(solution[0])
            self.coefficients = solution[1:]
        else:
            self.intercept = 0.0
            self.coefficients = solution
        residuals = target - design @ solution
        dof = max(len(target) - design.shape[1], 1)
        self._residual_variance = float(residuals @ residuals) / dof
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coefficients is None:
            raise RegressionError("model is not fitted")
        features = np.asarray(features, dtype=float)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        if features.shape[1] != len(self.coefficients):
            raise RegressionError(
                f"expected {len(self.coefficients)} features, got {features.shape[1]}"
            )
        return features @ self.coefficients + self.intercept

    def score(self, features: np.ndarray, target: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        target = np.asarray(target, dtype=float)
        predictions = self.predict(features)
        total = float(((target - target.mean()) ** 2).sum())
        if total == 0.0:
            return 1.0
        residual = float(((target - predictions) ** 2).sum())
        return 1.0 - residual / total

    @property
    def residual_variance(self) -> float:
        if self._residual_variance is None:
            raise RegressionError("model is not fitted")
        return self._residual_variance

    def _design(self, features: np.ndarray) -> np.ndarray:
        if self.fit_intercept:
            return np.hstack([np.ones((features.shape[0], 1)), features])
        return features


class RidgeRegression(LinearRegression):
    """L2-regularized linear regression (the intercept is not penalized)."""

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        super().__init__(fit_intercept=fit_intercept)
        if alpha < 0:
            raise RegressionError("ridge penalty must be non-negative")
        self.alpha = float(alpha)

    def fit(self, features: np.ndarray, target: np.ndarray) -> "RidgeRegression":
        features, target = _validate(features, target)
        design = self._design(features)
        penalty = self.alpha * np.eye(design.shape[1])
        if self.fit_intercept:
            penalty[0, 0] = 0.0
        gram = design.T @ design + penalty
        solution = np.linalg.solve(gram, design.T @ target)
        if self.fit_intercept:
            self.intercept = float(solution[0])
            self.coefficients = solution[1:]
        else:
            self.intercept = 0.0
            self.coefficients = solution
        residuals = target - design @ solution
        dof = max(len(target) - design.shape[1], 1)
        self._residual_variance = float(residuals @ residuals) / dof
        return self


def _validate(features: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    features = np.asarray(features, dtype=float)
    target = np.asarray(target, dtype=float).ravel()
    if features.ndim == 1:
        features = features.reshape(-1, 1)
    if features.ndim != 2:
        raise RegressionError(f"features must be a 2-D array, got shape {features.shape}")
    if features.shape[0] != target.shape[0]:
        raise RegressionError(
            f"features have {features.shape[0]} rows but target has {target.shape[0]}"
        )
    if features.shape[0] == 0:
        raise RegressionError("cannot fit a regression on zero rows")
    if not np.all(np.isfinite(features)) or not np.all(np.isfinite(target)):
        raise RegressionError("features and target must be finite")
    return features, target
