"""Matching methods: nearest-neighbour matching and coarsened exact matching.

These are the "matching methods" the paper cites (Gu & Rosenbaum 1993,
Ho et al. 2007, Iacus et al. 2009) for estimating treatment effects from the
unit table.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MatchResult:
    """Pairs of (treated index, matched control index) plus per-pair distances."""

    treated_indices: np.ndarray
    control_indices: np.ndarray
    distances: np.ndarray

    def __len__(self) -> int:
        return len(self.treated_indices)


def nearest_neighbor_match(
    treatment: np.ndarray,
    covariates: np.ndarray,
    metric: str = "euclidean",
    with_replacement: bool = True,
) -> MatchResult:
    """Match every treated unit to its nearest control unit in covariate space.

    ``metric`` is ``"euclidean"`` (on standardized covariates) or
    ``"mahalanobis"``.  Without replacement, controls are consumed greedily in
    order of match quality.
    """
    treatment = np.asarray(treatment, dtype=float).ravel()
    covariates = np.asarray(covariates, dtype=float)
    if covariates.ndim == 1:
        covariates = covariates.reshape(-1, 1)

    treated = np.flatnonzero(treatment > 0.5)
    control = np.flatnonzero(treatment <= 0.5)
    if len(treated) == 0 or len(control) == 0:
        return MatchResult(np.array([], dtype=int), np.array([], dtype=int), np.array([]))

    if covariates.shape[1] == 0:
        # No covariates: every control is equally good; match to the first.
        control_choice = np.full(len(treated), control[0])
        return MatchResult(treated, control_choice, np.zeros(len(treated)))

    transformed = _transform(covariates, metric)
    treated_points = transformed[treated]
    control_points = transformed[control]

    # Pairwise squared distances (treated x control).
    differences = treated_points[:, None, :] - control_points[None, :, :]
    distances = np.sqrt((differences ** 2).sum(axis=2))

    if with_replacement:
        best = distances.argmin(axis=1)
        return MatchResult(treated, control[best], distances[np.arange(len(treated)), best])

    # Greedy matching without replacement, best pairs first.
    order = np.dstack(np.unravel_index(np.argsort(distances, axis=None), distances.shape))[0]
    used_treated: set[int] = set()
    used_control: set[int] = set()
    pairs: list[tuple[int, int, float]] = []
    for treated_position, control_position in order:
        if treated_position in used_treated or control_position in used_control:
            continue
        used_treated.add(int(treated_position))
        used_control.add(int(control_position))
        pairs.append(
            (
                int(treated[treated_position]),
                int(control[control_position]),
                float(distances[treated_position, control_position]),
            )
        )
        if len(used_treated) == len(treated) or len(used_control) == len(control):
            break
    if not pairs:
        return MatchResult(np.array([], dtype=int), np.array([], dtype=int), np.array([]))
    treated_idx, control_idx, pair_distances = zip(*pairs)
    return MatchResult(
        np.asarray(treated_idx, dtype=int),
        np.asarray(control_idx, dtype=int),
        np.asarray(pair_distances, dtype=float),
    )


def _transform(covariates: np.ndarray, metric: str) -> np.ndarray:
    if metric == "euclidean":
        means = covariates.mean(axis=0)
        stds = covariates.std(axis=0)
        stds[stds == 0.0] = 1.0
        return (covariates - means) / stds
    if metric == "mahalanobis":
        centered = covariates - covariates.mean(axis=0)
        covariance = np.cov(centered, rowvar=False)
        covariance = np.atleast_2d(covariance) + 1e-8 * np.eye(covariates.shape[1])
        # Whitening transform: x -> L^{-1} x with covariance = L L^T.
        inverse_root = np.linalg.cholesky(np.linalg.inv(covariance))
        return centered @ inverse_root
    raise ValueError(f"unknown matching metric {metric!r}; expected 'euclidean' or 'mahalanobis'")


def coarsened_exact_matching(
    treatment: np.ndarray,
    covariates: np.ndarray,
    bins: int = 5,
) -> dict[tuple[int, ...], list[int]]:
    """Coarsened exact matching (CEM): coarsen each covariate into ``bins``
    equal-width bins and group units by their joint bin signature.

    Returns only the strata containing both treated and control units; the
    estimator weights strata by their share of treated units (the standard
    CEM ATT weighting, which equals the ATE weighting under random strata
    sizes).
    """
    treatment = np.asarray(treatment, dtype=float).ravel()
    covariates = np.asarray(covariates, dtype=float)
    if covariates.ndim == 1:
        covariates = covariates.reshape(-1, 1)
    if covariates.shape[1] == 0:
        signature = tuple()
        return {signature: list(range(len(treatment)))}

    signatures = np.zeros((len(treatment), covariates.shape[1]), dtype=int)
    for column in range(covariates.shape[1]):
        values = covariates[:, column]
        low, high = float(values.min()), float(values.max())
        if high == low:
            continue
        edges = np.linspace(low, high, bins + 1)[1:-1]
        signatures[:, column] = np.digitize(values, edges)

    strata: dict[tuple[int, ...], list[int]] = defaultdict(list)
    for index, signature in enumerate(signatures):
        strata[tuple(int(v) for v in signature)].append(index)

    matched: dict[tuple[int, ...], list[int]] = {}
    for signature, members in strata.items():
        member_treatment = treatment[members]
        if (member_treatment > 0.5).any() and (member_treatment <= 0.5).any():
            matched[signature] = members
    return matched
