"""Outcome regression model over (treatment, peer treatment, covariates).

This is the workhorse behind the relational/isolated/overall effect
estimation (Section 4.4.3): fit ``E[Y | t, peer embedding, Z]`` once, then
compare model predictions under different intervention strategies
``(t, peer fraction)`` while keeping each unit's covariates fixed.
"""

from __future__ import annotations

import numpy as np

from repro.inference.regression import LinearRegression, RidgeRegression


class OutcomeModel:
    """A fitted outcome regression with counterfactual prediction helpers."""

    def __init__(self, regression: str = "ols", ridge_alpha: float = 1.0) -> None:
        if regression == "ols":
            self._model = LinearRegression()
        elif regression == "ridge":
            self._model = RidgeRegression(alpha=ridge_alpha)
        else:
            raise ValueError(f"unknown regression {regression!r}; expected 'ols' or 'ridge'")
        self._n_peer_columns = 0
        self._n_covariates = 0

    def fit(
        self,
        outcome: np.ndarray,
        treatment: np.ndarray,
        peer_treatment: np.ndarray,
        covariates: np.ndarray,
    ) -> "OutcomeModel":
        """Fit ``y ~ [t | peer columns | covariates]``."""
        treatment = np.asarray(treatment, dtype=float).reshape(-1, 1)
        peer_treatment = _as_matrix(peer_treatment, len(treatment))
        covariates = _as_matrix(covariates, len(treatment))
        self._n_peer_columns = peer_treatment.shape[1]
        self._n_covariates = covariates.shape[1]
        design = np.hstack([treatment, peer_treatment, covariates])
        self._model.fit(design, np.asarray(outcome, dtype=float))
        return self

    # ------------------------------------------------------------------
    def predict(
        self,
        treatment: np.ndarray,
        peer_treatment: np.ndarray,
        covariates: np.ndarray,
    ) -> np.ndarray:
        treatment = np.asarray(treatment, dtype=float).reshape(-1, 1)
        peer_treatment = _as_matrix(peer_treatment, len(treatment))
        covariates = _as_matrix(covariates, len(treatment))
        design = np.hstack([treatment, peer_treatment, covariates])
        return self._model.predict(design)

    def predict_intervention(
        self,
        own_treatment: float | np.ndarray,
        peer_fraction: float | np.ndarray,
        observed_peer_treatment: np.ndarray,
        peer_counts: np.ndarray,
        covariates: np.ndarray,
    ) -> np.ndarray:
        """Predict outcomes under an intervention ``do(t, peer fraction)``.

        ``observed_peer_treatment`` supplies the template of the peer
        embedding columns; the first column (the embedded mean / fraction of
        treated peers) is overwritten with the intervened fraction, while the
        cardinality columns are preserved — the intervention changes *which*
        peers are treated, not how many peers a unit has.  Units with zero
        peers keep a zero peer fraction regardless of the intervention.
        """
        n_units = len(peer_counts)
        own = np.broadcast_to(np.asarray(own_treatment, dtype=float), (n_units,)).copy()
        fraction = np.broadcast_to(np.asarray(peer_fraction, dtype=float), (n_units,)).copy()
        fraction = np.where(np.asarray(peer_counts, dtype=float) > 0, fraction, 0.0)

        peer_matrix = _as_matrix(observed_peer_treatment, n_units).copy()
        if peer_matrix.shape[1] >= 1:
            peer_matrix[:, 0] = fraction
        return self.predict(own, peer_matrix, covariates)

    @property
    def coefficients(self) -> dict[str, float]:
        """Fitted coefficients keyed by role (treatment, peer_0, ..., cov_0, ...)."""
        coefficients = self._model.coefficients
        if coefficients is None:
            raise ValueError("model is not fitted")
        names = ["treatment"]
        names += [f"peer_{index}" for index in range(self._n_peer_columns)]
        names += [f"cov_{index}" for index in range(self._n_covariates)]
        return dict(zip(names, (float(value) for value in coefficients)))


def _as_matrix(values: np.ndarray, n_rows: int) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return np.empty((n_rows, 0))
    if values.ndim == 1:
        return values.reshape(-1, 1)
    return values
