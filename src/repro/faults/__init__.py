"""Seeded, deterministic fault injection (``docs/fault_injection.md``).

The package has three layers:

* :mod:`repro.faults.sites` — the frozen registry of named injection
  sites (``FAULT_SITES``), statically cross-checked by the ``fault-site``
  lint rule exactly like telemetry event names;
* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultRule`, the
  JSON-serializable description of *which* sites fire *when*, with every
  decision derived from sha256 of ``(seed, site, scope, occurrence)`` so a
  chaos run replays exactly (no wall clock, no ``random``, no builtin
  ``hash``);
* :mod:`repro.faults.injection` — the runtime: :func:`fault_point` is the
  single hook production code calls at each site; with no plan installed it
  is a few dict lookups and never fires.

``repro chaos`` (:mod:`repro.faults.chaos`) runs a workload under a plan
and reports the contract verdict: every query bit-identical to its
no-fault serial answer or a structured ``QueryError``, and no hangs.
"""

from repro.faults.injection import (
    PLAN_ENV,
    FaultDecision,
    active_plan,
    clear_plan,
    fault_point,
    install_plan,
    set_role,
)
from repro.faults.plan import FaultPlan, FaultRule, PlanError
from repro.faults.sites import FAULT_SITES, FaultSite

__all__ = [
    "FAULT_SITES",
    "PLAN_ENV",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "FaultSite",
    "PlanError",
    "active_plan",
    "clear_plan",
    "fault_point",
    "install_plan",
    "set_role",
]
