"""Fault plans: which sites fire, when — seeded and replayable.

A :class:`FaultPlan` is a seed plus an ordered tuple of :class:`FaultRule`
entries.  Whether a rule fires at a given occurrence of its site is a pure
function of ``(plan seed, site, scope, occurrence index)`` — the "coin" is
the leading 8 bytes of a sha256, never ``random`` or the builtin ``hash``
— so the same plan against the same workload replays the same faults
across runs *and* across ``PYTHONHASHSEED`` values.

Occurrences are counted per process per site, and the hash input includes
the process's **scope** (``worker:<id>`` for service workers — worker ids
are never reused, a replacement gets a fresh id — or ``main``).  A rule
can therefore pin a fault to one specific worker's n-th occurrence
(``workers=[0], at=[0]``): the replacement worker draws from a different
stream and is not re-killed, which is what "crash once, then recover"
plans need.

Exact replay holds whenever firing decisions are reproducible: always for
occurrence-pinned rules on named workers, and for probabilistic rules when
one worker serves the site (``jobs=1``) or the race being explored does
not change which scope reaches each occurrence.  See
``docs/fault_injection.md`` for the fine print.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.faults.sites import FAULT_SITES


class PlanError(ValueError):
    """Raised for malformed fault plans or rules."""


@dataclass(frozen=True)
class FaultRule:
    """One site's schedule within a plan.

    A rule fires at occurrence ``n`` (of its site, in the current scope)
    when ``n`` is listed in ``at``, or when the seeded coin for ``n`` lands
    under probability ``p`` — at most ``limit`` times per process when a
    limit is set.  ``workers`` restricts the rule to specific service
    worker ids (None = any scope, including the dispatcher for sites that
    allow it).  ``delay`` overrides the site's default sleep for
    sleep-type sites.
    """

    site: str
    p: float = 0.0
    at: tuple[int, ...] = ()
    limit: int | None = None
    workers: tuple[int, ...] | None = None
    delay: float | None = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise PlanError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(FAULT_SITES)}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise PlanError(f"rule probability must be in [0, 1], got {self.p!r}")
        if self.limit is not None and self.limit < 0:
            raise PlanError(f"rule limit must be >= 0, got {self.limit!r}")
        if self.delay is not None and self.delay < 0:
            raise PlanError(f"rule delay must be >= 0, got {self.delay!r}")
        # Normalize sequence fields so rules parsed from JSON (lists) and
        # rules built in Python (tuples) compare and serialize identically.
        object.__setattr__(self, "at", tuple(int(n) for n in self.at))
        if self.workers is not None:
            object.__setattr__(
                self, "workers", tuple(int(w) for w in self.workers)
            )

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"site": self.site}
        if self.p:
            record["p"] = self.p
        if self.at:
            record["at"] = list(self.at)
        if self.limit is not None:
            record["limit"] = self.limit
        if self.workers is not None:
            record["workers"] = list(self.workers)
        if self.delay is not None:
            record["delay"] = self.delay
        return record


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the rules it drives.  Immutable and JSON round-trippable."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def rules_for(self, site: str) -> tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.site == site)

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "rules": [rule.as_dict() for rule in self.rules]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            record = json.loads(text)
        except ValueError as error:
            raise PlanError(f"fault plan is not valid JSON: {error}") from error
        if not isinstance(record, dict):
            raise PlanError(f"fault plan must be a JSON object, got {type(record).__name__}")
        rules_raw = record.get("rules", [])
        if not isinstance(rules_raw, list):
            raise PlanError("fault plan 'rules' must be a list")
        rules = []
        for entry in rules_raw:
            if not isinstance(entry, dict) or "site" not in entry:
                raise PlanError(f"fault rule must be an object with a 'site': {entry!r}")
            unknown = set(entry) - {"site", "p", "at", "limit", "workers", "delay"}
            if unknown:
                raise PlanError(
                    f"fault rule for {entry['site']!r} has unknown fields "
                    f"{sorted(unknown)!r}"
                )
            rules.append(
                FaultRule(
                    site=entry["site"],
                    p=float(entry.get("p", 0.0)),
                    at=tuple(entry.get("at", ())),
                    limit=entry.get("limit"),
                    workers=(
                        tuple(entry["workers"]) if entry.get("workers") is not None else None
                    ),
                    delay=entry.get("delay"),
                )
            )
        return cls(seed=int(record.get("seed", 0)), rules=tuple(rules))


def seeded_fraction(seed: int, site: str, scope: str, occurrence: int) -> float:
    """The deterministic coin in ``[0, 1)`` for one occurrence of a site.

    sha256-derived: identical across processes, runs and hash seeds.
    """
    digest = hashlib.sha256(
        f"{seed}:{site}:{scope}:{occurrence}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def rule_fires(rule: FaultRule, seed: int, scope: str, occurrence: int) -> bool:
    """Pure decision: does ``rule`` fire at this occurrence in this scope?

    (The per-process ``limit`` bookkeeping lives in the injection runtime —
    this function is the replayable core.)
    """
    if rule.workers is not None:
        if not scope.startswith("worker:"):
            return False
        worker_id = int(scope.partition(":")[2])
        if worker_id not in rule.workers:
            return False
    if occurrence in rule.at:
        return True
    if rule.p > 0.0:
        return seeded_fraction(seed, rule.site, scope, occurrence) < rule.p
    return False
