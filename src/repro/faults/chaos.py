"""``repro chaos``: run a demo workload under a seeded fault plan.

The chaos harness is the executable form of the robustness contract
(``docs/fault_injection.md``): under any seeded :class:`FaultPlan`, every
query of the workload must resolve — no hangs — and each resolution must be
either **bit-identical** to the no-fault serial answer of the same query or
a structured :class:`~repro.carl.errors.QueryError`.  The harness:

1. answers the workload serially on a fresh engine (no plan, no cache) and
   fingerprints every answer (``float.hex`` — bit-level, not approximate);
2. installs the plan, re-runs the workload through a process-mode
   :class:`~repro.service.session.QuerySession` (workers inherit the plan
   through ``REPRO_FAULT_PLAN``), twice by default so the warm/cached paths
   face the same faults as the cold ones;
3. compares: any answer that differs from its serial fingerprint is a
   **mismatch** (exit 1 — the contract is broken), a query that neither
   answers nor errors before the global deadline is a **hang** (exit 2);
   otherwise the verdict is **ok** (exit 0) even if some queries failed —
   structured failure under injected faults is within contract.

The printed ``digest`` hashes the plan plus every per-query resolution, so
two runs of the same plan and seed can be compared with string equality —
that is the replay check CI's chaos shard performs.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import shutil
import sys
import tempfile
from typing import Any

from repro.carl.errors import QueryError
from repro.carl.queries import ATEResult, EffectsResult, QueryAnswer
from repro.faults.injection import clear_plan, install_plan
from repro.faults.plan import FaultPlan, FaultRule, PlanError
from repro.observability import dump_flight_recording

#: Demo workload names; resolved by :func:`_workload`.  The toy sweep is a
#: fixed query list (fast, more queries than shards so the scheduler's
#: sharing/retry paths are exercised); "review" uses the review dataset's
#: own canonical queries.
_WORKLOADS = ("toy", "review")

_TOY_SWEEP = [
    "Score[S] <= Prestige[A] ?",
    "AVG_Score[A] <= Prestige[A] ?",
    "AVG_Score[A] <= Prestige[A] >= 1 ?",
    "Score[S] <= Prestige[A] ? WHEN ALL PEERS TREATED",
]


def _workload(demo: str) -> tuple[Any, str, list[str]]:
    """Resolve a demo name to ``(database, program, queries)``."""
    from repro import datasets

    if demo == "toy":
        return datasets.toy_review_database(), datasets.TOY_REVIEW_PROGRAM, _TOY_SWEEP
    data = datasets.generate_review_data()
    return data.database, data.program, list(data.queries.values())


def default_plan(seed: int) -> FaultPlan:
    """The stock chaos storm: a bit of everything destructive-but-recoverable.

    Crash/torn-write/corrupt/ENOSPC rules are ``limit``-bounded so a storm
    stays a storm, not a denial of service: the scheduler must absorb each
    burst and finish the workload.  Hangs are left out (they cost a
    ``hang_timeout`` of wall time each); pass an explicit plan to test them.
    """
    return FaultPlan(
        seed=seed,
        rules=(
            FaultRule(site="worker.crash", p=0.10, limit=3),
            FaultRule(site="worker.slow", p=0.25, delay=0.05),
            FaultRule(site="worker.result_stall", p=0.20, delay=0.02),
            FaultRule(site="store.torn_write", p=0.05, limit=1),
            FaultRule(site="store.corrupt_read", p=0.05, limit=2),
            FaultRule(site="store.enospc", p=0.05, limit=1),
        ),
    )


def _fingerprint(answer: QueryAnswer) -> dict[str, Any]:
    """A bit-exact, timing-free fingerprint of one answer."""
    result = answer.result
    payload: dict[str, Any] = {
        "n_units": result.n_units,
        "estimator": result.estimator,
        "naive_difference": float(result.naive_difference).hex(),
        "correlation": float(result.correlation).hex(),
    }
    if isinstance(result, ATEResult):
        payload["kind"] = "ate"
        payload["ate"] = float(result.ate).hex()
        payload["n_treated"] = result.n_treated
        payload["n_control"] = result.n_control
        if result.confidence_interval is not None:
            payload["ci"] = [float(v).hex() for v in result.confidence_interval]
    elif isinstance(result, EffectsResult):
        payload["kind"] = "effects"
        payload["aie"] = float(result.aie).hex()
        payload["are"] = float(result.are).hex()
        payload["aoe"] = float(result.aoe).hex()
    return payload


def _load_plan(text: str | None, seed: int) -> FaultPlan:
    """Resolve ``--plan`` (a file path or inline JSON) with ``--seed`` applied."""
    if text is None:
        return default_plan(seed)
    candidate = text.strip()
    if not candidate.startswith("{"):
        with open(candidate, encoding="utf-8") as handle:
            candidate = handle.read()
    plan = FaultPlan.from_json(candidate)
    return FaultPlan(seed=seed, rules=plan.rules)


def build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli chaos",
        description="Run a demo workload under a seeded fault plan and "
        "verify the robustness contract (docs/fault_injection.md).",
    )
    parser.add_argument(
        "--demo", choices=sorted(_WORKLOADS), default="toy", help="demo workload"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (replays exactly)"
    )
    parser.add_argument(
        "--plan",
        metavar="FILE|JSON",
        help="fault plan as a JSON file or inline JSON object "
        "(default: the stock storm; --seed overrides the plan's seed)",
    )
    parser.add_argument("--jobs", type=int, default=2, help="worker processes")
    parser.add_argument(
        "--shards", type=int, default=None, help="shards per query (default: jobs)"
    )
    parser.add_argument(
        "--retries", type=int, default=3, help="scheduler per-task retry budget"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        metavar="N",
        help="run the workload N times through one session (the second pass "
        "hits the warm/cached paths under the same plan; default 2)",
    )
    parser.add_argument(
        "--query-timeout",
        type=float,
        default=60.0,
        help="per-query wall-clock budget (an expired query is a structured "
        "timeout error, within contract)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=300.0,
        help="global budget: a workload not fully resolved by then is a HANG "
        "(exit 2, the one outcome the contract forbids)",
    )
    parser.add_argument(
        "--hang-timeout",
        type=float,
        default=5.0,
        help="scheduler hang detector bound (seconds on one task)",
    )
    parser.add_argument("--json", action="store_true", help="emit the report as JSON")
    return parser


def _run_chaos(args: argparse.Namespace) -> dict[str, Any]:
    from repro.carl.engine import CaRLEngine

    database, program, queries = _workload(args.demo)
    plan = _load_plan(args.plan, args.seed)

    # Phase 1: the no-fault serial truth.  Must run before the plan is
    # installed — store.* sites fire in whatever process touches the store.
    clear_plan()
    baseline_engine = CaRLEngine(database, program)
    baseline = {
        name: _fingerprint(baseline_engine.answer(text))
        for name, text in enumerate_queries(queries)
    }

    # Phase 2: the same workload through the process scheduler, under faults.
    outcomes: dict[str, dict[str, Any]] = {}
    hang = False
    cache_root = tempfile.mkdtemp(prefix="repro-chaos-")
    install_plan(plan)
    try:
        chaos_engine = CaRLEngine(database, program, cache=cache_root)
        with chaos_engine.open_session(
            jobs=args.jobs,
            executor="process",
            shards=args.shards,
            retries=args.retries,
            hang_timeout=args.hang_timeout,
        ) as session:
            submitted: dict[int, str] = {}
            for round_index in range(max(1, args.repeat)):
                for name, text in enumerate_queries(queries):
                    index = session.submit(text, timeout=args.query_timeout)
                    submitted[index] = f"{name}#{round_index}"
            try:
                for index, outcome in session.as_completed(timeout=args.deadline):
                    name = submitted[index]
                    if isinstance(outcome, QueryAnswer):
                        fingerprint = _fingerprint(outcome)
                        serial = baseline[name.split("#", 1)[0]]
                        outcomes[name] = {
                            "status": "ok",
                            "matches_serial": fingerprint == serial,
                            "fingerprint": fingerprint,
                        }
                    else:
                        outcomes[name] = {"status": "error", "error": str(outcome)}
            except TimeoutError:
                hang = True
            scheduler_stats = session.stats().get("scheduler", {})
    finally:
        clear_plan()
        shutil.rmtree(cache_root, ignore_errors=True)

    unresolved = sorted(set(submitted.values()) - set(outcomes))
    mismatches = sorted(
        name
        for name, entry in outcomes.items()
        if entry["status"] == "ok" and not entry["matches_serial"]
    )
    flight_dump: str | None = None
    if hang or unresolved:
        verdict = "hang"
    elif mismatches:
        verdict = "mismatch"
        dump = dump_flight_recording("chaos_mismatch")
        flight_dump = str(dump) if dump is not None else None
    else:
        verdict = "ok"
    digest_payload = {
        "plan": plan.to_json(),
        "outcomes": {
            name: entry.get("fingerprint", "error")
            for name, entry in sorted(outcomes.items())
        },
    }
    digest = hashlib.sha256(
        json.dumps(digest_payload, sort_keys=True).encode()
    ).hexdigest()
    errors = sorted(name for name, entry in outcomes.items() if entry["status"] == "error")
    return {
        "verdict": verdict,
        "digest": digest,
        "demo": args.demo,
        "seed": plan.seed,
        "plan": json.loads(plan.to_json()),
        "queries": len(submitted),
        "answered": len(outcomes) - len(errors),
        "errors": errors,
        "mismatches": mismatches,
        "unresolved": unresolved,
        "flight_dump": flight_dump,
        "scheduler": scheduler_stats,
        "outcomes": outcomes,
    }


def enumerate_queries(queries: list[str]) -> list[tuple[str, str]]:
    """Stable ``(name, text)`` labels for a workload's queries."""
    return [(f"q{position}", text) for position, text in enumerate(queries)]


def chaos_main(argv: list[str]) -> int:
    args = build_chaos_parser().parse_args(argv)
    if args.jobs < 1 or (args.shards is not None and args.shards < 1):
        print("--jobs/--shards must be >= 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("--retries must be >= 0", file=sys.stderr)
        return 2
    try:
        report = _run_chaos(args)
    except PlanError as error:
        print(f"invalid fault plan: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"verdict  : {report['verdict']}")
        print(f"digest   : {report['digest']}")
        print(
            f"workload : {report['demo']} x{max(1, args.repeat)} "
            f"({report['queries']} queries, seed {report['seed']})"
        )
        print(f"answered : {report['answered']} ok, {len(report['errors'])} error(s)")
        for name in report["errors"]:
            print(f"  error    {name}: {report['outcomes'][name]['error']}")
        for name in report["mismatches"]:
            print(f"  MISMATCH {name}")
        for name in report["unresolved"]:
            print(f"  HANG     {name}")
        stats = report["scheduler"]
        if stats:
            print(
                "scheduler: "
                f"retries {stats.get('retries', 0)}, "
                f"worker deaths {stats.get('worker_deaths', 0)}, "
                f"hangs {stats.get('worker_hangs', 0)}, "
                f"serial fallbacks {stats.get('serial_fallbacks', 0)}, "
                f"circuit open {bool(stats.get('circuit_open', 0))}"
            )
    return {"ok": 0, "mismatch": 1, "hang": 2}[report["verdict"]]
