"""The frozen registry of fault-injection sites.

Every place production code may inject a fault is declared here, by name —
and *only* here: :func:`repro.faults.injection.fault_point` rejects unknown
sites at runtime, and the ``fault-site`` lint rule
(:mod:`repro.analysis.fault_rules`) cross-checks every literal site name at
call sites statically, mirroring the telemetry-schema rule.  A misspelled
site can therefore never silently "just not fire".

Naming convention: ``<layer>.<failure>``.  ``worker_only`` marks sites
whose behavior kills or wedges the calling process (``os._exit``, an
unbounded sleep): they are armed only in processes that declared themselves
workers (:func:`repro.faults.injection.set_role`), so a plan that crashes
workers can never take the dispatcher — or the user's process — down with
them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultSite:
    """Declaration of one injection site."""

    name: str
    description: str
    #: True when the site's behavior is destructive to the calling process
    #: (crash/hang): it is ignored outside processes marked as workers.
    worker_only: bool = False
    #: Default delay (seconds) for sleep-type sites when the firing rule
    #: does not carry one.
    default_delay: float = 0.0


#: The registry.  Frozen by ``tests/test_faults.py`` — extending it is fine
#: (add the site here, call ``fault_point`` with its literal name, update
#: the pinned test), but renames must be deliberate: plans refer to sites
#: by name.
FAULT_SITES: dict[str, FaultSite] = {
    site.name: site
    for site in (
        FaultSite(
            "worker.crash",
            "worker process exits (os._exit) at task start — the classic "
            "mid-task death is_alive() catches",
            worker_only=True,
        ),
        FaultSite(
            "worker.hang",
            "worker sleeps (default 600s) at task start without reporting — "
            "only heartbeat-based detection sees this",
            worker_only=True,
            default_delay=600.0,
        ),
        FaultSite(
            "worker.slow",
            "worker sleeps (default 0.25s) at task start, then runs the "
            "task normally — exercises deadlines racing real work",
            worker_only=True,
            default_delay=0.25,
        ),
        FaultSite(
            "worker.result_stall",
            "worker computes the task but stalls (default 0.05s) before "
            "putting the outcome on the result queue",
            worker_only=True,
            default_delay=0.05,
        ),
        FaultSite(
            "store.corrupt_read",
            "the artifact file is truncated on disk just before a load "
            "parses it — a torn/corrupt artifact read",
        ),
        FaultSite(
            "store.enospc",
            "ArtifactCache.store raises OSError(ENOSPC) as if the disk "
            "filled mid-write",
        ),
        FaultSite(
            "store.torn_write",
            "the writing process exits between the temp-file write and the "
            "atomic rename — a torn write that must never be visible",
            worker_only=True,
        ),
        FaultSite(
            "daemon.route_stall",
            "the daemon's router stalls (default 0.05s) before delivering "
            "an event to its tenant backend",
            default_delay=0.05,
        ),
        FaultSite(
            "session.deliver_stall",
            "the session's event pump stalls (default 0.05s) before "
            "resolving a delivered outcome",
            default_delay=0.05,
        ),
    )
}
