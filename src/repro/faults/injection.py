"""The fault-injection runtime: :func:`fault_point`.

Production code calls ``fault_point("<site>")`` at each registered site and
performs the site's behavior itself when a decision comes back (sleep,
``os._exit``, raise) — the behaviors stay visible at the call site, and the
literal site names are what the ``fault-site`` lint rule cross-checks
against :data:`repro.faults.sites.FAULT_SITES`.

With no plan installed the call is two attribute reads and returns None —
cheap enough to leave in hot paths permanently.  Plans are installed
programmatically (:func:`install_plan`) *and* mirrored into the
``REPRO_FAULT_PLAN`` environment variable, so worker processes — forked or
spawned — inherit the plan without any extra plumbing.

Per-process state (occurrence counters, per-rule fire counts, the process
role) resets automatically when a fork is detected, exactly like the
telemetry registry's fork guard: a worker's occurrence stream starts at 0
regardless of what its parent had already counted.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.faults.plan import FaultPlan, FaultRule, PlanError, rule_fires
from repro.faults.sites import FAULT_SITES, FaultSite
from repro.observability.telemetry import get_registry

#: Environment mirror of the installed plan (JSON), read lazily by child
#: processes.  An unparseable value is ignored (fault injection must never
#: take the system down by itself).
PLAN_ENV = "REPRO_FAULT_PLAN"


@dataclass(frozen=True)
class FaultDecision:
    """A site fired: what the call site should do."""

    site: FaultSite
    rule: FaultRule

    @property
    def delay(self) -> float:
        """The sleep for sleep-type sites (rule override, else site default)."""
        return self.rule.delay if self.rule.delay is not None else self.site.default_delay


class _State:
    """Per-process injection state (plan + counters + role), fork-guarded."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.pid = os.getpid()  # guarded-by: lock
        self.plan: FaultPlan | None = None  # guarded-by: lock
        self.plan_from_env = False  # guarded-by: lock
        self.role = "main"  # guarded-by: lock
        self.worker_id: int | None = None  # guarded-by: lock
        #: Occurrences seen per site.  Bounded by len(FAULT_SITES).
        self.counts: dict[str, int] = {}  # guarded-by: lock
        #: Fires per rule index (for ``limit``).  Bounded by the plan size.
        self.fired: dict[int, int] = {}  # guarded-by: lock

    def ensure_pid_locked(self) -> None:
        """Reset child-side state after a fork (caller holds the lock)."""
        pid = os.getpid()
        if pid == self.pid:
            return
        self.pid = pid
        self.counts = {}
        self.fired = {}
        self.role = "main"
        self.worker_id = None
        if self.plan_from_env:
            self.plan = None  # re-read: the parent may have changed the env


_STATE = _State()


def set_role(role: str, worker_id: int | None = None) -> None:
    """Declare this process's role (``"worker"`` arms worker-only sites).

    Service workers call ``set_role("worker", worker_id)`` first thing in
    their main loop; everything else defaults to ``"main"``.
    """
    with _STATE.lock:
        _STATE.ensure_pid_locked()
        _STATE.role = role
        _STATE.worker_id = worker_id


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide and mirror it into ``REPRO_FAULT_PLAN``
    so child processes inherit it.  ``None`` clears both."""
    with _STATE.lock:
        _STATE.ensure_pid_locked()
        _STATE.plan = plan
        _STATE.plan_from_env = False
        _STATE.counts = {}
        _STATE.fired = {}
    if plan is None:
        os.environ.pop(PLAN_ENV, None)
    else:
        os.environ[PLAN_ENV] = plan.to_json()


def clear_plan() -> None:
    """Remove any installed plan (programmatic or environment-inherited)."""
    install_plan(None)


def active_plan() -> FaultPlan | None:
    """The plan in effect for this process (env-inherited plans included)."""
    with _STATE.lock:
        _STATE.ensure_pid_locked()
        return _active_plan_locked()


def _active_plan_locked() -> FaultPlan | None:
    if _STATE.plan is not None:
        return _STATE.plan
    text = os.environ.get(PLAN_ENV)
    if not text:
        return None
    try:
        plan = FaultPlan.from_json(text)
    except PlanError:
        return None  # a broken env plan must never break the host process
    _STATE.plan = plan
    _STATE.plan_from_env = True
    return plan


def fault_point(site_name: str, key: str | None = None) -> FaultDecision | None:
    """Consult the active plan at one site; None means "no fault here".

    ``key`` is a free-form label recorded on the ``fault.injected``
    telemetry event (a task id, an artifact kind) — it does not influence
    the decision, so call sites can add context without changing replay.
    """
    site = FAULT_SITES.get(site_name)
    if site is None:
        raise PlanError(f"fault_point called with unregistered site {site_name!r}")
    with _STATE.lock:
        _STATE.ensure_pid_locked()
        plan = _active_plan_locked()
        if plan is None:
            return None
        if site.worker_only and _STATE.role != "worker":
            # Destructive sites never fire in the dispatcher/user process;
            # the occurrence is not counted so worker streams are unaffected
            # by dispatcher-side traffic through shared code paths.
            return None
        scope = (
            f"worker:{_STATE.worker_id}"
            if _STATE.role == "worker" and _STATE.worker_id is not None
            else _STATE.role
        )
        occurrence = _STATE.counts.get(site_name, 0)
        _STATE.counts[site_name] = occurrence + 1
        decision: FaultDecision | None = None
        for index, rule in enumerate(plan.rules):
            if rule.site != site_name:
                continue
            if rule.limit is not None and _STATE.fired.get(index, 0) >= rule.limit:
                continue
            if rule_fires(rule, plan.seed, scope, occurrence):
                _STATE.fired[index] = _STATE.fired.get(index, 0) + 1
                decision = FaultDecision(site=site, rule=rule)
                break
    if decision is not None:
        meta = {"site": site_name}
        if key is not None:
            meta["key"] = key
        get_registry().count("fault.injected", **meta)
    return decision
