"""Multi-tenant query daemon: one scheduler, many admission-controlled sessions.

A :class:`QueryDaemon` is the long-lived, service-shaped front of the CaRL
engine (``docs/service.md``).  It owns **one**
:class:`~repro.service.scheduler.ShardScheduler` — one worker pool, one
artifact cache, one published engine state — and multiplexes any number of
concurrent :class:`~repro.service.session.QuerySession`\\ s over it:

* :meth:`~QueryDaemon.open_session` returns an ordinary ``QuerySession``
  whose backend is a per-tenant **admission facade** instead of a private
  scheduler — same ``submit`` / ``as_completed`` / ``result`` surface, no
  per-session worker spawn;
* admission control is per tenant: a **token bucket** (``rate`` tokens per
  second, ``burst`` capacity) plus a bound on in-flight queries; a rejected
  submit raises :class:`AdmissionError` in the submitting caller — a
  structured error, never a hang — and is counted in telemetry
  (``daemon.reject``);
* the scheduler schedules **fairly across tenants**: every session's
  queries carry its tenant as the fairness group, and ready collect tasks
  drain round-robin across groups, so one tenant's deep backlog cannot
  starve another's interactive queries;
* a **router thread** demultiplexes the shared scheduler's completion
  events back to the owning session's queue.  Routing state is one dict
  entry per in-flight query, deleted at delivery — the daemon's memory is
  O(in-flight), not O(queries ever served);
* :meth:`~QueryDaemon.drain` stops admission and waits for in-flight work;
  :meth:`~QueryDaemon.close` drains (best effort) and tears the pool down.

Answers keep the engine's core guarantee: every event a daemon session
emits is bit-identical to the serial ``engine.answer`` of the same query.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import TYPE_CHECKING, Any

from repro.carl.ast import CausalQuery
from repro.carl.errors import QueryError
from repro.faults.injection import fault_point
from repro.observability.telemetry import get_registry
from repro.service.scheduler import DEFAULT_HANG_TIMEOUT, ShardScheduler
from repro.service.session import QuerySession

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.carl.engine import CaRLEngine

#: Seconds the router blocks on the scheduler's event queue per loop turn.
_POLL_SECONDS = 0.02

#: Default per-tenant bound on in-flight (admitted, undelivered) queries.
DEFAULT_MAX_INFLIGHT = 64


class AdmissionError(QueryError):
    """Raised by ``submit`` on a daemon session the daemon refuses to admit:
    the tenant is over its token-bucket rate, over its in-flight bound, or
    the daemon is draining/closed.  Subclasses :class:`QueryError`, so
    generic error handling keeps working; catch it specifically to back off.
    """

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        self.reason = reason  #: ``"rate" | "inflight" | "draining" | "closed"``


class TokenBucket:
    """Classic token bucket on the monotonic clock.

    ``rate`` tokens are added per second up to ``burst``; each admitted
    query consumes one.  ``rate=None`` disables rate limiting (the bucket
    always grants).  Thread-safe.
    """

    def __init__(self, rate: float | None, burst: int) -> None:
        if rate is not None and rate <= 0:
            raise QueryError(f"rate must be positive (or None), got {rate!r}")
        if burst < 1:
            raise QueryError(f"burst must be a positive integer, got {burst!r}")
        self._rate = rate
        self._burst = float(burst)
        self._tokens = float(burst)  # guarded-by: _lock
        self._stamp = time.monotonic()  # guarded-by: _lock
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Consume one token if available; never blocks."""
        if self._rate is None:
            return True
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self._burst, self._tokens + (now - self._stamp) * self._rate)
            self._stamp = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class _TenantBackend:
    """Per-session scheduler facade: admission control + event routing.

    Quacks like a :class:`~repro.service.scheduler.ShardScheduler` as far as
    :class:`~repro.service.session.QuerySession` is concerned (``submit`` /
    ``cancel`` / ``stats`` / ``close`` plus an ``events`` queue), but routes
    through the daemon's shared scheduler.  The session's *local* indexes
    are translated to daemon-*global* ones on the way in and back on the way
    out, so concurrent sessions never collide.
    """

    def __init__(self, daemon: "QueryDaemon", tenant: str, bucket: TokenBucket, max_inflight: int) -> None:
        self._daemon = daemon
        self.tenant = tenant
        self._bucket = bucket
        self._max_inflight = max_inflight
        self.events: "queue.Queue[tuple[int, Any]]" = queue.Queue()
        self._lock = threading.Lock()
        self._to_global: dict[int, int] = {}  # guarded-by: _lock  #: local → global, in-flight only
        self.admitted = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    # -- the QuerySession-facing surface --------------------------------
    def submit(
        self,
        index: int,
        query: CausalQuery,
        options: dict[str, Any],
        timeout: float | None,
    ) -> None:
        reason: str | None = None
        with self._lock:
            if self._closed:
                reason = "closed"
            elif self._daemon._refuses_admission():  # noqa: SLF001 - daemon pair
                reason = "draining"
            elif len(self._to_global) >= self._max_inflight:
                reason = "inflight"
            elif not self._bucket.try_acquire():
                reason = "rate"
            if reason is not None:
                self.rejected += 1
            else:
                self.admitted += 1
        telemetry = get_registry()
        if reason is not None:
            telemetry.count("daemon.reject", tenant=self.tenant, reason=reason)
            raise AdmissionError(
                f"tenant {self.tenant!r}: query not admitted ({reason}); "
                "back off and retry, consume pending events, or raise the "
                "tenant's quota",
                reason=reason,
            )
        telemetry.count("daemon.admit", tenant=self.tenant)
        global_index = self._daemon._route(self, index)  # noqa: SLF001
        with self._lock:
            # Mapped before the scheduler sees the query: a fast completion
            # may route back the instant submit returns.
            self._to_global[index] = global_index
        try:
            self._daemon._scheduler.submit(  # noqa: SLF001
                global_index, query, options, timeout, group=self.tenant
            )
        except BaseException:
            self._daemon._unroute(global_index)  # noqa: SLF001
            with self._lock:
                self._to_global.pop(index, None)
            raise

    def cancel(self, index: int) -> bool:
        with self._lock:
            global_index = self._to_global.get(index)
        if global_index is None:
            return False
        cancelled = self._daemon._scheduler.cancel(global_index)  # noqa: SLF001
        if cancelled:
            self._daemon._unroute(global_index)  # noqa: SLF001
            with self._lock:
                self._to_global.pop(index, None)
        return cancelled

    def stats(self) -> dict[str, Any]:
        with self._lock:
            tenant_stats = {
                "tenant": self.tenant,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "inflight": len(self._to_global),
            }
        stats = self._daemon._scheduler.stats()  # noqa: SLF001
        stats.update(tenant_stats)
        return stats

    def close(self) -> None:
        """Close this tenant's session: cancel its in-flight queries.

        The shared scheduler stays up — it belongs to the daemon.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            inflight = list(self._to_global.items())
            self._to_global.clear()
        for _local, global_index in inflight:
            self._daemon._scheduler.cancel(global_index)  # noqa: SLF001
            self._daemon._unroute(global_index)  # noqa: SLF001
        self._daemon._session_closed(self)  # noqa: SLF001

    # -- the router-facing surface --------------------------------------
    def _deliver(self, local_index: int, outcome: Any) -> None:
        with self._lock:
            self._to_global.pop(local_index, None)
            closed = self._closed
        if not closed:
            self.events.put((local_index, outcome))


class QueryDaemon:
    """A long-lived multi-tenant query service over one engine.

    ::

        with QueryDaemon(engine, jobs=4, shards=4) as daemon:
            alice = daemon.open_session(tenant="alice", rate=50.0, burst=10)
            bob = daemon.open_session(tenant="bob")
            alice.submit("ATE(treatment, outcome)")
            ...
            daemon.drain()

    One :class:`~repro.service.scheduler.ShardScheduler` (one worker pool)
    serves every session; per-tenant admission control and round-robin task
    fairness keep tenants isolated.  Thread-safe; sessions may be opened,
    used and closed concurrently from any threads.
    """

    def __init__(
        self,
        engine: "CaRLEngine",
        jobs: int | None = 1,
        shards: int | None = None,
        retries: int = 2,
        backend: str | None = None,
        hang_timeout: float | None = DEFAULT_HANG_TIMEOUT,
    ) -> None:
        backend = backend or engine.backend
        if backend != "columnar":
            raise QueryError(
                "the query daemon shards the columnar collection phase; "
                f"backend {backend!r} is not shardable"
            )
        if jobs is None:
            import os

            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise QueryError(f"jobs must be a positive integer, got {jobs!r}")
        self._engine = engine
        self._backend = backend
        self._scheduler = ShardScheduler(
            engine,
            jobs=jobs,
            shards=shards or jobs,
            retries=retries,
            backend=backend,
            hang_timeout=hang_timeout,
        )
        self._scheduler.start()
        self._lock = threading.Lock()
        self._next_global = 0  # guarded-by: _lock
        #: Global index → (facade, local index); one entry per in-flight
        #: query, deleted when its event is routed (or it is cancelled).
        self._routes: dict[int, tuple[_TenantBackend, int]] = {}  # guarded-by: _lock
        #: Live session backends, insertion-ordered (a dict-as-ordered-set:
        #: iterating a bare set here would put stats()/close() session order
        #: under PYTHONHASHSEED).
        self._sessions: dict[_TenantBackend, None] = {}  # guarded-by: _lock
        self._next_anonymous = 0  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._stop = threading.Event()
        self._router = threading.Thread(
            target=self._run_router, name="carl-daemon-router", daemon=True
        )
        self._router.start()

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def open_session(
        self,
        tenant: str | None = None,
        rate: float | None = None,
        burst: int = 16,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_pending: int | None = None,
        submit_timeout: float | None = None,
        estimator: str | None = None,
        embedding: str | None = None,
        bootstrap: int = 0,
        seed: int = 0,
    ) -> QuerySession:
        """Open one tenant's session (use as a context manager).

        ``rate``/``burst`` shape the tenant's token bucket (``rate=None``
        disables rate limiting); ``max_inflight`` bounds the tenant's
        admitted-but-undelivered queries.  Both reject with
        :class:`AdmissionError` at ``submit``.  ``max_pending`` /
        ``submit_timeout`` add session-side backpressure on top (see
        :class:`~repro.service.session.QuerySession`).  Closing the session
        cancels its in-flight queries; the daemon's workers live on.
        """
        if max_inflight < 1:
            raise QueryError(
                f"max_inflight must be a positive integer, got {max_inflight!r}"
            )
        with self._lock:
            if self._closed:
                raise QueryError("the query daemon is closed")
            if self._draining:
                raise QueryError("the query daemon is draining")
            if tenant is None:
                tenant = f"tenant-{self._next_anonymous}"
                self._next_anonymous += 1
        backend = _TenantBackend(
            self, tenant, TokenBucket(rate, burst), max_inflight
        )
        with self._lock:
            self._sessions[backend] = None
            live = len(self._sessions)
        get_registry().gauge("daemon.sessions", live)
        return QuerySession(
            self._engine,
            executor="process",
            backend=self._backend,
            estimator=estimator,
            embedding=embedding,
            bootstrap=bootstrap,
            seed=seed,
            max_pending=max_pending,
            submit_timeout=submit_timeout,
            _backend=backend,
        )

    def _session_closed(self, backend: _TenantBackend) -> None:
        with self._lock:
            self._sessions.pop(backend, None)
            live = len(self._sessions)
        get_registry().gauge("daemon.sessions", live)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _refuses_admission(self) -> bool:
        with self._lock:
            return self._draining or self._closed

    def _route(self, backend: _TenantBackend, local_index: int) -> int:
        with self._lock:
            global_index = self._next_global
            self._next_global += 1
            self._routes[global_index] = (backend, local_index)
            return global_index

    def _unroute(self, global_index: int) -> None:
        with self._lock:
            self._routes.pop(global_index, None)

    def _run_router(self) -> None:
        while not self._stop.is_set():
            try:
                global_index, outcome = self._scheduler.events.get(
                    timeout=_POLL_SECONDS
                )
            except queue.Empty:
                continue
            except (OSError, ValueError):  # pragma: no cover - queue closed
                return
            with self._lock:
                route = self._routes.pop(global_index, None)
            if route is None:
                continue  # session closed (or query cancelled) before delivery
            backend, local_index = route
            stall = fault_point("daemon.route_stall", key=f"query-{global_index}")
            if stall is not None:
                time.sleep(stall.delay)
            backend._deliver(local_index, outcome)  # noqa: SLF001 - daemon pair

    # ------------------------------------------------------------------
    # lifecycle / inspection
    # ------------------------------------------------------------------
    def inflight(self) -> int:
        """Admitted queries whose events have not been routed yet."""
        with self._lock:
            return len(self._routes)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting queries and wait for in-flight ones to resolve.

        Returns True when the daemon went idle within ``timeout`` seconds
        (False on expiry — the daemon stays draining either way; a False
        return means some queries are still in flight, not that they were
        lost).
        """
        with self._lock:
            self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self.inflight() == 0:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(_POLL_SECONDS)

    def stats(self) -> dict[str, Any]:
        """Daemon-level counters plus the shared scheduler's snapshot."""
        with self._lock:
            sessions = list(self._sessions)
            snapshot: dict[str, Any] = {
                "sessions": len(sessions),
                "inflight": len(self._routes),
                "draining": self._draining,
                "tenants": {},
            }
        scheduler_stats = self._scheduler.stats()
        # The pool circuit breaker tripped: queries still answer (serially,
        # bit-identical), but operators should know the daemon is limping.
        snapshot["degraded"] = bool(scheduler_stats.get("circuit_open"))
        admitted = rejected = 0
        for backend in sessions:
            with backend._lock:  # noqa: SLF001 - daemon pair
                snapshot["tenants"][backend.tenant] = {
                    "admitted": backend.admitted,
                    "rejected": backend.rejected,
                    "inflight": len(backend._to_global),  # noqa: SLF001
                }
                admitted += backend.admitted
                rejected += backend.rejected
        snapshot["admitted"] = admitted
        snapshot["rejected"] = rejected
        snapshot["scheduler"] = scheduler_stats
        return snapshot

    def close(self, drain_timeout: float = 0.0) -> None:
        """Tear the daemon down; idempotent.

        With ``drain_timeout > 0`` the daemon first waits (bounded) for
        in-flight queries; any still unresolved are abandoned with the
        scheduler's workers.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._draining = True
        if drain_timeout > 0:
            self.drain(timeout=drain_timeout)
        self._stop.set()
        self._router.join(timeout=5.0)
        self._scheduler.close()
        with self._lock:
            self._routes.clear()
            live_sessions = list(self._sessions)
        for backend in live_sessions:
            backend.close()

    def __enter__(self) -> "QueryDaemon":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
