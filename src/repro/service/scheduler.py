"""The streaming service's process-mode task scheduler (``docs/service.md``).

PR 4's process executor fails the whole batch on the first worker fault and
returns nothing until every query is done.  This scheduler replaces both
behaviors with explicit task-level bookkeeping:

* each submitted query is decomposed into shard-level **collect tasks**
  (one per contiguous unit range, reusing :class:`~repro.carl.shard.ShardTask`)
  plus one **finish task** (merge partials, materialize, estimate —
  :class:`~repro.carl.shard.FinishTask`), tracked through the
  :class:`TaskState` machine ``PENDING → RUNNING → DONE | FAILED``;
* workers are long-lived processes the scheduler manages itself (not a
  ``ProcessPoolExecutor``, whose pool breaks permanently on a worker death):
  a task whose worker raises or dies is **retried and requeued** — on a
  different worker where possible (the faulting worker is excluded for that
  task), with a dead worker replaced by a fresh process — up to a bounded
  retry budget, after which only the affected query fails with a
  :class:`~repro.carl.errors.QueryError`; the rest of the session streams
  on;
* before enqueuing a collect task the scheduler **probes the artifact
  cache** under the deterministic partial key
  (:func:`repro.carl.shard.shard_partial_key`), so a warm re-sweep performs
  zero collection work, and tasks are deduplicated by key within the
  session, so a threshold sweep collects each unit range once.

Long-lived service hardening (PR 7):

* **bounded bookkeeping** — a query's record is reaped the moment its event
  is emitted and completed task rows are reaped as their results land; the
  session-level dedup that DONE task rows used to provide moves to a bounded
  LRU of warm partial keys (each holding one refcounted cache pin), so the
  scheduler's memory is O(in-flight work), not O(session history);
* **fair scheduling across submitters** — :meth:`submit` takes an optional
  ``group`` label (the daemon passes one per tenant session) and ready
  collect tasks are drained round-robin across groups, while finish tasks
  keep absolute priority (they complete a query *now*);
* **telemetry** — every query emits a span tree (``query`` root with
  ``query.ground`` / ``query.collect`` / ``query.finish`` children) plus
  retry/timeout/queue-depth signals through
  :mod:`repro.observability.telemetry` (see ``docs/observability.md``).

Everything a worker computes flows through the artifact cache exactly as in
PR 4 (partials as ``unit_inputs`` artifacts, never bulk pickles), and the
per-query merge is pure concatenation — so every answer the scheduler emits
is bit-identical to the serial :meth:`~repro.carl.engine.CaRLEngine.answer`
of the same query.  The task queue plus artifact-keyed partials are the
designed seam for the ROADMAP's remote-dispatch backend: a multi-host
dispatcher needs exactly this bookkeeping with a remote transport instead of
local pipes.
"""

from __future__ import annotations

import enum
import hashlib
import heapq
import multiprocessing
import os
import queue
import shutil
import tempfile
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING, Any

from repro.carl import shard as shard_module
from repro.carl.errors import CaRLError, QueryError
from repro.carl.shard import (
    DEFAULT_HANG_TIMEOUT,
    FinishTask,
    NO_INHERIT_ENV,
    ShardTask,
    WorkerSpec,
    _plan_query,
    _publish_engine_state,
    _run_finish_task,
    _run_shard_task,
    _worker_init,
    register_inheritable_engine,
    shard_partial_key,
    unregister_inheritable_engine,
)
from repro.cache.store import ArtifactCache, CacheKey
from repro.carl.ast import CausalQuery
from repro.carl.queries import QueryAnswer
from repro.db.aggregates import shard_ranges
from repro.faults.injection import fault_point, set_role
from repro.observability.flight import dump_flight_recording
from repro.observability.merge import merge_worker_batch
from repro.observability.telemetry import Span, get_registry
from repro.observability.telemetry import set_role as set_telemetry_role

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.carl.engine import CaRLEngine

#: Seconds the dispatcher blocks on the result queue per loop iteration —
#: the upper bound on how stale its view of worker deaths, deadlines and
#: control messages can get.
_POLL_SECONDS = 0.02

#: Seconds :meth:`ShardScheduler.close` waits for a worker to exit politely
#: (after its ``None`` sentinel) before terminating it.
_SHUTDOWN_GRACE = 2.0

#: Seconds :meth:`ShardScheduler.close` waits for the dispatcher thread —
#: longer than the worker grace, because the dispatcher may be mid-plan on
#: the engine when the stop flag is set.
_DISPATCHER_JOIN = 5.0

#: Bound on the warm partial-key LRU: completed collect work is remembered
#: (and its artifact kept pinned) up to this many unit ranges, so a hot
#: sweep re-submitted to a long-lived session skips the cache probe without
#: the scheduler accumulating a row per task it ever ran.
_WARM_KEYS_CAP = 4096

#: Seconds between worker heartbeats on the result queue.  Each beat carries
#: the worker's own measurement of how long it has been on its current task,
#: so the dispatcher can tell a *hung* worker (alive but stuck — invisible
#: to ``Process.is_alive()``) from a merely busy one.
_HEARTBEAT_SECONDS = 0.25

#: Exponential-backoff schedule between retry requeues: attempt ``k`` waits
#: ``base * 2**(k-1)`` seconds (capped), scaled by a deterministic seeded
#: jitter factor in [0.5, 1.0) — sha256 of (seed, task, attempt), never
#: ``random`` — so retries of simultaneously-faulted tasks spread out
#: instead of stampeding the replacement worker, and a replayed chaos run
#: waits the exact same delays.  ``base=0`` disables backoff (immediate
#: requeue, the pre-PR-9 behavior).
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0


class TaskState(enum.Enum):
    """Lifecycle of one scheduler task."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class QueryState(enum.Enum):
    """Lifecycle of one submitted query."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass
class ServiceStats:
    """Counters of one session's scheduling activity.

    ``collect_cache_hits`` + ``collect_tasks_run`` covers every shard range
    of every scheduled query: on a fully warm re-sweep ``collect_tasks_run``
    is 0 — the evidence ``benchmarks/bench_stream.py`` gates on.
    """

    collect_tasks_run: int = 0
    collect_cache_hits: int = 0
    finish_tasks_run: int = 0
    retries: int = 0
    worker_deaths: int = 0
    workers_spawned: int = 0
    #: Workers the scheduler killed on purpose (hung, or running a task for
    #: a timed-out/cancelled query) — distinct from ``worker_deaths``, which
    #: counts *unexpected* deaths only.
    workers_killed: int = 0
    worker_hangs: int = 0
    #: Queries answered serially in-process after the pool became unusable
    #: (circuit breaker) or the artifact store degraded.
    serial_fallbacks: int = 0
    reaped_results: int = 0
    timeouts: int = 0
    cancelled: int = 0
    records_reaped: int = 0
    tasks_reaped: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "collect_tasks_run": self.collect_tasks_run,
            "collect_cache_hits": self.collect_cache_hits,
            "finish_tasks_run": self.finish_tasks_run,
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "workers_spawned": self.workers_spawned,
            "workers_killed": self.workers_killed,
            "worker_hangs": self.worker_hangs,
            "serial_fallbacks": self.serial_fallbacks,
            "reaped_results": self.reaped_results,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "records_reaped": self.records_reaped,
            "tasks_reaped": self.tasks_reaped,
        }


@dataclass
class _Task:
    """One schedulable unit of work (a collect shard or a query finish)."""

    id: int
    kind: str  #: ``"collect"`` or ``"finish"``
    spec: ShardTask | FinishTask
    #: Indexes of the session queries depending on this task.  Collect
    #: tasks are shared between queries with the same collection signature;
    #: a finish task always belongs to exactly one query.
    queries: set[int]
    state: TaskState = TaskState.PENDING
    attempts: int = 0
    #: Worker ids this task must not be assigned to again (they faulted on
    #: it); relaxed only when every live worker is excluded.
    excluded: set[int] = field(default_factory=set)
    worker: int | None = None  #: id of the worker currently running it
    seconds: float = 0.0  #: collection seconds (collect tasks, once done)
    group: str | None = None  #: fairness group of the query that created it
    trace: str | None = None  #: telemetry trace of the creating query
    parent: str | None = None  #: telemetry span id of the creating query
    span: Span | None = None  #: open span of the current execution attempt
    ready_since: float = 0.0  #: monotonic instant it last became ready


@dataclass
class _QueryRecord:
    """Dispatcher-side bookkeeping for one submitted query.

    Lives from :meth:`ShardScheduler.submit` until the query's event is
    emitted (or it is detached by cancellation) — records are reaped at
    resolution, so the record table is O(in-flight queries).
    """

    index: int
    query: CausalQuery
    options: dict[str, Any]  #: estimator/embedding/bootstrap/seed/...
    deadline: float | None  #: monotonic deadline, None = no timeout
    group: str | None = None  #: fairness group (daemon: one per tenant)
    state: QueryState = QueryState.PENDING
    table_key: CacheKey | None = None
    #: Ordered partial keys (range order) the finish task will merge.
    part_keys: list[CacheKey] = field(default_factory=list)
    #: Partial keys this record pinned (one refcount each; released at reap).
    pins: list[CacheKey] = field(default_factory=list)
    #: Ids of this query's unfinished collect tasks.
    waiting_on: set[int] = field(default_factory=set)
    collect_seconds: float = 0.0
    finish_task: int | None = None
    mode: str = ""  #: "warm" | "cold" once planned
    trace: str | None = None  #: telemetry trace id
    span: Span | None = None  #: open root ``query`` span


class _Worker:
    """One managed worker process plus its private task pipe."""

    def __init__(self, worker_id: int, process: multiprocessing.Process, tasks: Any) -> None:
        self.id = worker_id
        self.process = process
        self.tasks = tasks  #: multiprocessing.SimpleQueue of (task id, spec)
        self.task_id: int | None = None  #: task currently assigned, if any
        #: Dispatcher-side view of the worker's last heartbeat (monotonic)
        #: and its self-reported seconds on its current task.
        self.last_beat: float = time.monotonic()
        self.busy_seconds: float = 0.0
        #: True when the dispatcher terminated this worker on purpose (hung,
        #: or its query timed out): its death is expected — replaced, but
        #: not counted as a fault and not held against the circuit breaker.
        self.expected_death: bool = False


def _heartbeat_loop(worker_id: int, state: dict[str, Any], results: Any) -> None:
    """Worker-side daemon thread: report liveness + time-on-task forever.

    The beat carries the *worker's own* measurement of how long the main
    thread has been on its current task: a hang (sleep, deadlock, infinite
    loop) keeps this thread beating while the reported time-on-task grows
    without bound — exactly the signal the dispatcher's hang detector needs,
    and one ``Process.is_alive()`` can never provide.
    """
    while True:
        started = state.get("started")
        busy = 0.0 if started is None else time.monotonic() - started
        try:
            results.put((worker_id, None, "beat", busy, None))
        except BaseException:  # noqa: BLE001 - queue closed: session over
            return
        time.sleep(_HEARTBEAT_SECONDS)


def _service_worker_main(worker_id: int, spec: WorkerSpec, tasks: Any, results: Any) -> None:
    """Worker process entry point: run tasks off the private pipe forever.

    Every outcome — success or failure — is reported on the shared result
    queue; a worker that dies without reporting is detected by the
    dispatcher through its process handle, and a worker that *hangs* is
    detected through its heartbeats (see :func:`_heartbeat_loop`).  Errors
    cross the boundary as ``(type name, message, is-CaRL-error)`` triples:
    CaRL errors are deterministic semantic failures the scheduler must not
    retry, anything else is treated as a (possibly transient) fault and
    requeued.

    Every result message's fifth slot carries a drained telemetry batch —
    the worker's recorded spans/counters since the previous result — and the
    exit sentinel triggers a final drain shipped as ``"events"`` messages,
    so only a crash (``os._exit``) can lose worker-side telemetry.
    """
    _worker_init(spec)
    shard_module._WORKER_ID = worker_id  # noqa: SLF001 - fault-injection target id
    set_role("worker", worker_id)  # arms worker-only fault sites
    set_telemetry_role("worker", worker_id)  # w<id>.-prefixed trace/span ids
    registry = get_registry()
    beat_state: dict[str, Any] = {"started": None}
    threading.Thread(
        target=_heartbeat_loop,
        args=(worker_id, beat_state, results),
        name=f"carl-worker-{worker_id}-heartbeat",
        daemon=True,
    ).start()
    while True:
        item = tasks.get()
        if item is None:
            # Final drain: ship whatever the ring still holds before exit.
            batch = registry.drain_events()
            while batch is not None:
                try:
                    results.put((worker_id, None, "events", None, batch))
                except BaseException:  # noqa: BLE001 - queue closed: session over
                    break
                batch = registry.drain_events()
            return
        task_id, task_spec = item
        if fault_point("worker.crash", key=f"task-{task_id}") is not None:
            os._exit(23)
        hang = fault_point("worker.hang", key=f"task-{task_id}")
        slow = fault_point("worker.slow", key=f"task-{task_id}")
        beat_state["started"] = time.monotonic()
        try:
            if hang is not None:
                time.sleep(hang.delay)
            if slow is not None:
                time.sleep(slow.delay)
            if isinstance(task_spec, ShardTask):
                outcome: Any = _run_shard_task(task_spec)
            else:
                outcome = _run_finish_task(task_spec)
            stall = fault_point("worker.result_stall", key=f"task-{task_id}")
            if stall is not None:
                time.sleep(stall.delay)
            results.put((worker_id, task_id, "ok", outcome, registry.drain_events()))
        except BaseException as error:  # noqa: BLE001 - must cross the pipe
            results.put(
                (
                    worker_id,
                    task_id,
                    "error",
                    (type(error).__name__, str(error), isinstance(error, CaRLError)),
                    registry.drain_events(),
                )
            )
        finally:
            beat_state["started"] = None


class ShardScheduler:
    """Process-mode backend of a :class:`~repro.service.session.QuerySession`.

    Public surface (all thread-safe; everything else runs on the internal
    dispatcher thread):

    * :meth:`start` / :meth:`close` — spawn and tear down workers;
    * :meth:`submit` — register one parsed query (with per-query options,
      an optional timeout, and an optional fairness group) for scheduling;
    * :meth:`cancel` — drop a query before it completes;
    * :attr:`events` — queue of ``(index, QueryAnswer | QueryError)`` in
      completion order;
    * :meth:`stats` — a :class:`ServiceStats` snapshot plus live
      bookkeeping sizes (``live_records`` / ``live_tasks`` / ...).
    """

    def __init__(
        self,
        engine: "CaRLEngine",
        jobs: int,
        shards: int,
        retries: int,
        backend: str,
        *,
        hang_timeout: float | None = DEFAULT_HANG_TIMEOUT,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        backoff_seed: int = 0,
        circuit_threshold: int | None = None,
    ) -> None:
        if retries < 0:
            raise QueryError(f"retries must be >= 0, got {retries!r}")
        if hang_timeout is not None and hang_timeout <= 0:
            raise QueryError(f"hang_timeout must be positive or None, got {hang_timeout!r}")
        if backoff_base < 0 or backoff_cap < 0:
            raise QueryError("backoff_base and backoff_cap must be >= 0")
        if circuit_threshold is not None and circuit_threshold < 1:
            raise QueryError(
                f"circuit_threshold must be a positive integer, got {circuit_threshold!r}"
            )
        self._engine = engine
        self._jobs = jobs
        self._shards = shards
        self._retries = retries
        self._backend = backend
        self._hang_timeout = hang_timeout
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._backoff_seed = backoff_seed
        #: Consecutive unexpected worker failures (deaths or hangs, without
        #: an intervening task success) that open the circuit: the pool is
        #: abandoned and every query answers serially in-process.
        self._circuit_threshold = (
            circuit_threshold if circuit_threshold is not None else max(3, jobs + 2)
        )

        self.events: "queue.Queue[tuple[int, QueryAnswer | QueryError]]" = queue.Queue()
        self._lock = threading.RLock()
        self._stats = ServiceStats()  # guarded-by: _lock
        self._records: dict[int, _QueryRecord] = {}  # guarded-by: _lock
        self._tasks: dict[int, _Task] = {}  # guarded-by: _lock
        #: In-flight (PENDING/RUNNING) collect tasks by partial key — the
        #: within-session dedup that lets a threshold sweep share ranges.
        self._task_by_key: dict[CacheKey, int] = {}  # guarded-by: _lock
        #: Completed collect work: partial key → collection seconds, LRU up
        #: to ``_WARM_KEYS_CAP``.  Each entry holds one cache pin, released
        #: on LRU eviction or at close.  Replaces the DONE task rows the
        #: scheduler used to keep forever.
        self._warm_keys: "OrderedDict[CacheKey, float]" = OrderedDict()  # guarded-by: _lock
        #: Ready collect tasks, one deque per fairness group, drained
        #: round-robin (``_group_order`` is the rotation); finish tasks go
        #: to ``_priority`` and always run first.
        self._ready_groups: dict[str | None, deque[int]] = {}  # guarded-by: _lock
        self._group_order: deque[str | None] = deque()  # guarded-by: _lock
        self._priority: deque[int] = deque()  # guarded-by: _lock
        #: Backoff queue: ``(monotonic ready-at, task id)`` min-heap; tasks
        #: move to the ready deques when due (drained every dispatcher
        #: loop), so the heap is bounded by in-flight retried tasks.
        self._delayed: list[tuple[float, int]] = []  # guarded-by: _lock
        self._consecutive_failures = 0  # guarded-by: _lock
        self._circuit_open = False  # guarded-by: _lock
        self._ready_count = 0  # guarded-by: _lock
        self._last_queue_depth = -1  # guarded-by: _lock
        self._control: deque[tuple[str, int]] = deque()  # guarded-by: _lock
        self._next_task_id = 0  # guarded-by: _lock
        self._next_worker_id = 0
        self._workers: dict[int, _Worker] = {}
        self._results: Any = None
        #: Session-lifetime pins: the published engine-state artifacts
        #: (grounding + tables).  Partial-key pins live on their records and
        #: on ``_warm_keys`` entries instead.
        self._pinned: list[CacheKey] = []  # guarded-by: _lock
        self._cleanup_root: str | None = None
        self._cache: ArtifactCache | None = None
        self._spec: WorkerSpec | None = None
        self._inherit_token: str | None = None
        self._stop = threading.Event()
        self._dispatcher: threading.Thread | None = None
        #: Lazily created single thread for warm unit-table answers: they
        #: run `engine.answer` (merge + estimate + bootstrap), which must
        #: not stall the dispatcher's scheduling loop.
        self._warm_pool: ThreadPoolExecutor | None = None
        #: Serializes worker forks against in-flight warm answers: a child
        #: forked while the warm thread holds the engine's state lock (or a
        #: cache stats lock) would inherit it mid-acquire and deadlock, so
        #: spawns wait for the warm thread to go idle and vice versa.
        #: Per-scheduler: concurrent sessions fork independently (the
        #: engine hand-off is token-keyed, see repro.carl.shard).
        self._fork_lock = threading.Lock()
        self._closed = False  # guarded-by: _lock

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Publish the engine's shared state and spawn the worker pool."""
        cache = self._engine.cache
        if cache is None:
            # Uncached engine: shared state still crosses the process
            # boundary through an artifact cache — a private one that lives
            # (and dies) with the session, so nothing is reused across runs.
            self._cleanup_root = tempfile.mkdtemp(prefix="repro-service-")
            cache = ArtifactCache(self._cleanup_root)
        self._cache = cache
        # Sweep temp files a torn writer (crash between temp write and
        # rename) may have leaked in an earlier session.
        cache.reap_temp_files()
        inherit = (
            multiprocessing.get_start_method() == "fork"
            and not os.environ.get(NO_INHERIT_ENV)
        )
        if inherit:
            # Registered for the scheduler's whole lifetime: replacement
            # workers may fork at any point, and the token-keyed registry
            # lets any number of sessions fork concurrently.
            self._inherit_token = register_inheritable_engine(self._engine)
        self._spec = _publish_engine_state(
            self._engine,
            cache,
            inherit=inherit,
            # Lock-free by happens-before: start() runs once, before the
            # dispatcher thread and workers that contend on the lock exist.
            pinned=self._pinned,  # repro-lint: disable=lock-guarded-attr
            inherit_token=self._inherit_token,
        )
        self._results = multiprocessing.Queue()
        for _ in range(self._jobs):
            self._spawn_worker()
        self._dispatcher = threading.Thread(
            target=self._run_dispatcher, name="carl-service-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def close(self) -> None:
        """Stop the dispatcher, shut workers down, release pins.

        Idempotent.  In-flight work is abandoned: running tasks are left to
        their workers until the grace period expires, then the processes are
        terminated.  Partials already stored stay in a persistent cache
        (that is the shard-level reuse); the private cache of an uncached
        engine is deleted with the session.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=_DISPATCHER_JOIN)
        if self._warm_pool is not None:
            self._warm_pool.shutdown(wait=False)
        for worker in list(self._workers.values()):
            try:
                worker.tasks.put(None)
            except (OSError, ValueError):  # pragma: no cover - pipe already gone
                pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE
        for worker in list(self._workers.values()):
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=_SHUTDOWN_GRACE)
        if self._results is not None:
            # The exit sentinel triggered each worker's final telemetry
            # drain; the dispatcher thread is gone by now, so merge those
            # last batches (and any result-piggybacked stragglers) here.
            registry = get_registry()
            while True:
                try:
                    message = self._results.get_nowait()
                except (queue.Empty, OSError, ValueError):
                    break
                if isinstance(message, tuple) and len(message) == 5:
                    merge_worker_batch(registry, message[4], worker=message[0])
            self._results.close()
        unregister_inheritable_engine(self._inherit_token)
        self._inherit_token = None
        if self._cache is not None:
            with self._lock:
                for record in self._records.values():
                    for key in record.pins:
                        self._cache.unpin(key)
                    record.pins.clear()
                for key in self._warm_keys:
                    self._cache.unpin(key)
                self._warm_keys.clear()
                for key in self._pinned:
                    self._cache.unpin(key)
                self._pinned.clear()
        if self._cleanup_root is not None:
            shutil.rmtree(self._cleanup_root, ignore_errors=True)

    # ------------------------------------------------------------------
    # public API (user threads)
    # ------------------------------------------------------------------
    def submit(
        self,
        index: int,
        query: CausalQuery,
        options: dict[str, Any],
        timeout: float | None,
        group: str | None = None,
    ) -> None:
        """Register one parsed query; planning happens on the dispatcher.

        ``group`` labels the query for fair scheduling: ready collect tasks
        are drained round-robin across groups, so one group's deep backlog
        cannot starve another's (the daemon passes one group per tenant).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            if self._closed:
                raise QueryError("the query session is closed")
            self._records[index] = _QueryRecord(
                index=index,
                query=query,
                options=dict(options),
                deadline=deadline,
                group=group,
            )
            self._control.append(("plan", index))

    def cancel(self, index: int) -> bool:
        """Drop a query; True when it will never emit an event."""
        with self._lock:
            record = self._records.get(index)
            if record is None or record.state in (QueryState.DONE, QueryState.FAILED):
                return False
            if record.state is QueryState.CANCELLED:
                return True
            record.state = QueryState.CANCELLED
            self._stats.cancelled += 1
            self._control.append(("cancelled", index))
        get_registry().count("scheduler.cancelled")
        return True

    def stats(self) -> dict[str, int]:
        with self._lock:
            snapshot = self._stats.as_dict()
            snapshot["live_records"] = len(self._records)
            snapshot["live_tasks"] = len(self._tasks)
            snapshot["warm_keys"] = len(self._warm_keys)
            snapshot["ready_tasks"] = self._ready_count
            snapshot["delayed_tasks"] = len(self._delayed)
            snapshot["circuit_open"] = int(self._circuit_open)
            snapshot["pinned_keys"] = (
                len(self._pinned)
                + len(self._warm_keys)
                + sum(len(record.pins) for record in self._records.values())
            )
        return snapshot

    # ------------------------------------------------------------------
    # ready-queue plumbing (callers hold the lock)
    # ------------------------------------------------------------------
    def _enqueue_ready_locked(self, task: _Task, front: bool = False) -> None:
        group = task.group
        dq = self._ready_groups.get(group)
        if dq is None:
            dq = self._ready_groups[group] = deque()
            self._group_order.append(group)
        if front:
            dq.appendleft(task.id)
        else:
            # A front re-enqueue (no eligible worker this round) keeps the
            # original ready instant: queue-wait measures ready -> assigned.
            task.ready_since = time.monotonic()
            dq.append(task.id)
        self._ready_count += 1

    def _pop_ready_locked(self) -> int | None:
        if self._priority:
            self._ready_count -= 1
            return self._priority.popleft()
        for _ in range(len(self._group_order)):
            group = self._group_order.popleft()
            dq = self._ready_groups.get(group)
            if not dq:
                # Drained group: drop it from the rotation (re-added on the
                # next enqueue), so departed tenants do not accumulate.
                self._ready_groups.pop(group, None)
                continue
            task_id = dq.popleft()
            self._group_order.append(group)
            self._ready_count -= 1
            return task_id
        return None

    def _emit_queue_depth_locked(self) -> None:
        if self._ready_count != self._last_queue_depth:
            self._last_queue_depth = self._ready_count
            get_registry().gauge("scheduler.queue_depth", self._ready_count)

    # ------------------------------------------------------------------
    # warm partial-key bookkeeping (callers hold the lock)
    # ------------------------------------------------------------------
    def _remember_warm_locked(self, key: CacheKey, seconds: float) -> None:
        """Record completed collect work for ``key`` (pinned, LRU-bounded)."""
        if key in self._warm_keys:
            self._warm_keys.move_to_end(key)
            self._warm_keys[key] = max(self._warm_keys[key], seconds)
            return
        self._cache.pin(key)
        self._warm_keys[key] = seconds
        while len(self._warm_keys) > _WARM_KEYS_CAP:
            evicted, _ = self._warm_keys.popitem(last=False)
            self._cache.unpin(evicted)

    def _forget_warm_locked(self, key: CacheKey) -> None:
        if self._warm_keys.pop(key, None) is not None:
            self._cache.unpin(key)

    # ------------------------------------------------------------------
    # dispatcher thread
    # ------------------------------------------------------------------
    def _run_dispatcher(self) -> None:
        try:
            while not self._stop.is_set():
                self._drain_control()
                self._reap_dead_workers()
                self._check_hung_workers()
                self._expire_deadlines()
                self._release_delayed()
                self._assign_ready_tasks()
                try:
                    message = self._results.get(timeout=_POLL_SECONDS)
                except queue.Empty:
                    continue
                except (OSError, ValueError):  # pragma: no cover - queue closed
                    break
                self._handle_result(message)
        except BaseException as error:  # noqa: BLE001 - dispatcher must not die silently
            self._fail_all_live(
                QueryError(f"the service dispatcher failed: {error}")
            )

    def _drain_control(self) -> None:
        while True:
            with self._lock:
                if not self._control:
                    return
                action, index = self._control.popleft()
            if action == "plan":
                self._plan(index)
            elif action == "cancelled":
                self._detach_query(index)

    # -- planning -------------------------------------------------------
    def _plan(self, index: int) -> None:
        with self._lock:
            record = self._records.get(index)
            if record is None or record.state is not QueryState.PENDING:
                return
        options = record.options
        telemetry = get_registry()
        span_meta: dict[str, Any] = {"executor": "process"}
        if record.group is not None:
            span_meta["tenant"] = record.group
        record.span = telemetry.start_span("query", index=index, **span_meta)
        record.trace = record.span.trace
        with self._lock:
            circuit_open = self._circuit_open
        if circuit_open:
            # The pool is gone (circuit breaker): answer serially without
            # planning any tasks.
            self._fallback_serial(record, reason="circuit_open")
            return
        ground_span = telemetry.start_span(
            "query.ground", trace=record.trace, parent=record.span
        )
        try:
            plan = _plan_query(
                self._engine,
                self._cache,
                self._spec,
                str(index),
                record.query,
                options["embedding"],
                self._backend,
            )
        except Exception as error:  # noqa: BLE001 - a plan failure is per-query
            telemetry.finish_span(ground_span)
            self._finish_query(index, self._as_query_error(error))
            return
        telemetry.finish_span(ground_span, cached=plan.cached)
        if plan.cached:
            # Warm unit table: the serial warm path (load + estimate)
            # answers without any scheduling — but `engine.answer` can be
            # slow (bootstrap), so it runs on a helper thread rather than
            # stalling the dispatcher's deadline/death/assignment loop.
            with self._lock:
                if record.state is not QueryState.PENDING:
                    return  # cancelled while planning
                record.state = QueryState.RUNNING
                record.mode = "warm"
            self._submit_serial_answer(record, "warm")
            return

        with self._lock:
            if record.state is not QueryState.PENDING:
                # cancel() raced the unlocked planning phase above: the
                # query must never transition to RUNNING (or enqueue tasks)
                # once it has been cancelled.
                return
            record.state = QueryState.RUNNING
            record.mode = "cold"
            record.table_key = plan.table_key
            for start, stop in shard_ranges(plan.n_units, self._shards):
                if start == stop:
                    continue
                result_key = shard_partial_key(
                    self._spec.database_fingerprint,
                    self._spec.program_fingerprint,
                    plan.signature,
                    start,
                    stop,
                    plan.n_units,
                )
                record.part_keys.append(result_key)
                # One pin per referencing record, released when the record
                # is reaped — eviction can never pull a partial out from
                # under a query that will merge it.
                self._cache.pin(result_key)
                record.pins.append(result_key)
                existing_id = self._task_by_key.get(result_key)
                if existing_id is not None:
                    # The range is already being collected for another live
                    # query of this session (same collection signature):
                    # share its in-flight work.
                    task = self._tasks[existing_id]
                    task.queries.add(index)
                    record.waiting_on.add(task.id)
                    continue
                warm_seconds = self._warm_keys.get(result_key)
                if warm_seconds is not None:
                    if self._cache.contains(result_key):
                        # Completed earlier in this session: no probe, no
                        # task — the partial is on disk and pinned.
                        self._warm_keys.move_to_end(result_key)
                        record.collect_seconds += warm_seconds
                        continue
                    # Evicted externally despite the pin (best-effort
                    # protection): forget it and re-collect below.
                    self._forget_warm_locked(result_key)
                spec = ShardTask(
                    query=record.query,
                    start=start,
                    stop=stop,
                    n_units=plan.n_units,
                    result_key=result_key,
                )
                if self._cache.load(result_key) is not None:
                    # Shard-level cache reuse: the partial already exists
                    # (verified), so this range needs no collection at all.
                    # Remembered as a warm key so later queries of the
                    # session skip the probe instead of repeating it.
                    self._stats.collect_cache_hits += 1
                    self._remember_warm_locked(result_key, 0.0)
                    continue
                task = _Task(
                    id=self._next_task_id,
                    kind="collect",
                    spec=spec,
                    queries={index},
                    group=record.group,
                    trace=record.trace,
                    parent=record.span.span_id if record.span is not None else None,
                )
                self._next_task_id += 1
                self._tasks[task.id] = task
                self._task_by_key[result_key] = task.id
                self._enqueue_ready_locked(task)
                record.waiting_on.add(task.id)
            if not record.waiting_on:
                self._enqueue_finish_locked(record)
            self._emit_queue_depth_locked()

    def _enqueue_finish_locked(self, record: _QueryRecord) -> None:
        """All collects of a query are resolved: schedule its finish task.

        Caller must hold the lock."""
        options = record.options
        task = _Task(
            id=self._next_task_id,
            kind="finish",
            spec=FinishTask(
                query=record.query,
                part_keys=tuple(record.part_keys),
                table_key=record.table_key,
                collect_seconds=record.collect_seconds,
                estimator=options["estimator"],
                embedding=options["embedding"],
                bootstrap=options["bootstrap"],
                seed=options["seed"],
            ),
            queries={record.index},
            group=record.group,
            trace=record.trace,
            parent=record.span.span_id if record.span is not None else None,
        )
        self._next_task_id += 1
        self._tasks[task.id] = task
        # Finish tasks jump the queue: a ready finish completes a query *now*,
        # and streaming is about completion latency — collect tasks of later
        # queries can wait one task's worth of time.
        task.ready_since = time.monotonic()
        self._priority.append(task.id)
        self._ready_count += 1
        record.finish_task = task.id

    # -- serial in-process answering (warm path + fallback) -------------
    def _submit_serial_answer(self, record: _QueryRecord, mode: str) -> None:
        """Answer one query with serial ``engine.answer`` on the helper thread.

        Shared by the warm path (``mode="warm"``: the unit table is cached)
        and the degraded paths (``mode="serial"``: pool circuit open, or the
        artifact store out of space).  Either way the answer is the serial
        engine's own — bit-identity is by construction, so every fallback
        trades throughput, never correctness.
        """
        options = record.options
        index = record.index
        with self._lock:
            if self._warm_pool is None:
                self._warm_pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="carl-service-warm"
                )

        def _answer() -> None:
            finish_span = get_registry().start_span(
                "query.finish", trace=record.trace, parent=record.span, mode=mode
            )
            try:
                with self._fork_lock:
                    answer = self._engine.answer(
                        record.query,
                        estimator=options["estimator"],
                        embedding=options["embedding"],
                        bootstrap=options["bootstrap"],
                        seed=options["seed"],
                        backend=self._backend,
                    )
            except Exception as error:  # noqa: BLE001 - per-query failure
                get_registry().finish_span(finish_span, outcome="error")
                self._finish_query(index, self._as_query_error(error))
            else:
                get_registry().finish_span(finish_span, outcome="ok")
                self._finish_query(index, answer)

        self._warm_pool.submit(_answer)

    def _fallback_serial(self, record: _QueryRecord, reason: str) -> None:
        """Detach one query from the pool and answer it serially instead."""
        with self._lock:
            if record.state not in (QueryState.PENDING, QueryState.RUNNING):
                return  # cancelled or already resolved
            record.state = QueryState.RUNNING
            record.mode = "serial"
            record.waiting_on.clear()
            record.finish_task = None
            for task in list(self._tasks.values()):
                if record.index not in task.queries:
                    continue
                task.queries.discard(record.index)
                if not task.queries and task.state is TaskState.PENDING:
                    # Nobody else needs it: cancel (running tasks are left
                    # to finish — their partials become warm cache entries).
                    task.state = TaskState.CANCELLED
                    self._reap_task_locked(task)
            self._stats.serial_fallbacks += 1
        get_registry().count("scheduler.serial_fallback", reason=reason)
        self._submit_serial_answer(record, "serial")

    def _task_degraded(self, task_id: int, text: str) -> None:
        """A worker reported ``CacheDegradedError``: go serial, don't retry."""
        fallback: list[_QueryRecord] = []
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None or task.state is not TaskState.RUNNING:
                self._stats.reaped_results += 1
                return
            task.state = TaskState.CANCELLED
            task.worker = None
            if task.span is not None:
                get_registry().finish_span(task.span, outcome="fault")
                task.span = None
            affected = sorted(task.queries)
            self._reap_task_locked(task)
            for index in affected:
                record = self._records.get(index)
                if (
                    record is not None
                    and record.state is QueryState.RUNNING
                    and record.mode != "serial"
                ):
                    fallback.append(record)
        for record in fallback:
            self._fallback_serial(record, reason="store_degraded")

    def _open_circuit(self) -> None:
        """Repeated worker replacement failed: abandon the pool for good.

        Remaining workers are killed and never replaced, every live task is
        cancelled, and every cold query — in flight and future — answers
        serially in-process (``scheduler.serial_fallback`` telemetry,
        ``circuit_open`` stats flag, surfaced as ``degraded`` in the
        daemon's stats).  Serial answers are bit-identical by construction:
        the breaker trades throughput for availability, never correctness.
        """
        with self._lock:
            if self._circuit_open:
                return
            self._circuit_open = True
        get_registry().count("scheduler.circuit_open")
        # Black box first, remediation second: snapshot the telemetry ring
        # while it still shows the failure run-up (docs/observability.md).
        dump_flight_recording("circuit_open")
        for worker in list(self._workers.values()):
            worker.task_id = None
            self._kill_worker(worker)
        fallback: list[_QueryRecord] = []
        with self._lock:
            for task in list(self._tasks.values()):
                if task.state in (TaskState.PENDING, TaskState.RUNNING):
                    task.state = TaskState.CANCELLED
                    if task.span is not None:
                        get_registry().finish_span(task.span, outcome="cancelled")
                        task.span = None
                    self._reap_task_locked(task)
            for record in self._records.values():
                if record.state is QueryState.RUNNING and record.mode == "cold":
                    fallback.append(record)
        for record in fallback:
            self._fallback_serial(record, reason="circuit_open")

    # -- workers --------------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        tasks: Any = multiprocessing.SimpleQueue()
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = multiprocessing.Process(
            target=_service_worker_main,
            args=(worker_id, self._spec, tasks, self._results),
            name=f"carl-service-worker-{worker_id}",
            daemon=True,
        )
        # The fork-inherited engine crosses through the token-keyed registry
        # in repro.carl.shard, which the child snapshots at fork time — no
        # global spawn lock needed, so concurrent sessions fork without
        # blocking each other.  The per-scheduler fork lock keeps the fork
        # out of any window where this session's warm-answer thread holds an
        # engine or cache lock.
        with self._fork_lock:
            process.start()
        worker = _Worker(worker_id, process, tasks)
        self._workers[worker_id] = worker
        with self._lock:
            self._stats.workers_spawned += 1
        return worker

    def _reap_dead_workers(self) -> None:
        for worker in [w for w in self._workers.values() if not w.process.is_alive()]:
            del self._workers[worker.id]
            if not worker.expected_death:
                with self._lock:
                    self._stats.worker_deaths += 1
                    self._consecutive_failures += 1
                get_registry().count("scheduler.worker_death")
            task_id = worker.task_id
            if task_id is not None:
                self._task_faulted(
                    task_id,
                    worker.id,
                    QueryError(
                        f"shard worker {worker.id} died (exit code "
                        f"{worker.process.exitcode}) while running a task"
                    ),
                    retryable=True,
                )
            if self._stop.is_set():
                continue
            with self._lock:
                trip_circuit = (
                    not self._circuit_open
                    and self._consecutive_failures >= self._circuit_threshold
                )
                circuit_open = self._circuit_open or trip_circuit
            if trip_circuit:
                self._open_circuit()
            if not circuit_open:
                # Keep the pool at strength: a replacement inherits (or
                # rebuilds) the engine exactly like the workers before it.
                self._spawn_worker()

    def _check_hung_workers(self) -> None:
        """Kill and replace workers whose heartbeats say they are stuck.

        Two signals, both bounded by ``hang_timeout``: the worker reports a
        time-on-task over the bound (main thread wedged while the heartbeat
        thread still beats), or the beats themselves stopped while a task is
        assigned (the whole process is wedged below Python).  The kill shows
        up to :meth:`_reap_dead_workers` as an *expected* death — replaced,
        and the task requeued against the retry budget with this worker
        excluded — but a hang still counts toward the circuit breaker: a
        pool that hangs every replacement is as unusable as one that
        crashes them.
        """
        if self._hang_timeout is None:
            return
        now = time.monotonic()
        for worker in list(self._workers.values()):
            if worker.task_id is None or worker.expected_death:
                continue
            stuck = worker.busy_seconds > self._hang_timeout
            silent = now - worker.last_beat > self._hang_timeout
            if not (stuck or silent):
                continue
            with self._lock:
                self._stats.worker_hangs += 1
                self._consecutive_failures += 1
            get_registry().count("scheduler.worker_killed", reason="hung")
            dump_flight_recording("worker_kill")
            self._kill_worker(worker)
            self._task_faulted(
                worker.task_id,
                worker.id,
                QueryError(
                    f"shard worker {worker.id} hung (over {self._hang_timeout:g}s "
                    "on one task) and was killed"
                ),
                retryable=True,
            )
            worker.task_id = None

    def _kill_worker(self, worker: _Worker) -> None:
        """Terminate a worker on purpose; the reap loop replaces it."""
        worker.expected_death = True
        with self._lock:
            self._stats.workers_killed += 1
        try:
            worker.process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass

    def _release_delayed(self) -> None:
        """Move backed-off tasks whose delay elapsed into the ready queues."""
        with self._lock:
            if not self._delayed:
                return
            now = time.monotonic()
            released = False
            while self._delayed and self._delayed[0][0] <= now:
                _, task_id = heapq.heappop(self._delayed)
                task = self._tasks.get(task_id)
                if task is None or task.state is not TaskState.PENDING:
                    continue  # resolved or cancelled while waiting
                self._enqueue_ready_locked(task)
                released = True
            if released:
                self._emit_queue_depth_locked()

    def _backoff_seconds(self, task: _Task) -> float:
        """The seeded-jitter exponential backoff before retry ``task.attempts``."""
        if self._backoff_base <= 0.0:
            return 0.0
        exponential = min(
            self._backoff_cap, self._backoff_base * 2 ** max(0, task.attempts - 1)
        )
        digest = hashlib.sha256(
            f"{self._backoff_seed}:{task.kind}:{task.id}:{task.attempts}".encode()
        ).digest()
        jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**65
        return exponential * jitter

    def _assign_ready_tasks(self) -> None:
        with self._lock:
            if not self._ready_count:
                return
            idle = [w for w in self._workers.values() if w.task_id is None]
            if not idle:
                return
            alive_ids = set(self._workers)
            deferred: list[_Task] = []
            while idle:
                task_id = self._pop_ready_locked()
                if task_id is None:
                    break
                task = self._tasks.get(task_id)
                if task is None or task.state is not TaskState.PENDING:
                    continue
                eligible = [w for w in idle if w.id not in task.excluded]
                if not eligible:
                    if task.excluded >= alive_ids:
                        # Every live worker already faulted on this task:
                        # exclusion would deadlock it, so any worker may
                        # retry (the budget still bounds total attempts).
                        eligible = idle
                    else:
                        deferred.append(task)
                        continue
                worker = eligible[0]
                idle.remove(worker)
                worker.task_id = task.id
                task.state = TaskState.RUNNING
                task.worker = worker.id
                task.attempts += 1
                if task.ready_since:
                    get_registry().histogram(
                        "scheduler.queue_wait",
                        time.monotonic() - task.ready_since,
                        kind=task.kind,
                    )
                if task.kind == "collect":
                    self._stats.collect_tasks_run += 1
                    task.span = get_registry().start_span(
                        "query.collect",
                        trace=task.trace,
                        parent=task.parent,
                        start=task.spec.start,
                        stop=task.spec.stop,
                        worker=worker.id,
                        attempt=task.attempts,
                    )
                else:
                    self._stats.finish_tasks_run += 1
                    task.span = get_registry().start_span(
                        "query.finish",
                        trace=task.trace,
                        parent=task.parent,
                        mode="cold",
                        worker=worker.id,
                    )
                # Ship the task with *this attempt's* trace context: worker
                # telemetry re-parents under the span just opened, so retry
                # attempts stitch under their own collect/finish span.
                worker.tasks.put(
                    (
                        task.id,
                        dataclass_replace(
                            task.spec, trace=task.trace, parent=task.span.span_id
                        ),
                    )
                )
            for task in deferred:
                # No eligible idle worker this round: back to the front of
                # the task's own group so fairness is preserved.
                self._enqueue_ready_locked(task, front=True)
            self._emit_queue_depth_locked()

    # -- results --------------------------------------------------------
    def _handle_result(self, message: tuple[int, int | None, str, Any, Any]) -> None:
        worker_id, task_id, status, payload, batch = message
        if status == "beat":
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker.last_beat = time.monotonic()
                worker.busy_seconds = float(payload)
            return
        # Merge the piggybacked worker telemetry before resolving the task:
        # worker spans/counters must be visible by the time the task's own
        # span closes, whatever the task outcome (even a reaped result).
        merge_worker_batch(get_registry(), batch, worker=worker_id)
        if status == "events":
            return  # a final-drain shipment: telemetry only, no task state
        worker = self._workers.get(worker_id)
        if worker is not None and worker.task_id == task_id:
            worker.task_id = None
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None or task.state is not TaskState.RUNNING:
                self._stats.reaped_results += 1
                return
        if status == "ok":
            self._task_succeeded(task, payload)
            return
        type_name, text, is_carl = payload
        if type_name == "CacheDegradedError":
            # The store is out of space: retrying the write cannot help, and
            # failing the query would break the degrade-to-uncached promise.
            # Answer the affected queries serially in-process instead.
            self._task_degraded(task_id, text)
            return
        error = QueryError(
            f"shard worker {worker_id} failed while running a "
            f"{task.kind} task: {type_name}: {text}"
        )
        self._task_faulted(task_id, worker_id, error, retryable=not is_carl)

    def _task_succeeded(self, task: _Task, payload: Any) -> None:
        emit: list[tuple[int, QueryAnswer | QueryError]] = []
        with self._lock:
            task.state = TaskState.DONE
            task.worker = None
            self._consecutive_failures = 0  # the pool is productive again
            if task.kind == "collect":
                _, task.seconds = payload
                for index in sorted(task.queries):
                    record = self._records.get(index)
                    if record is None or record.state is not QueryState.RUNNING:
                        continue
                    record.waiting_on.discard(task.id)
                    record.collect_seconds += task.seconds
                    if not record.waiting_on and record.finish_task is None:
                        self._enqueue_finish_locked(record)
                # Reap the task row: the partial is on disk, so all later
                # queries need is the warm key (bounded LRU, pinned).
                self._remember_warm_locked(task.spec.result_key, task.seconds)
                self._reap_task_locked(task)
            else:
                # A finish task can lose its (single) query to a serial
                # failover before its result lands; nothing to emit then.
                for index in sorted(task.queries):
                    emit.append((index, payload))
                self._reap_task_locked(task)
        if task.span is not None:
            get_registry().finish_span(task.span, outcome="ok")
            task.span = None
        for index, outcome in emit:
            self._finish_query(index, outcome)

    def _reap_task_locked(self, task: _Task) -> None:
        """Drop a resolved task's row (caller holds the lock)."""
        if self._tasks.pop(task.id, None) is not None:
            self._stats.tasks_reaped += 1
        if task.kind == "collect":
            key = task.spec.result_key
            if self._task_by_key.get(key) == task.id:
                del self._task_by_key[key]

    def _task_faulted(
        self, task_id: int, worker_id: int, error: QueryError, retryable: bool
    ) -> None:
        """A task's execution failed: requeue it or fail its queries."""
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None or task.state not in (TaskState.RUNNING, TaskState.PENDING):
                self._stats.reaped_results += 1
                return
            task.worker = None
            task.excluded.add(worker_id)
            if task.span is not None:
                get_registry().finish_span(task.span, outcome="fault")
                task.span = None
            if retryable and task.attempts <= self._retries:
                # Requeue: the next assignment avoids the faulting worker
                # (a replacement for a dead one has a fresh id and is
                # eligible).  attempts counts executions, so a task is run
                # at most 1 + retries times.  The requeue waits out an
                # exponential backoff with deterministic seeded jitter —
                # simultaneous faults fan out instead of stampeding the
                # replacement worker, and a replay waits identical delays.
                task.state = TaskState.PENDING
                self._stats.retries += 1
                backoff = self._backoff_seconds(task)
                if backoff > 0.0:
                    heapq.heappush(
                        self._delayed, (time.monotonic() + backoff, task.id)
                    )
                else:
                    self._enqueue_ready_locked(task)
                    self._emit_queue_depth_locked()
                get_registry().count(
                    "scheduler.retry",
                    kind=task.kind,
                    backoff_ms=int(backoff * 1000),
                )
                get_registry().histogram("scheduler.retry_backoff", backoff)
                return
            task.state = TaskState.FAILED
            affected = sorted(task.queries)
        budget_note = (
            f" (after {task.attempts} attempts; retry budget {self._retries})"
            if retryable
            else ""
        )
        for index in affected:
            self._finish_query(
                index, QueryError(f"{error}{budget_note}"), failed_task=task_id
            )
        with self._lock:
            failed = self._tasks.get(task_id)
            if failed is not None:
                self._reap_task_locked(failed)

    # -- query completion / detachment ---------------------------------
    def _finish_query(
        self,
        index: int,
        outcome: QueryAnswer | QueryError,
        failed_task: int | None = None,
        kill_reason: str = "orphaned",
    ) -> None:
        """Resolve one query, emit its event (unless cancelled), reap it."""
        with self._lock:
            record = self._records.get(index)
            if record is None or record.state in (QueryState.DONE, QueryState.FAILED):
                return
            cancelled = record.state is QueryState.CANCELLED
            record.state = (
                QueryState.FAILED if isinstance(outcome, QueryError) else QueryState.DONE
            )
            if cancelled:
                record.state = QueryState.CANCELLED
        self._release_query_tasks(index, keep=failed_task, kill_reason=kill_reason)
        if not cancelled:
            self.events.put((index, outcome))
        self._reap_record(index)

    def _detach_query(self, index: int) -> None:
        self._release_query_tasks(index, keep=None, kill_reason="cancelled")
        self._reap_record(index)

    def _reap_record(self, index: int) -> None:
        """Drop a resolved/cancelled query's record and release its pins."""
        with self._lock:
            record = self._records.pop(index, None)
            if record is None:
                return
            self._stats.records_reaped += 1
            if record.finish_task is not None:
                finish = self._tasks.get(record.finish_task)
                if finish is not None and finish.state in (
                    TaskState.CANCELLED,
                    TaskState.FAILED,
                    TaskState.DONE,
                ):
                    self._reap_task_locked(finish)
            if self._cache is not None:
                for key in record.pins:
                    self._cache.unpin(key)
                record.pins.clear()
            span = record.span
            record.span = None
        if span is not None:
            outcome = "cancelled" if record.state is QueryState.CANCELLED else (
                "error" if record.state is QueryState.FAILED else "ok"
            )
            meta: dict[str, Any] = {"outcome": outcome}
            if record.mode:
                meta["mode"] = record.mode
            get_registry().finish_span(span, **meta)
            if span.t1 is not None:
                get_registry().histogram("query.duration", span.t1 - span.t0, **meta)

    def _release_query_tasks(
        self, index: int, keep: int | None, kill_reason: str = "orphaned"
    ) -> None:
        """Detach a resolved/cancelled query from its tasks; drop orphans.

        A pending task no other live query needs is cancelled outright.  A
        *running* orphan gets its worker killed and replaced: letting it run
        to completion would leave a timed-out query's worker occupying a pool
        slot for arbitrarily long — exactly the slot exhaustion deadline
        expiry exists to prevent.  The kill is an expected death (replaced by
        the reap loop, not counted as a fault), emitted as
        ``scheduler.worker_killed`` with the triggering reason.
        """
        kills: list[_Worker] = []
        with self._lock:
            orphans: list[_Task] = []
            for task in self._tasks.values():
                if index not in task.queries or task.id == keep:
                    continue
                live = {
                    q
                    for q in task.queries
                    if q != index
                    and (record := self._records.get(q)) is not None
                    and record.state in (QueryState.PENDING, QueryState.RUNNING)
                }
                if live:
                    continue
                if task.state is TaskState.PENDING:
                    task.state = TaskState.CANCELLED
                    orphans.append(task)
                elif task.state is TaskState.RUNNING:
                    worker = (
                        self._workers.get(task.worker)
                        if task.worker is not None
                        else None
                    )
                    task.state = TaskState.CANCELLED
                    task.worker = None
                    if task.span is not None:
                        get_registry().finish_span(task.span, outcome="cancelled")
                        task.span = None
                    orphans.append(task)
                    if worker is not None and not worker.expected_death:
                        worker.task_id = None
                        kills.append(worker)
            for task in orphans:
                # The id may still sit in a ready deque; the assignment loop
                # skips ids whose task row is gone.
                self._reap_task_locked(task)
        if kills:
            dump_flight_recording("worker_kill")
        for worker in kills:
            get_registry().count("scheduler.worker_killed", reason=kill_reason)
            self._kill_worker(worker)

    def _expire_deadlines(self) -> None:
        now = time.monotonic()
        expired: list[int] = []
        with self._lock:
            for record in self._records.values():
                if (
                    record.deadline is not None
                    and record.state in (QueryState.PENDING, QueryState.RUNNING)
                    and now >= record.deadline
                ):
                    expired.append(record.index)
                    self._stats.timeouts += 1
        for index in expired:
            get_registry().count("scheduler.timeout")
            self._finish_query(
                index,
                QueryError(f"query {index} timed out before completing"),
                kill_reason="deadline",
            )

    def _fail_all_live(self, error: QueryError) -> None:
        with self._lock:
            live = [
                record.index
                for record in self._records.values()
                if record.state in (QueryState.PENDING, QueryState.RUNNING)
            ]
        for index in live:
            self._finish_query(index, error)

    @staticmethod
    def _as_query_error(error: Exception) -> QueryError:
        return error if isinstance(error, QueryError) else QueryError(str(error))
