"""Futures-style query sessions with incremental answers (``docs/service.md``).

A :class:`QuerySession` is the analyst-facing surface of the streaming
service: queries go in one at a time (:meth:`~QuerySession.submit`), answers
come out the moment they are ready (:meth:`~QuerySession.as_completed`,
:meth:`~QuerySession.result`), and a long sweep survives individual query
failures — each failed query yields its own
:class:`~repro.carl.errors.QueryError` event instead of killing the batch.

Two executors back a session:

* ``executor="thread"`` — each query runs as one
  :meth:`~repro.carl.engine.CaRLEngine.answer` call on a thread pool,
  sharing graph-walk intermediates through a session-scoped
  :class:`~repro.carl.batch.BatchScratch` (the PR 3 machinery);
* ``executor="process"`` — queries are decomposed into shard-level collect
  tasks plus a finish task and run by the
  :class:`~repro.service.scheduler.ShardScheduler`'s managed worker
  processes, with retry-and-requeue on worker faults and shard-level cache
  reuse.  A :class:`~repro.service.daemon.QueryDaemon` session is backed by
  the daemon's *shared* scheduler through a per-tenant admission facade
  instead of a private one.

Either way, every completed answer is **bit-identical** to the serial
``engine.answer`` of the same query with the same options.

Long-lived sessions are safe by construction (PR 7):

* bookkeeping is **O(in-flight)** — a delivered outcome's live bookkeeping
  is dropped the moment it is consumed (the most recent
  :data:`DELIVERED_KEEP` outcomes stay re-readable through
  :meth:`~QuerySession.result`, older ones are reaped for good);
* ``max_pending`` bounds the undelivered backlog: a submit over the bound
  raises :class:`QueueFullError` immediately, or blocks up to
  ``submit_timeout`` seconds for space before raising.

Guarantees (see ``docs/service.md`` for the fine print):

* *completion order*: events arrive as queries finish, not as submitted;
* *cancellation*: a query cancelled before its event was delivered never
  yields one;
* *timeouts*: a query past its deadline yields a ``QueryError``; its
  in-flight shard tasks are reaped — a worker still running one is killed
  and replaced (it must not occupy a pool slot for the rest of its task),
  and late results are discarded;
* *isolation*: one query's failure, timeout or cancellation never affects
  another query's answer.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Iterator

from repro.carl.ast import CausalQuery
from repro.carl.batch import BatchScratch
from repro.carl.errors import CaRLError, QueryError
from repro.carl.parser import parse_query
from repro.faults.injection import fault_point
from repro.observability.telemetry import get_registry
from repro.service.scheduler import DEFAULT_HANG_TIMEOUT, ShardScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.carl.engine import CaRLEngine

#: Seconds the event loop blocks per poll while waiting for the next event
#: (also the granularity of thread-mode deadline enforcement).
_POLL_SECONDS = 0.02

#: Delivered outcomes kept for idempotent :meth:`QuerySession.result`
#: re-reads.  Older delivered queries are reaped completely — that is what
#: keeps a long-lived session's memory flat.
DELIVERED_KEEP = 256

#: Cancelled/suppressed indexes remembered (for idempotent re-cancel and
#: the "was cancelled" error out of :meth:`QuerySession.result`).
SUPPRESSED_KEEP = 1024


class QueueFullError(QueryError):
    """Raised by :meth:`QuerySession.submit` when the session's pending
    backlog is at ``max_pending`` (after waiting ``submit_timeout`` seconds,
    when one is configured).  Subclasses :class:`QueryError`, so existing
    error handling keeps working; catch it specifically to shed load."""


class QuerySession:
    """A streaming query session over one engine.

    Create through :meth:`repro.carl.engine.CaRLEngine.open_session` (or
    directly); use as a context manager so workers are always torn down::

        with engine.open_session(jobs=4, executor="process") as session:
            for text in sweep:
                session.submit(text)
            for index, outcome in session.as_completed():
                ...  # QueryAnswer, or QueryError for that query alone

    Thread-safe: ``submit`` / ``cancel`` / ``stats`` may be called from any
    thread, also while another thread iterates ``as_completed``.  The
    *engine* must not be mutated (or used for process batches) while a
    process-mode session is open — see ``docs/service.md``.

    ``max_pending`` bounds the undelivered backlog (submitted but not yet
    delivered or cancelled): a submit over the bound raises
    :class:`QueueFullError` — immediately, or after blocking up to
    ``submit_timeout`` seconds for capacity.

    ``_backend`` (internal) injects a scheduler-like backend — an object
    with ``submit/cancel/stats/close`` and an ``events`` queue — in place of
    a private :class:`~repro.service.scheduler.ShardScheduler`; the
    :class:`~repro.service.daemon.QueryDaemon` uses it to multiplex many
    tenant sessions over one shared scheduler.
    """

    def __init__(
        self,
        engine: "CaRLEngine",
        jobs: int | None = 1,
        executor: str = "thread",
        shards: int | None = None,
        retries: int = 2,
        estimator: str | None = None,
        embedding: str | None = None,
        bootstrap: int = 0,
        seed: int = 0,
        backend: str | None = None,
        max_pending: int | None = None,
        submit_timeout: float | None = None,
        hang_timeout: float | None = DEFAULT_HANG_TIMEOUT,
        _backend: Any = None,
    ) -> None:
        if executor not in ("thread", "process"):
            raise QueryError(
                f"unknown executor {executor!r}; expected 'thread' or 'process'"
            )
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise QueryError(f"jobs must be a positive integer, got {jobs!r}")
        if shards is not None and shards < 1:
            raise QueryError(f"shards must be a positive integer, got {shards!r}")
        if shards is not None and executor != "process":
            raise QueryError("shards requires executor='process'")
        if max_pending is not None and max_pending < 1:
            raise QueryError(f"max_pending must be a positive integer, got {max_pending!r}")
        if submit_timeout is not None and submit_timeout < 0:
            raise QueryError(f"submit_timeout must be >= 0, got {submit_timeout!r}")
        backend = backend or engine.backend
        if executor == "process" and backend != "columnar":
            raise QueryError(
                "executor='process' shards the columnar collection phase; "
                f"backend {backend!r} is not shardable"
            )

        self._engine = engine
        self._executor = executor
        self._defaults = {
            "estimator": estimator or engine.default_estimator,
            "embedding": embedding or engine.default_embedding,
            "bootstrap": bootstrap,
            "seed": seed,
        }
        self._backend = backend
        self._max_pending = max_pending
        self._submit_timeout = submit_timeout
        self._lock = threading.RLock()
        self._next_index = 0  # guarded-by: _lock
        self._live: set[int] = set()  # guarded-by: _lock  #: submitted, no outcome delivered yet
        self._resolved: dict[int, Any] = {}  # guarded-by: _lock  #: outcomes ready for delivery
        #: Most recent delivered outcomes (index → outcome), LRU-bounded:
        #: keeps :meth:`result` idempotent for recent queries while the
        #: session's memory stays O(in-flight), not O(history).
        self._delivered: "OrderedDict[int, Any]" = OrderedDict()  # guarded-by: _lock
        self._delivered_count = 0  # guarded-by: _lock
        #: Indexes whose late backend events must be dropped (cancelled
        #: queries, and thread-mode timeouts whose result is already in);
        #: LRU-bounded like the delivered history.
        self._suppressed: "OrderedDict[int, None]" = OrderedDict()  # guarded-by: _lock
        self._cancelled_count = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

        self._scheduler: Any = None
        self._pool: ThreadPoolExecutor | None = None
        if _backend is not None:
            # Daemon-injected backend: quacks like a ShardScheduler but
            # routes through shared workers with per-tenant admission.
            self._scheduler = _backend
            self._events = _backend.events
        elif executor == "process":
            self._scheduler = ShardScheduler(
                engine,
                jobs=jobs,
                shards=shards or jobs,
                retries=retries,
                backend=backend,
                hang_timeout=hang_timeout,
            )
            self._scheduler.start()
            self._events = self._scheduler.events
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="carl-session"
            )
            self._scratch = BatchScratch()
            self._scratch_epoch = engine._grounding_epoch  # noqa: SLF001  # guarded-by: _lock
            self._events: "queue.Queue[tuple[int, Any]]" = queue.Queue()
            self._futures: dict[int, Future] = {}  # guarded-by: _lock
            self._deadlines: dict[int, float] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        query: str | CausalQuery,
        timeout: float | None = None,
        estimator: str | None = None,
        embedding: str | None = None,
        bootstrap: int | None = None,
        seed: int | None = None,
    ) -> int:
        """Submit one query; returns its session index immediately.

        Syntax errors raise here (in the caller); every later failure —
        planning, worker faults past the retry budget, timeout — is
        reported as a :class:`QueryError` *event* for this index only.
        ``timeout`` is this query's wall-clock budget in seconds, counted
        from submission.  Per-query options default to the session's.

        With ``max_pending`` configured, a submit over the bound raises
        :class:`QueueFullError` (after blocking up to ``submit_timeout``
        seconds, when set); admission-controlled daemon sessions raise
        :class:`~repro.service.daemon.AdmissionError` here too.
        """
        if isinstance(query, str):
            query = parse_query(query)
        options = {
            "estimator": estimator or self._defaults["estimator"],
            "embedding": embedding or self._defaults["embedding"],
            "bootstrap": self._defaults["bootstrap"] if bootstrap is None else bootstrap,
            "seed": self._defaults["seed"] if seed is None else seed,
        }
        self._wait_for_capacity()
        with self._lock:
            if self._closed:
                raise QueryError("the query session is closed")
            index = self._next_index
            self._next_index += 1
            self._live.add(index)
        if self._scheduler is not None:
            try:
                self._scheduler.submit(index, query, options, timeout)
            except BaseException:
                # Admission rejected (or the backend failed): the index was
                # never scheduled, so withdraw it — the error is the
                # caller's, not a query event.
                with self._lock:
                    self._live.discard(index)
                    self._remember_suppressed_locked(index)
                raise
        else:
            with self._lock:
                if timeout is not None:
                    self._deadlines[index] = time.monotonic() + timeout
                self._futures[index] = self._pool.submit(
                    self._answer_one, index, query, options
                )
        return index

    def _wait_for_capacity(self) -> None:
        """Block (bounded) until the pending backlog is under ``max_pending``."""
        if self._max_pending is None:
            return
        deadline = (
            None
            if self._submit_timeout is None
            else time.monotonic() + self._submit_timeout
        )
        while True:
            with self._lock:
                pending = len(self._live) + len(self._resolved)
                if pending < self._max_pending:
                    return
            if deadline is None or time.monotonic() >= deadline:
                get_registry().count("session.queue_full")
                raise QueueFullError(
                    f"the session's pending backlog is at max_pending="
                    f"{self._max_pending}; consume events (as_completed/result) "
                    "or raise the bound"
                )
            # Draining our own event queue is what frees capacity when the
            # consumer thread is this one; with a separate consumer thread
            # this degrades to a bounded poll.
            remaining = deadline - time.monotonic()
            self._pump(max(0.0, min(remaining, _POLL_SECONDS)))

    def _answer_one(self, index: int, query: CausalQuery, options: dict[str, Any]) -> None:
        """Thread-mode worker body: answer one query and emit its event."""
        with self._lock:
            if index in self._suppressed:
                return  # cancelled before it started
            # A database mutation re-grounds the engine; scratch entries are
            # epoch-keyed, so stale ones are unreachable — drop them to keep
            # a long-lived session's memory bounded.
            epoch = self._engine._grounding_epoch  # noqa: SLF001
            if epoch != self._scratch_epoch:
                self._scratch.clear()
                self._scratch_epoch = epoch
        span = get_registry().start_span("query", index=index, executor="thread")
        try:
            outcome: Any = self._engine.answer(
                query, backend=self._backend, _scratch=self._scratch, **options
            )
        except CaRLError as error:
            outcome = error if isinstance(error, QueryError) else QueryError(str(error))
        except Exception as error:  # noqa: BLE001 - a worker must emit, not die
            outcome = QueryError(f"query {index} failed unexpectedly: {error}")
        get_registry().finish_span(
            span, outcome="error" if isinstance(outcome, QueryError) else "ok"
        )
        self._events.put((index, outcome))

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def as_completed(self, timeout: float | None = None) -> Iterator[tuple[int, Any]]:
        """Yield ``(index, QueryAnswer | QueryError)`` in completion order.

        Iterates until every live (non-cancelled) query has been delivered —
        including queries submitted *while* iterating.  ``timeout`` bounds
        the wait for each *next* event (the clock restarts after every
        yield); on expiry a :class:`TimeoutError` is raised — the session
        stays usable and iteration can be resumed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                undelivered = sorted(self._resolved)
                if not undelivered and not self._live:
                    return
            if undelivered:
                for index in undelivered:
                    with self._lock:
                        if index not in self._resolved:
                            continue  # another consumer raced us to it
                        outcome = self._resolved.pop(index)
                        self._mark_delivered_locked(index, outcome)
                    yield index, outcome
                    deadline = (
                        None if timeout is None else time.monotonic() + timeout
                    )
                continue
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no query completed within {timeout} seconds"
                )
            self._pump(timeout)

    def result(self, index: int, timeout: float | None = None) -> Any:
        """Block until query ``index`` resolves; return its outcome.

        Returns the :class:`QueryAnswer` or :class:`QueryError` (never
        raises it); raises :class:`TimeoutError` if the outcome does not
        arrive in ``timeout`` seconds and :class:`QueryError` for an index
        that was never submitted or was cancelled.  Re-reads are idempotent
        for the most recent :data:`DELIVERED_KEEP` delivered queries; older
        records are reaped, and re-reading one raises :class:`QueryError`.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if index in self._resolved:
                    outcome = self._resolved.pop(index)
                    self._mark_delivered_locked(index, outcome)
                    return outcome
                if index in self._delivered:
                    self._delivered.move_to_end(index)
                    return self._delivered[index]
                if index in self._suppressed:
                    raise QueryError(f"query {index} was cancelled")
                if index not in self._live:
                    if 0 <= index < self._next_index:
                        raise QueryError(
                            f"query {index} was already delivered and its "
                            "record reaped (see DELIVERED_KEEP)"
                        )
                    raise QueryError(f"unknown query index {index}")
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise TimeoutError(f"query {index} did not complete in time")
            self._pump(remaining)

    def _mark_delivered_locked(self, index: int, outcome: Any) -> None:
        """Move one outcome into the bounded delivered history (lock held)."""
        self._delivered[index] = outcome
        self._delivered.move_to_end(index)
        self._delivered_count += 1
        while len(self._delivered) > DELIVERED_KEEP:
            self._delivered.popitem(last=False)

    def _remember_suppressed_locked(self, index: int) -> None:
        """Track a suppressed index in the bounded LRU (lock held)."""
        self._suppressed[index] = None
        self._suppressed.move_to_end(index)
        while len(self._suppressed) > SUPPRESSED_KEEP:
            self._suppressed.popitem(last=False)

    def _pump(self, timeout: float | None) -> None:
        """Move one event (if any) from the backend into ``_resolved``.

        Also enforces thread-mode deadlines: the scheduler expires process-
        mode deadlines itself, but thread futures cannot be interrupted, so
        their deadlines are checked here, at every event-loop turn.
        """
        self._expire_thread_deadlines()
        wait = _POLL_SECONDS if timeout is None else max(0.0, min(timeout, _POLL_SECONDS))
        try:
            index, outcome = self._events.get(timeout=wait)
        except queue.Empty:
            return
        stall = fault_point("session.deliver_stall", key=f"query-{index}")
        if stall is not None:
            time.sleep(stall.delay)
        with self._lock:
            if self._pool is not None:
                # Thread-mode bookkeeping for this index is settled either
                # way — drop it so a long-lived session stays flat.
                self._futures.pop(index, None)
                self._deadlines.pop(index, None)
            if index in self._suppressed or index not in self._live:
                return  # cancelled or already expired: reaped, never yielded
            self._live.discard(index)
            self._resolved[index] = outcome

    def _expire_thread_deadlines(self) -> None:
        if self._pool is None:
            return
        now = time.monotonic()
        with self._lock:
            expired = [
                index
                for index, deadline in self._deadlines.items()
                if index in self._live and now >= deadline
            ]
            for index in expired:
                del self._deadlines[index]
                future = self._futures.pop(index, None)
                if future is not None:
                    future.cancel()
                self._live.discard(index)
                self._remember_suppressed_locked(index)  # reap a late in-flight result
                self._resolved[index] = QueryError(
                    f"query {index} timed out before completing"
                )

    # ------------------------------------------------------------------
    # cancellation / bookkeeping
    # ------------------------------------------------------------------
    def cancel(self, index: int) -> bool:
        """Cancel a query; True when it will never be delivered.

        A query whose outcome was already delivered (by
        :meth:`as_completed` or :meth:`result`) cannot be cancelled.  A
        pending query is dropped before it runs; a running one is reaped —
        its workers' results are discarded on arrival.
        """
        with self._lock:
            if index in self._delivered or index not in range(self._next_index):
                return False
            if index in self._suppressed:
                # Already cancelled — or timed out with its error event not
                # yet consumed: cancelling now withdraws that event too.
                self._resolved.pop(index, None)
                return True
            was_live = index in self._live
            resolved_undelivered = index in self._resolved
            if not was_live and not resolved_undelivered:
                return False
            self._cancelled_count += 1
            self._remember_suppressed_locked(index)
            self._live.discard(index)
            self._resolved.pop(index, None)
            if self._pool is not None:
                future = self._futures.pop(index, None)
                if future is not None:
                    future.cancel()
                self._deadlines.pop(index, None)
        if self._scheduler is not None:
            self._scheduler.cancel(index)
        return True

    def outstanding(self) -> int:
        """Queries submitted but not yet delivered (or cancelled)."""
        with self._lock:
            return len(self._live) + len(self._resolved)

    def stats(self) -> dict[str, Any]:
        """Execution counters: mode, delivery counts, scheduler activity."""
        with self._lock:
            base: dict[str, Any] = {
                "executor": self._executor,
                "submitted": self._next_index,
                "delivered": self._delivered_count,
                "cancelled": self._cancelled_count,
                "outstanding": len(self._live),
                "max_pending": self._max_pending,
            }
        if self._scheduler is not None:
            base["scheduler"] = self._scheduler.stats()
        return base

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear the session down; idempotent.  Outstanding queries are
        abandoned (their workers are stopped or their results discarded)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._scheduler is not None:
            self._scheduler.close()
        if self._pool is not None:
            with self._lock:
                pending = list(self._futures.values())
            for future in pending:
                future.cancel()
            self._pool.shutdown(wait=False)

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def answer_iter(
    engine: "CaRLEngine",
    queries: Any,
    estimator: str | None = None,
    embedding: str | None = None,
    bootstrap: int = 0,
    seed: int = 0,
    backend: str | None = None,
    jobs: int | None = 1,
    executor: str = "thread",
    shards: int | None = None,
    retries: int = 2,
    timeout: float | None = None,
    hang_timeout: float | None = DEFAULT_HANG_TIMEOUT,
) -> Iterator[tuple[Any, Any]]:
    """Implementation of :meth:`repro.carl.engine.CaRLEngine.answer_iter`.

    Yields ``(key, QueryAnswer | QueryError)`` in completion order, where
    ``key`` is the query's dict name or its position in the list.  Closing
    the iterator early tears the session down (workers stopped, outstanding
    queries abandoned).
    """
    if isinstance(queries, dict):
        items = list(queries.items())
    else:
        items = [(position, query) for position, query in enumerate(queries)]
    # Parse up front so a syntax error raises immediately (and once), before
    # any worker spawns — the answer_all contract.
    parsed = [
        (key, parse_query(query) if isinstance(query, str) else query)
        for key, query in items
    ]
    with QuerySession(
        engine,
        jobs=jobs,
        executor=executor,
        shards=shards,
        retries=retries,
        estimator=estimator,
        embedding=embedding,
        bootstrap=bootstrap,
        seed=seed,
        backend=backend,
        hang_timeout=hang_timeout,
    ) as session:
        keys = {
            session.submit(query, timeout=timeout): key for key, query in parsed
        }
        for index, outcome in session.as_completed():
            yield keys[index], outcome
