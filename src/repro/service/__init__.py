"""Streaming query service over the CaRL engine (``docs/service.md``).

The service turns the all-or-nothing batch executors of PR 3/4 into an
incremental, fault-tolerant query pipeline:

* :class:`~repro.service.session.QuerySession` — a futures-style session
  with ``submit()`` / ``as_completed()`` / ``cancel()`` and per-query
  timeouts, streaming each answer the moment its query finishes;
* :class:`~repro.service.scheduler.ShardScheduler` — the process-mode task
  scheduler behind it: shard-level collect tasks plus a per-query finish
  task, per-task state tracking, retry-and-requeue of failed tasks on
  other workers (bounded budget), and shard-level cache reuse (a warm
  re-sweep performs zero collection work);
* :meth:`repro.carl.engine.CaRLEngine.answer_iter` — the one-call wrapper:
  ``for key, outcome in engine.answer_iter(queries, ...):`` yields each
  ``(key, QueryAnswer | QueryError)`` in completion order;
* :class:`~repro.service.daemon.QueryDaemon` — the multi-tenant daemon:
  one shared scheduler serving many concurrent sessions, with per-tenant
  token-bucket admission control (:class:`~repro.service.daemon.AdmissionError`
  on rejection) and fair round-robin scheduling across tenants.

Every completed answer is bit-identical to the serial
:meth:`~repro.carl.engine.CaRLEngine.answer` of the same query.
"""

from repro.service.daemon import AdmissionError, QueryDaemon, TokenBucket
from repro.service.scheduler import ServiceStats, ShardScheduler, TaskState
from repro.service.session import QueueFullError, QuerySession

__all__ = [
    "AdmissionError",
    "QueryDaemon",
    "QueueFullError",
    "QuerySession",
    "ServiceStats",
    "ShardScheduler",
    "TaskState",
    "TokenBucket",
]
