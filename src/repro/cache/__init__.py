"""Persistent artifact cache: fingerprinted on-disk storage for grounded
graphs, columnar tables and unit tables.

Grounding a relational causal program is deterministic given the database
and the program, yet dominates end-to-end time (Table 2 of the paper); this
package makes it a one-time cost.  Artifacts are content-addressed by
``(database fingerprint, model fingerprint, kind)`` — see
:mod:`repro.cache.fingerprint` — serialized to npz with atomic writes and
memory-mapped loads (:mod:`repro.cache.store`,
:mod:`repro.cache.serialization`), and wired into
:class:`~repro.carl.engine.CaRLEngine` via its ``cache=`` parameter.
"""

from repro.cache.fingerprint import (
    database_fingerprint,
    model_fingerprint,
    query_fingerprint,
)
from repro.cache.serialization import (
    FORMAT_VERSION,
    SerializationError,
    columnar_table_payload,
    grounding_payload,
    load_columnar_table,
    load_grounding,
    load_unit_table,
    unit_table_payload,
)
from repro.cache.store import (
    ArtifactCache,
    CacheEntry,
    CacheError,
    CacheKey,
    CacheStats,
)

__all__ = [
    "ArtifactCache",
    "CacheEntry",
    "CacheError",
    "CacheKey",
    "CacheStats",
    "FORMAT_VERSION",
    "SerializationError",
    "columnar_table_payload",
    "database_fingerprint",
    "grounding_payload",
    "load_columnar_table",
    "load_grounding",
    "load_unit_table",
    "model_fingerprint",
    "query_fingerprint",
    "unit_table_payload",
]
