"""Content fingerprinting for the persistent artifact cache.

Cached artifacts are pure functions of (database contents, relational causal
model, query); this module turns each of those inputs into a stable hex
digest so the store can be content-addressed:

* the *database* fingerprint delegates to
  :meth:`repro.db.database.Database.fingerprint` (schema + per-column
  digests, incrementally maintained via the tables' mutation counters);
* the *model* fingerprint hashes the canonical AST serialization of the
  schema declarations plus the model's current rule set — including
  aggregate rules the engine registered dynamically while unifying
  treatment and response units, so a grounding extended by earlier queries
  never aliases the pure program's grounding;
* the *query* fingerprint hashes the canonical query AST together with the
  embedding and unit-table backend it was materialized with.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.carl.ast import CausalQuery, Program, canonical_text
from repro.carl.model import RelationalCausalModel
from repro.db.database import Database


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8", "backslashreplace")).hexdigest()


def database_fingerprint(database: Database) -> str:
    """Stable content hash of a database (cached against its version token)."""
    return database.fingerprint()


def model_fingerprint(program: Program, model: RelationalCausalModel) -> str:
    """Stable hash of the model the grounding is a function of.

    Takes the declarations from the parsed ``program`` (the model never adds
    declarations) and the rules from the live ``model`` (which accumulates
    unifying aggregate rules as queries are answered).
    """
    return _digest(
        canonical_text(
            [
                program.entities,
                program.relationships,
                program.attributes,
                model.rules,
                model.aggregate_rules,
            ]
        )
    )


def collect_fingerprint(
    treatment_attribute: str,
    response_attribute: str,
    derived_definition: Any = None,
    condition: Any = None,
) -> str:
    """Stable hash of one unit-table *collection* (the graph-walk phase).

    Collected :class:`~repro.carl.unit_table.UnitTableInputs` depend only on
    the grounding (covered by the cache key's database/program fingerprints),
    the treatment attribute, the *resolved* response attribute (plus its
    derived-attribute definition when response unification introduced one)
    and the query's WHERE clause — **not** on the treatment threshold, the
    embedding, the estimator or the peer condition, which all apply after
    collection.  Keying shard partials by this hash is what lets a threshold
    sweep (``Age >= 30``, ``Age >= 45``, ...) reuse one collection per unit
    range across every query of the sweep — and across re-sweeps in later
    sessions (``docs/service.md``).
    """
    return _digest(
        canonical_text(
            [
                "collect",
                treatment_attribute,
                response_attribute,
                derived_definition,
                condition,
            ]
        )
    )


def query_fingerprint(
    query: CausalQuery, embedding: Any, backend: str, resolution: Any = None
) -> str:
    """Stable hash of a unit-table request.

    Covers the query AST, the embedding and unit-table backend, and the
    *resolved response* (the response attribute name plus, when the engine
    unified treatment and response units, the derived-attribute definition it
    resolved to).  Including the resolution — rather than the engine's whole
    accumulated rule list — keeps the key deterministic across sessions: a
    session that answered other queries first produces the same key for this
    query as a fresh one.
    """
    embedding_token = embedding if isinstance(embedding, str) else repr(embedding)
    return _digest(canonical_text([query, embedding_token, backend, resolution]))
