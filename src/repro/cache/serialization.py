"""npz payloads for cacheable artifacts.

Each artifact kind is encoded as a flat mapping of numpy arrays (what one
``np.savez`` call writes) plus a ``meta`` entry holding a canonical JSON
string.  Numeric payloads stay numeric arrays so the store can memory-map
them straight out of the npz file; irregular data (key tuples, heterogeneous
values) goes into object arrays, which round-trip exactly through numpy's
pickle path at the cost of an eager load.

Supported artifacts:

* :class:`~repro.db.table.ColumnarTable` — schema + one array per column;
* a grounded causal graph together with its grounded attribute values —
  interned attribute names, dual-CSR adjacency arrays (memory-mappable,
  deterministic node-id order; see ``docs/grounding.md``) and object arrays
  for keys/values;
* :class:`~repro.carl.unit_table.UnitTable` — the flat estimator input, all
  numeric except the unit keys.

Round-trips are exact (NaN/inf bit patterns, empty tables, unicode column
names included); ``tests/test_cache_roundtrip.py`` holds them to that with
Hypothesis property tests.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import Any

import numpy as np

# FORMAT_VERSION lives in the store (which also vets it on load) and is
# re-exported here because this module owns the payload layouts it versions.
from repro.cache.store import FORMAT_VERSION
from repro.carl.causal_graph import GroundedAttribute, GroundedCausalGraph
from repro.graph.csr import CSRGraph
from repro.carl.unit_table import UnitTable, UnitTableInputs
from repro.db.schema import ColumnSchema, TableSchema
from repro.db.table import ColumnarTable, as_object_array

class SerializationError(ValueError):
    """Raised when an artifact payload cannot be decoded."""


def _meta_entry(meta: dict[str, Any]) -> np.ndarray:
    return np.asarray(json.dumps(meta, sort_keys=True, ensure_ascii=False))


def read_meta(payload: Mapping[str, np.ndarray]) -> dict[str, Any]:
    """Decode the ``meta`` JSON entry of a loaded payload."""
    try:
        meta = json.loads(str(payload["meta"][()]))
    except (KeyError, ValueError) as error:
        raise SerializationError(f"artifact payload has no readable meta entry: {error}")
    if meta.get("format") != FORMAT_VERSION:
        raise SerializationError(
            f"artifact format {meta.get('format')!r} does not match {FORMAT_VERSION}"
        )
    return meta


def _expect_kind(meta: dict[str, Any], kind: str) -> None:
    if meta.get("kind") != kind:
        raise SerializationError(
            f"expected a {kind!r} artifact, found {meta.get('kind')!r}"
        )


# ----------------------------------------------------------------------
# ColumnarTable
# ----------------------------------------------------------------------
def columnar_table_payload(table: ColumnarTable) -> dict[str, np.ndarray]:
    """Encode a columnar table: schema meta + one array per column."""
    meta = {
        "format": FORMAT_VERSION,
        "kind": "columnar_table",
        "name": table.schema.name,
        "columns": [
            [column.name, column.dtype, column.nullable] for column in table.schema.columns
        ],
        "primary_key": list(table.schema.primary_key),
        "rows": len(table),
    }
    payload: dict[str, np.ndarray] = {"meta": _meta_entry(meta)}
    for position in range(len(table.schema.columns)):
        array = table._array_by_position(position)  # noqa: SLF001 - cached column array
        if array.dtype == object:
            # Rebuild instead of reusing: the cached object array may alias
            # list storage semantics we do not want to freeze into the file.
            array = as_object_array(table._data[position])  # noqa: SLF001
        payload[f"column_{position}"] = array
    return payload


def load_columnar_table(payload: Mapping[str, np.ndarray]) -> ColumnarTable:
    """Decode :func:`columnar_table_payload`; numeric columns keep the loaded
    (possibly memory-mapped) arrays in the table's array cache."""
    meta = read_meta(payload)
    _expect_kind(meta, "columnar_table")
    schema = TableSchema(
        name=meta["name"],
        columns=tuple(
            ColumnSchema(name, dtype, nullable) for name, dtype, nullable in meta["columns"]
        ),
        primary_key=tuple(meta["primary_key"]),
    )
    columns_data: list[list[Any]] = []
    arrays: list[np.ndarray | None] = []
    for position in range(len(schema.columns)):
        array = payload[f"column_{position}"]
        columns_data.append(array.tolist())
        arrays.append(None if array.dtype == object else np.asarray(array))
    table = ColumnarTable._from_columns(schema, columns_data)  # noqa: SLF001
    for position, array in enumerate(arrays):
        if array is not None:
            table._array_cache[position] = array  # noqa: SLF001 - seed cache with mmap
    return table


# ----------------------------------------------------------------------
# grounded causal graph + grounded attribute values
# ----------------------------------------------------------------------
def grounding_payload(
    graph: GroundedCausalGraph, values: Mapping[GroundedAttribute, Any]
) -> dict[str, np.ndarray]:
    """Encode a grounded graph and its node values.

    Attribute names are interned into an id table; nodes are stored in their
    insertion (= node-id) order; adjacency is stored as the graph's compiled
    dual-CSR arrays (parents grouped by child and children grouped by parent,
    both sorted by node id).  A warm load therefore memory-maps the adjacency
    as-is — no dict/set rebuild — and every iteration order is a pure
    function of node ids, identical in every process regardless of
    ``PYTHONHASHSEED``, keeping warm-cache unit tables bit-identical to cold
    ones even in spawn workers with a different hash seed.

    CSR index arrays are narrowed to int32 when they fit (they always do
    below 2**31 nodes/edges), which keeps this payload strictly smaller than
    the v1 edge-list layout for any graph with more edges than nodes.
    """
    nodes = graph.nodes
    node_index = dict(zip(nodes, range(len(nodes))))
    csr = graph.csr()

    attribute_ids: dict[str, int] = {}
    node_attribute = np.fromiter(
        (
            attribute_ids.setdefault(node.attribute, len(attribute_ids))
            for node in nodes
        ),
        dtype=np.int64,
        count=len(nodes),
    )

    index_dtype = np.int32 if len(nodes) < 2**31 and csr.n_edges < 2**31 else np.int64

    aggregate_nodes: list[int] = []
    aggregate_names: list[str] = []
    for node, aggregate in graph._aggregates.items():  # noqa: SLF001 - hot path
        aggregate_nodes.append(node_index[node])
        aggregate_names.append(aggregate)

    value_nodes: list[int] = []
    value_data: list[Any] = []
    index_lookup = node_index.get
    for node, value in values.items():
        node_position = index_lookup(node)
        if node_position is not None:
            value_nodes.append(node_position)
            value_data.append(value)

    meta = {
        "format": FORMAT_VERSION,
        "kind": "grounding",
        "attributes": sorted(attribute_ids, key=attribute_ids.get),
        "nodes": len(nodes),
        "edges": csr.n_edges,
    }
    return {
        "meta": _meta_entry(meta),
        "node_attribute": node_attribute.astype(index_dtype, copy=False),
        "node_keys": as_object_array([node.key for node in nodes]),
        "parent_indptr": np.asarray(csr.parent_indptr).astype(index_dtype, copy=False),
        "parent_indices": np.asarray(csr.parent_indices).astype(index_dtype, copy=False),
        "child_indptr": np.asarray(csr.child_indptr).astype(index_dtype, copy=False),
        "child_indices": np.asarray(csr.child_indices).astype(index_dtype, copy=False),
        "aggregate_nodes": np.asarray(aggregate_nodes, dtype=np.int64),
        "aggregate_names": as_object_array(aggregate_names),
        "value_nodes": np.asarray(value_nodes, dtype=np.int64),
        "value_data": as_object_array(value_data),
    }


def load_grounding(
    payload: Mapping[str, np.ndarray],
) -> tuple[GroundedCausalGraph, dict[GroundedAttribute, Any]]:
    """Decode :func:`grounding_payload` back into a graph + values mapping.

    The adjacency arrays are adopted directly (possibly still memory-mapped);
    only the node objects and the id-lookup dict are materialized, so a warm
    load is O(nodes) object construction instead of rebuilding hundreds of
    thousands of per-node dicts and sets edge by edge.
    """
    meta = read_meta(payload)
    _expect_kind(meta, "grounding")
    attributes = meta["attributes"]

    node_attribute = payload["node_attribute"]
    node_keys = payload["node_keys"]
    # C-level construction: map() over the interned attribute names and the
    # key objects calls the NamedTuple constructor without a Python-loop
    # frame per node (this path is every worker process's bootstrap).
    nodes = list(
        map(
            GroundedAttribute,
            map(attributes.__getitem__, node_attribute.tolist()),
            node_keys.tolist(),
        )
    )

    graph = GroundedCausalGraph()
    graph._adopt_arrays(  # noqa: SLF001 - loader fast path
        nodes,
        CSRGraph(
            len(nodes),
            payload["parent_indptr"],
            payload["parent_indices"],
            payload["child_indptr"],
            payload["child_indices"],
        ),
    )
    # The per-attribute id index, one vectorized pass per attribute name
    # (attribute ids are assigned in first-appearance order, so insertion
    # order of the dict matches the grounding process).
    by_attribute = graph._by_attribute  # noqa: SLF001
    for attribute_id, name in enumerate(attributes):
        by_attribute[name] = np.flatnonzero(node_attribute == attribute_id).tolist()

    node_at = nodes.__getitem__
    graph._aggregates = dict(  # noqa: SLF001
        zip(
            map(node_at, payload["aggregate_nodes"].tolist()),
            payload["aggregate_names"].tolist(),
        )
    )

    values = dict(
        zip(map(node_at, payload["value_nodes"].tolist()), payload["value_data"])
    )
    return graph, values


# ----------------------------------------------------------------------
# UnitTable
# ----------------------------------------------------------------------
def unit_table_payload(unit_table: UnitTable) -> dict[str, np.ndarray]:
    """Encode a unit table: numeric arrays + object-array unit keys."""
    meta = {
        "format": FORMAT_VERSION,
        "kind": "unit_table",
        "peer_columns": list(unit_table.peer_columns),
        "covariate_columns": list(unit_table.covariate_columns),
        "treatment_attribute": unit_table.treatment_attribute,
        "response_attribute": unit_table.response_attribute,
    }
    return {
        "meta": _meta_entry(meta),
        "unit_keys": as_object_array(list(unit_table.unit_keys)),
        "outcome": np.asarray(unit_table.outcome, dtype=float),
        "treatment": np.asarray(unit_table.treatment, dtype=float),
        "peer_treatment": np.asarray(unit_table.peer_treatment, dtype=float),
        "peer_counts": np.asarray(unit_table.peer_counts, dtype=float),
        "covariates": np.asarray(unit_table.covariates, dtype=float),
    }


def unit_inputs_payload(
    inputs: UnitTableInputs, span: tuple[int, int, int] | None = None
) -> dict[str, np.ndarray]:
    """Encode one shard's unit-table collection (see ``docs/sharding.md``).

    This is how a shard worker hands its slice of the graph-walk phase back
    to the dispatching process: row-id arrays are plain int64 (the store can
    memory-map them), raw values stay object arrays so ints, bools and floats
    round-trip as the exact Python objects the serial collection would have
    gathered — anything else would change categorical covariate encodings.

    ``span`` — ``(start, stop, total units)`` of the collected unit range —
    is recorded in the meta entry when given.  Persistent shard partials
    (``docs/service.md``) carry it so ``repro cache ls`` and a human reading
    the artifact can tell which slice of which unit list a partial covers;
    loads do not depend on it.
    """
    meta = {
        "format": FORMAT_VERSION,
        "kind": "unit_inputs",
        "treatment_attribute": inputs.treatment_attribute,
        "response_attribute": inputs.response_attribute,
        "covariate_order": list(inputs.covariate_order),
        "units": len(inputs.unit_keys),
    }
    if span is not None:
        meta["span"] = list(span)
    payload: dict[str, np.ndarray] = {
        "meta": _meta_entry(meta),
        "unit_keys": as_object_array(list(inputs.unit_keys)),
        "outcomes_raw": as_object_array(list(inputs.outcomes_raw)),
        "treatments_raw": as_object_array(list(inputs.treatments_raw)),
        "peer_counts": np.asarray(inputs.peer_counts, dtype=np.int64),
        "peer_values_raw": as_object_array(list(inputs.peer_values_raw)),
        "peer_group_ids": np.asarray(inputs.peer_group_ids, dtype=np.int64),
    }
    for position, name in enumerate(inputs.covariate_order):
        bucket_values, bucket_rows = inputs.buckets[name]
        payload[f"bucket_{position}_values"] = as_object_array(list(bucket_values))
        payload[f"bucket_{position}_rows"] = np.asarray(bucket_rows, dtype=np.int64)
    return payload


def load_unit_inputs(payload: Mapping[str, np.ndarray]) -> UnitTableInputs:
    """Decode :func:`unit_inputs_payload` back into a collection."""
    meta = read_meta(payload)
    _expect_kind(meta, "unit_inputs")
    covariate_order = list(meta["covariate_order"])
    buckets: dict[str, tuple[list[Any], list[int]]] = {}
    for position, name in enumerate(covariate_order):
        buckets[name] = (
            payload[f"bucket_{position}_values"].tolist(),
            payload[f"bucket_{position}_rows"].tolist(),
        )
    return UnitTableInputs(
        treatment_attribute=meta["treatment_attribute"],
        response_attribute=meta["response_attribute"],
        unit_keys=payload["unit_keys"].tolist(),
        outcomes_raw=payload["outcomes_raw"].tolist(),
        treatments_raw=payload["treatments_raw"].tolist(),
        peer_counts=payload["peer_counts"].tolist(),
        peer_values_raw=payload["peer_values_raw"].tolist(),
        peer_group_ids=payload["peer_group_ids"].tolist(),
        covariate_order=covariate_order,
        buckets=buckets,
    )


def load_unit_table(payload: Mapping[str, np.ndarray]) -> UnitTable:
    """Decode :func:`unit_table_payload` (arrays may stay memory-mapped)."""
    meta = read_meta(payload)
    _expect_kind(meta, "unit_table")
    return UnitTable(
        unit_keys=payload["unit_keys"].tolist(),
        outcome=payload["outcome"],
        treatment=payload["treatment"],
        peer_treatment=payload["peer_treatment"],
        peer_counts=payload["peer_counts"],
        covariates=payload["covariates"],
        peer_columns=list(meta["peer_columns"]),
        covariate_columns=list(meta["covariate_columns"]),
        treatment_attribute=meta["treatment_attribute"],
        response_attribute=meta["response_attribute"],
    )
