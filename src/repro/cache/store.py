"""Content-addressed on-disk artifact store.

Artifacts are npz files under a cache root, keyed by ``(database
fingerprint, model fingerprint, artifact kind[, detail])``::

    <root>/<db_fp[:16]>-<model_fp[:16]>/<kind>[-<detail[:16]>].npz

Writes are atomic (written to a temp file in the destination directory, then
``os.replace``d into place) so a crashed or concurrent writer can never leave
a half-written artifact where a reader will find it.  Loads verify the full
fingerprints recorded inside the file against the requested key — a prefix
collision therefore degrades to a cache miss, never to wrong data.

Numeric arrays are memory-mapped straight out of the (uncompressed) npz: the
store locates each member's byte offset in the zip and hands back
``np.memmap`` views, so loading a cached grounding is O(metadata), not
O(data).  Object arrays (key tuples, heterogeneous values) are loaded eagerly
through numpy's pickle path.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import threading
import time
import zipfile
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np
from numpy.lib import format as npy_format

from repro.faults.injection import fault_point
from repro.observability.telemetry import get_registry

#: Length of the fingerprint prefixes used in file names (full fingerprints
#: are verified from the artifact itself on load).
PREFIX = 16

#: Payload layout version (re-exported by :mod:`repro.cache.serialization`,
#: which owns the layouts).  Bumped on any layout change; artifacts whose
#: ``meta`` records a different version read as cache misses.  v2: grounding
#: artifacts store CSR adjacency arrays instead of edge lists (and all
#: ordered graph queries became node-id-ordered), so v1 artifacts — grounded
#: under hash-order-dependent iteration — are invalidated wholesale and
#: re-grounded on first use.
FORMAT_VERSION = 2

#: Artifact kinds the engine stores (other kinds are allowed; these are known).
KNOWN_KINDS = ("grounding", "unit_table", "table", "unit_inputs")

#: Directory (under the cache root) artifacts that fail to decode are moved
#: to.  Quarantined files carry a ``.quarantined`` suffix so no cache glob
#: (``*/*.npz``) can ever pick one up again.
QUARANTINE_DIR = "quarantine"

#: Age (seconds) below which :meth:`ArtifactCache.reap_temp_files` leaves a
#: ``.tmp`` file alone: it may belong to a live concurrent writer.
TEMP_MAX_AGE_SECONDS = 600.0

#: errno values treated as "the disk is full": the store degrades to
#: uncached operation instead of failing the query that triggered the write.
_NO_SPACE_ERRNOS = frozenset(
    code
    for code in (
        errno.ENOSPC,
        errno.EDQUOT if hasattr(errno, "EDQUOT") else None,
        errno.EFBIG,
    )
    if code is not None
)


class CacheError(ValueError):
    """Raised on malformed cache keys or unusable cache roots."""


class CacheDegradedError(RuntimeError):
    """A worker could not persist or read back a required artifact because
    the store is degraded (out of space).  The scheduler recognizes this
    error by name on the result wire and answers the affected queries
    serially in-process instead of retrying a write that cannot succeed."""


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cached artifact."""

    database: str  #: database content fingerprint (hex)
    program: str  #: model fingerprint (hex)
    kind: str  #: artifact kind, e.g. ``"grounding"`` or ``"unit_table"``
    detail: str = ""  #: sub-key, e.g. the query fingerprint of a unit table

    def __post_init__(self) -> None:
        for label, value in (("database", self.database), ("program", self.program)):
            if not value or not all(c in "0123456789abcdef" for c in value):
                raise CacheError(f"cache key {label} must be a hex digest, got {value!r}")
        if not self.kind or any(c in self.kind for c in "/\\.-"):
            raise CacheError(f"invalid artifact kind {self.kind!r}")
        if self.detail and not all(c in "0123456789abcdef" for c in self.detail):
            raise CacheError(f"cache key detail must be a hex digest, got {self.detail!r}")

    @property
    def entry_name(self) -> str:
        return f"{self.database[:PREFIX]}-{self.program[:PREFIX]}"

    @property
    def file_name(self) -> str:
        if self.detail:
            return f"{self.kind}-{self.detail[:PREFIX]}.npz"
        return f"{self.kind}.npz"

    def as_json(self) -> str:
        return json.dumps(
            {
                "database": self.database,
                "program": self.program,
                "kind": self.kind,
                "detail": self.detail,
            },
            sort_keys=True,
        )


@dataclass
class CacheStats:
    """Per-kind hit/miss/store counters for one cache instance (in-memory).

    Counter updates take an internal lock: a read-modify-write on a plain
    dict would lose increments when concurrent ``answer_all`` workers probe
    the cache simultaneously, and the counters are the evidence benchmarks
    and tests use to prove "zero grounding work happened" — they must be
    exact, not approximately right.  Readers snapshot under the same lock.
    """

    hits: dict[str, int] = field(default_factory=dict)  # guarded-by: _lock
    misses: dict[str, int] = field(default_factory=dict)  # guarded-by: _lock
    stores: dict[str, int] = field(default_factory=dict)  # guarded-by: _lock
    #: Artifacts moved to quarantine because they failed to decode.
    quarantined: dict[str, int] = field(default_factory=dict)  # guarded-by: _lock
    #: Writes dropped because the disk was full (degraded mode).
    store_errors: dict[str, int] = field(default_factory=dict)  # guarded-by: _lock
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record(self, counter: dict[str, int], kind: str) -> None:
        with self._lock:
            counter[kind] = counter.get(kind, 0) + 1

    def hit_count(self, kind: str | None = None) -> int:
        with self._lock:
            return self.hits.get(kind, 0) if kind else sum(self.hits.values())

    def miss_count(self, kind: str | None = None) -> int:
        with self._lock:
            return self.misses.get(kind, 0) if kind else sum(self.misses.values())

    def store_count(self, kind: str | None = None) -> int:
        with self._lock:
            return self.stores.get(kind, 0) if kind else sum(self.stores.values())

    def quarantined_count(self, kind: str | None = None) -> int:
        with self._lock:
            return self.quarantined.get(kind, 0) if kind else sum(self.quarantined.values())

    def store_error_count(self, kind: str | None = None) -> int:
        with self._lock:
            return self.store_errors.get(kind, 0) if kind else sum(self.store_errors.values())

    def summary(self) -> dict[str, dict[str, int]]:
        with self._lock:
            kinds = sorted(
                {*self.hits, *self.misses, *self.stores, *self.quarantined, *self.store_errors}
            )
            summary = {
                kind: {
                    "hits": self.hits.get(kind, 0),
                    "misses": self.misses.get(kind, 0),
                    "stores": self.stores.get(kind, 0),
                }
                for kind in kinds
            }
            # Failure counters appear only when nonzero: healthy summaries
            # keep their exact three-key shape (pinned by existing tests and
            # dashboards), and a "quarantined" key showing up *is* the signal.
            for kind in kinds:
                if self.quarantined.get(kind):
                    summary[kind]["quarantined"] = self.quarantined[kind]
                if self.store_errors.get(kind):
                    summary[kind]["store_errors"] = self.store_errors[kind]
            return summary


@dataclass(frozen=True)
class CacheEntry:
    """One artifact on disk, as reported by :meth:`ArtifactCache.entries`."""

    path: Path
    key: CacheKey | None  #: None when the file's key record is unreadable
    size_bytes: int
    modified: float

    @property
    def kind(self) -> str:
        return self.key.kind if self.key is not None else "?"


class ArtifactCache:
    """The persistent artifact store rooted at a directory.

    ``mmap=False`` disables memory-mapping (every array is loaded eagerly);
    useful when cached artifacts must outlive the file, e.g. if the cache may
    be cleared while loaded artifacts are still in use.

    :meth:`store` and :meth:`load` are safe to call concurrently — from
    threads or separate processes, including on the same key: each write
    lands via an atomic rename and each load verifies the full key recorded
    inside the file, so a reader observes a complete artifact or a miss,
    never a torn one.
    """

    def __init__(self, root: str | Path, mmap: bool = True) -> None:
        self.root = Path(root)
        self.mmap = mmap
        self.stats = CacheStats()
        #: Refcounted paths protected from :meth:`evict` (artifacts a live
        #: shard worker may be memory-mapping); guarded by a lock because the
        #: process-pool dispatcher pins from the submitting thread while
        #: stats-reading threads may iterate.  Each first pin also drops a
        #: ``.pin`` sidecar file naming this process, so an eviction issued
        #: from *another* process (``repro cache evict``) can see — and
        #: respect — the pins of every in-flight session on the machine.
        self._pinned: dict[Path, int] = {}  # guarded-by: _pin_lock
        self._pin_lock = threading.Lock()
        #: True after a write failed for lack of disk space; stores become
        #: no-ops (returning None) until one succeeds again.  A plain bool —
        #: reads/writes are atomic under the GIL and the flag is advisory.
        self._degraded = False

    @property
    def degraded(self) -> bool:
        """True while the store is in degraded (out-of-space) mode."""
        return self._degraded

    # ------------------------------------------------------------------
    # store / load
    # ------------------------------------------------------------------
    def path_for(self, key: CacheKey) -> Path:
        return self.root / key.entry_name / key.file_name

    def store(self, key: CacheKey, payload: dict[str, np.ndarray]) -> Path | None:
        """Atomically write ``payload`` (plus the full key) as an npz artifact.

        Returns the artifact path, or **None when the write was dropped**
        because the disk is full: the store flips to degraded mode (counted
        in :attr:`CacheStats.store_errors`, ``cache.store_error`` /
        ``cache.degraded`` telemetry) and every caller simply operates
        uncached — an ENOSPC must cost a cache entry, never a query.  Each
        later store retries the disk, and the first success clears the
        degraded flag, so the store heals itself when space returns.  Any
        other ``OSError`` still raises.
        """
        if "cache_key" in payload:
            raise CacheError("payload entry name 'cache_key' is reserved")
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if fault_point("store.enospc", key=key.kind) is not None:
                raise OSError(errno.ENOSPC, "injected: no space left on device")
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key.file_name}.", suffix=".tmp"
            )
        except OSError as error:
            if error.errno in _NO_SPACE_ERRNOS:
                self._enter_degraded(key.kind)
                return None
            raise
        try:
            with os.fdopen(descriptor, "wb") as handle:
                np.savez(handle, cache_key=np.asarray(key.as_json()), **payload)
            if fault_point("store.torn_write", key=key.kind) is not None:
                # Simulated writer death between temp write and rename: the
                # half-written artifact must never become visible (readers
                # see the old version or a miss; the .tmp is reaped later).
                os._exit(25)
            os.replace(temp_name, path)
        except BaseException as error:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            if isinstance(error, OSError) and error.errno in _NO_SPACE_ERRNOS:
                self._enter_degraded(key.kind)
                return None
            raise
        if self._degraded:
            self._degraded = False
            get_registry().gauge("cache.degraded", 0)
        self.stats.record(self.stats.stores, key.kind)
        get_registry().count("cache.store", kind=key.kind)
        return path

    def _enter_degraded(self, kind: str) -> None:
        self.stats.record(self.stats.store_errors, kind)
        get_registry().count("cache.store_error", kind=kind)
        if not self._degraded:
            self._degraded = True
            get_registry().gauge("cache.degraded", 1)

    def load(self, key: CacheKey) -> dict[str, np.ndarray] | None:
        """Load the artifact for ``key``, or None (and count a miss).

        The full fingerprints stored inside the file must match the key, and
        the payload's recorded format version must be current; unreadable,
        mismatching or outdated artifacts all count as misses — a hit is
        only ever reported for a payload the caller will actually use.

        A file that *exists but fails to decode* is additionally moved to
        the ``quarantine/`` sidecar directory (counted in
        :attr:`CacheStats.quarantined`): leaving it in place would make
        ``contains()`` keep answering True and every future load re-pay the
        failed parse — quarantined, the key reads as a clean miss and the
        next store simply rebuilds the artifact.  Key-mismatch and
        format-version misses are *not* quarantined: those files are valid
        artifacts for some other key or an older layout.
        """
        path = self.path_for(key)
        if fault_point("store.corrupt_read", key=key.kind) is not None:
            _truncate_file(path)
        try:
            payload = _read_npz(path, mmap=self.mmap)
            stored = json.loads(str(payload.pop("cache_key")[()]))
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            self._quarantine(path, key.kind)
            self.stats.record(self.stats.misses, key.kind)
            get_registry().count("cache.miss", kind=key.kind)
            return None
        if stored != json.loads(key.as_json()) or not _format_is_current(payload):
            self.stats.record(self.stats.misses, key.kind)
            get_registry().count("cache.miss", kind=key.kind)
            return None
        self.stats.record(self.stats.hits, key.kind)
        get_registry().count("cache.hit", kind=key.kind)
        return payload

    def contains(self, key: CacheKey) -> bool:
        """True when an artifact file exists for ``key`` (no verification)."""
        return self.path_for(key).exists()

    def _quarantine(self, path: Path, kind: str) -> None:
        """Move a file that failed to decode out of the cache's namespace.

        Best-effort and atomic (same-filesystem rename into
        ``<root>/quarantine/``): after it, ``contains()`` is False and the
        next store rebuilds the artifact.  The quarantined copy keeps a
        ``.quarantined`` suffix — invisible to every ``*.npz`` glob — and is
        preserved for post-mortem inspection; a repeat offender overwrites
        its previous copy, so quarantine stays bounded by the number of
        distinct artifact paths.
        """
        if not path.exists():
            return  # plain miss: there is nothing to quarantine
        destination = (
            self.root / QUARANTINE_DIR / f"{path.parent.name}-{path.name}.quarantined"
        )
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError:
            try:
                path.unlink(missing_ok=True)  # fall back to plain removal
            except OSError:
                return  # cannot even unlink: give up, stay a plain miss
        self.stats.record(self.stats.quarantined, kind)
        get_registry().count("cache.quarantined", kind=kind)

    def quarantined_files(self) -> list[Path]:
        """The quarantined artifacts currently on disk, sorted by name."""
        quarantine = self.root / QUARANTINE_DIR
        if not quarantine.is_dir():
            return []
        return sorted(quarantine.glob("*.quarantined"))

    def reap_temp_files(self, max_age_seconds: float = TEMP_MAX_AGE_SECONDS) -> int:
        """Delete stale ``.tmp`` files torn writers left behind; returns count.

        A writer that dies between its temp write and the atomic rename
        (crash, ``store.torn_write``) leaks an invisible-but-real ``.tmp``
        file.  Anything older than ``max_age_seconds`` cannot belong to a
        live write (stores take milliseconds, not minutes) and is removed.
        Called on session start (:meth:`ShardScheduler.start`) and by
        :meth:`evict` / :meth:`clear` sweeps.
        """
        if not self.root.is_dir():
            return 0
        # Wall clock, deliberately: .tmp mtimes are wall-clock timestamps.
        now = time.time()  # repro-lint: disable=det-wall-clock
        removed = 0
        for temp in sorted(self.root.glob("*/.*.tmp")):
            try:
                if now - temp.stat().st_mtime < max_age_seconds:
                    continue
                temp.unlink()
            except OSError:
                continue  # a concurrent writer renamed/removed it: fine
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # inspection / maintenance
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        """Every artifact under the root, sorted by path."""
        found: list[CacheEntry] = []
        if not self.root.is_dir():
            return found
        for path in sorted(self.root.glob("*/*.npz")):
            stat = path.stat()
            found.append(
                CacheEntry(
                    path=path,
                    key=_read_key(path),
                    size_bytes=stat.st_size,
                    modified=stat.st_mtime,
                )
            )
        return found

    def disk_stats(self) -> dict[str, dict[str, int]]:
        """Artifact counts and total bytes on disk, grouped by kind."""
        grouped: dict[str, dict[str, int]] = {}
        for entry in self.entries():
            bucket = grouped.setdefault(entry.kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.size_bytes
        return grouped

    # ------------------------------------------------------------------
    # pinning (eviction protection for live shard workers)
    # ------------------------------------------------------------------
    @staticmethod
    def _pin_path(path: Path) -> Path:
        """This process's ``.pin`` sidecar for one artifact path.

        Sidecars are per-process (the owning pid is part of the file name),
        so two sessions in different processes pinning the same artifact
        hold independent sidecars — one unpinning never strips the other's
        protection.  Within one process, pins are additionally refcounted
        in memory per cache handle.
        """
        return path.with_name(f"{path.name}.pin.{os.getpid()}")

    @staticmethod
    def _pin_sidecars(path: Path) -> list[Path]:
        """Every process's pin sidecar currently guarding ``path``."""
        if not path.parent.is_dir():
            return []
        return sorted(path.parent.glob(path.name + ".pin.*"))

    def pin(self, key: CacheKey) -> Path:
        """Protect ``key``'s artifact from :meth:`evict` until unpinned.

        The process-pool shard executor and the streaming query service pin
        the grounding, table and shard payloads their workers memory-map for
        the lifetime of the pool: an eviction racing a live worker must never
        pull a mapped file out from under it (the unlink itself would be safe
        on POSIX, but the artifact would silently stop being reusable by the
        next shard task).

        Pins are refcounted per instance *and* mirrored on disk: the first
        pin of a path writes a per-process ``<artifact>.pin.<pid>`` sidecar,
        so an eviction issued through *any* handle — including ``repro
        cache evict`` running in another process — skips the artifact while
        any pinning process is alive, and one process unpinning never
        strips another's protection.  A sidecar whose process is gone (a
        crashed session) is stale and ignored, so crashes never leak
        permanent protection.  The artifact itself need not exist yet: the
        service pins shard-partial keys when it enqueues the task that will
        produce them.
        """
        path = self.path_for(key)
        with self._pin_lock:
            count = self._pinned.get(path, 0)
            self._pinned[path] = count + 1
            if count == 0:
                try:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    self._pin_path(path).write_text(json.dumps({"pid": os.getpid()}))
                except OSError:
                    pass  # best effort: in-process protection still holds
        return path

    def unpin(self, key: CacheKey) -> None:
        """Release one pin (no-op when the key was not pinned)."""
        self._unpin_path(self.path_for(key))

    def _unpin_path(self, path: Path) -> None:
        with self._pin_lock:
            count = self._pinned.get(path, 0)
            if count > 1:
                self._pinned[path] = count - 1
                return
            self._pinned.pop(path, None)
            if count == 1:
                try:
                    self._pin_path(path).unlink(missing_ok=True)
                except OSError:
                    pass

    def unpin_all(self) -> None:
        """Release every pin held by this instance (exit hook of last resort).

        Only this instance's refcounts — and the sidecars it owns — are
        cleared; pins held by other cache handles or other processes are
        untouched.
        """
        with self._pin_lock:
            paths = list(self._pinned)
            self._pinned.clear()
        for path in paths:
            try:
                self._pin_path(path).unlink(missing_ok=True)
            except OSError:
                pass

    def pinned_paths(self) -> set[Path]:
        """Snapshot of the artifact paths pinned through this instance."""
        with self._pin_lock:
            return set(self._pinned)

    def _pinned_elsewhere(self, path: Path) -> bool:
        """True when a live process holds an on-disk pin for ``path`` —
        another process's session, or another cache handle in this one.

        Stale sidecars (their recorded pid no longer runs) are deleted on
        sight, so a crashed session's pins decay at the next eviction sweep
        instead of protecting garbage forever.
        """
        protected = False
        for sidecar in self._pin_sidecars(path):
            try:
                pid = int(sidecar.name.rpartition(".")[2])
            except ValueError:
                pid = -1
            if _pid_alive(pid):
                # Live pinner — possibly another cache handle in this very
                # process: respect the pin either way.
                protected = True
                continue
            try:
                sidecar.unlink(missing_ok=True)
            except OSError:
                pass
        return protected

    def evict(
        self, max_bytes: int, protect: Iterable[Path] = (), kind: str | None = None
    ) -> tuple[int, int]:
        """Size-budgeted LRU eviction: delete oldest artifacts until the cache
        fits in ``max_bytes``; returns ``(artifacts removed, bytes freed)``.

        Artifacts are considered in ascending modification-time order (the
        store never rewrites an artifact in place, so mtime is last-write =
        least-recently-produced; loads do not bump it).  Pinned artifacts —
        pinned through this instance (see :meth:`pin`) or by a live session
        in *another* process (its ``.pin`` sidecar) — and paths in
        ``protect`` are skipped.  A file the OS refuses to delete (e.g.
        ``EBUSY`` on platforms that lock memory-mapped files — Linux never
        does, Windows and some network filesystems do) is skipped too, not
        retried and not counted: eviction is best-effort by design, so a busy
        artifact simply survives until the next sweep.

        With ``kind`` set, only artifacts of that kind are counted against
        ``max_bytes`` and considered for deletion — ``kind="unit_inputs"``
        trims shard partials without touching groundings or unit tables.
        """
        if max_bytes < 0:
            raise CacheError(f"max_bytes must be >= 0, got {max_bytes!r}")
        self.reap_temp_files()
        entries = sorted(self.entries(), key=lambda entry: (entry.modified, entry.path))
        if kind is not None:
            entries = [entry for entry in entries if entry.kind == kind]
        total = sum(entry.size_bytes for entry in entries)
        skip = self.pinned_paths() | set(protect)
        removed = 0
        freed = 0
        for entry in entries:
            if total <= max_bytes:
                break
            if entry.path in skip or self._pinned_elsewhere(entry.path):
                continue
            try:
                entry.path.unlink()
            except OSError:
                continue  # busy/permission: skip-on-EBUSY semantics
            total -= entry.size_bytes
            removed += 1
            freed += entry.size_bytes
        self._prune_empty_directories()
        return removed, freed

    def clear(self, kind: str | None = None) -> tuple[int, int]:
        """Delete artifacts (optionally only one kind); returns (count, bytes).

        Empty per-fingerprint directories are removed afterwards.
        """
        self.reap_temp_files()
        removed = 0
        freed = 0
        for entry in self.entries():
            if kind is not None and entry.kind != kind:
                continue
            try:
                entry.path.unlink()
            except OSError:
                continue
            removed += 1
            freed += entry.size_bytes
        self._prune_empty_directories()
        return removed, freed

    def _prune_empty_directories(self) -> None:
        if not self.root.is_dir():
            return
        for directory in self.root.iterdir():
            if directory.is_dir():
                try:
                    directory.rmdir()  # only succeeds when empty
                except OSError:
                    pass


def _truncate_file(path: Path) -> None:
    """Corrupt an artifact in place (the ``store.corrupt_read`` fault): keep
    the first half of the file so the zip central directory is torn off —
    the canonical torn-read shape.  Missing files are left missing."""
    try:
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    except OSError:
        pass


def _pid_alive(pid: int) -> bool:
    """True when a process with ``pid`` is running (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    except OSError:  # pragma: no cover - e.g. platforms without kill
        return False
    return True


def _format_is_current(payload: dict[str, np.ndarray]) -> bool:
    """False when the payload's ``meta`` records a non-current format.

    Payloads without a ``meta`` entry (artifacts stored through the raw
    store API) make no format claim and pass; a ``meta`` that exists but is
    unreadable or versioned differently reads as a miss, so a hit is only
    ever reported for a payload its deserializer will accept.
    """
    meta = payload.get("meta")
    if meta is None:
        return True
    try:
        return json.loads(str(meta[()])).get("format") == FORMAT_VERSION
    except (ValueError, TypeError):
        return False


def _read_key(path: Path) -> CacheKey | None:
    """The CacheKey recorded inside an artifact file (None when unreadable)."""
    try:
        with zipfile.ZipFile(path) as archive, archive.open("cache_key.npy") as member:
            record = json.loads(str(npy_format.read_array(member, allow_pickle=False)[()]))
        return CacheKey(**record)
    except (OSError, ValueError, KeyError, TypeError, zipfile.BadZipFile):
        return None


# ----------------------------------------------------------------------
# npz reading with memory-mapped numeric members
# ----------------------------------------------------------------------
def _read_npz(path: Path, mmap: bool) -> dict[str, np.ndarray]:
    """Read an npz, memory-mapping eligible members.

    A member is memory-mapped when it is stored uncompressed (``np.savez``
    default), holds no Python objects and is C-ordered with at least one
    element; everything else falls back to a regular eager read.

    The file is opened exactly once and every member — eager or mapped —
    comes from that one handle.  Re-opening the path per member would race a
    concurrent :meth:`ArtifactCache.store` of the same key: the atomic
    ``os.replace`` could land between two opens and the load would stitch
    arrays from *different* artifact versions into one payload.  A single
    handle pins a single inode, so a load observes one complete artifact no
    matter how many writers are replacing it.
    """
    arrays: dict[str, np.ndarray] = {}
    with open(path, "rb") as handle, zipfile.ZipFile(handle) as archive:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            array: np.ndarray | None = None
            if mmap and info.compress_type == zipfile.ZIP_STORED:
                array = _mmap_member(handle, info)
            if array is None:
                with archive.open(info) as member:
                    array = npy_format.read_array(member, allow_pickle=True)
            arrays[name] = array
    return arrays


def _mmap_member(handle: Any, info: zipfile.ZipInfo) -> np.ndarray | None:
    """Memory-map one stored zip member as an array (None when ineligible).

    Walks the member's local file header to find the absolute byte offset of
    the npy payload, parses the npy header there, and maps the array data in
    place — through the caller's already-open ``handle``, never by path, so
    the mapping is guaranteed to come from the same file version as every
    other member (the mapping itself survives the handle being closed).  Any
    structural surprise returns None so the caller's eager path takes over.
    """
    try:
        handle.seek(info.header_offset)
        local_header = handle.read(30)
        if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
            return None
        name_length = int.from_bytes(local_header[26:28], "little")
        extra_length = int.from_bytes(local_header[28:30], "little")
        handle.seek(info.header_offset + 30 + name_length + extra_length)
        version = npy_format.read_magic(handle)
        if version == (1, 0):
            shape, fortran_order, dtype = npy_format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran_order, dtype = npy_format.read_array_header_2_0(handle)
        else:
            return None
        if dtype.hasobject or fortran_order or not shape or 0 in shape:
            return None
        offset = handle.tell()
        return np.memmap(handle, dtype=dtype, mode="r", offset=offset, shape=shape, order="C")
    except (OSError, ValueError, AttributeError):
        return None
