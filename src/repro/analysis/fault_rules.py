"""Fault-site rule: injection call sites must name a registered site.

Mirrors the telemetry-schema rule for the fault-injection layer: the runtime
raises :class:`~repro.faults.plan.PlanError` for an unregistered site, but
only when the call site actually executes — and fault points live on
purpose behind rarely-taken branches (crash windows, ENOSPC handling).  A
misspelled site name there would make the fault silently uninjectable: the
plan rule never matches, the chaos test quietly tests nothing.  This rule
resolves the contract statically: every ``fault_point("<literal>")`` call
and every ``FaultRule(site="<literal>")`` construction is cross-checked
against the frozen :data:`repro.faults.sites.FAULT_SITES` catalogue.

Non-literal site names (forwarding wrappers, parametrized tests) are
skipped — runtime validation still covers them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register
from repro.faults.sites import FAULT_SITES


def _callee_name(node: ast.expr) -> str | None:
    """The trailing identifier of a call target (``pkg.mod.f`` -> ``f``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _literal_site(node: ast.Call, callee: str) -> ast.Constant | None:
    """The literal site-name argument of one call, if present.

    ``fault_point`` takes the site as its first positional argument;
    ``FaultRule`` takes it as the ``site`` keyword or first positional.
    """
    candidate: ast.expr | None = None
    if callee == "fault_point":
        candidate = node.args[0] if node.args else None
    else:
        candidate = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "site":
                candidate = keyword.value
    if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
        return candidate
    return None


@register
class FaultSiteRule(Rule):
    id = "fault-site"
    scope = ()  # injection sites appear across scheduler/daemon/store/tests
    description = (
        "fault_point(...) calls and FaultRule(site=...) constructions must "
        "name a site registered in the frozen FAULT_SITES catalogue"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = _callee_name(node.func)
            if callee not in ("fault_point", "FaultRule"):
                continue
            literal = _literal_site(node, callee)
            if literal is None:
                continue  # dynamic site name: runtime validation covers it
            name = literal.value
            if name in FAULT_SITES:
                continue
            yield ctx.finding(
                node,
                self.id,
                f"fault site {name!r} is not in the frozen FAULT_SITES "
                "catalogue (repro/faults/sites.py); a typo here makes the "
                "fault silently uninjectable — register the site or fix "
                "the name",
            )
