"""The lint framework: findings, rule registry, directive comments, driver.

One pass per file: the source is read once, parsed once (``ast`` +
``tokenize`` for comments), and every registered rule visits the same tree.
Findings carry ``(path, line, rule id, message)`` plus the stripped source
line, whose hash makes baseline entries stable under unrelated line drift.

Directive comments (machine-readable, all scanned here so individual rules
never re-tokenize):

* ``# repro-lint: disable=<rule>[,<rule>...]`` — suppress findings of the
  named rules on this line (``disable=all`` suppresses everything);
* ``# repro-lint: disable-next-line=<rule>[,...]`` — same, next line;
* ``# guarded-by: <lock>`` — on an attribute assignment: the attribute may
  only be accessed under ``with self.<lock>``; on a ``def`` line: the
  function body runs with ``<lock>`` already held (the caller's contract) —
  equivalent to the ``*_locked`` method-name convention;
* ``# unbounded-ok: <reason>`` — on a container-attribute initialization:
  the boundedness rule accepts the growth as justified.

Suppressions are applied by the driver (rules report everything; the
``suppressed`` flag is set centrally), so ``--show-suppressed`` and the
baseline machinery see one consistent stream.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Directive comment grammar.  ``guarded-by`` and ``unbounded-ok`` are plain
#: prefixes; ``repro-lint`` takes a verb=rules payload.
_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*(?P<verb>[a-z-]+)\s*=\s*(?P<rules>[\w,\- ]+)")
_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(?P<lock>[A-Za-z_][\w]*)")
_UNBOUNDED_OK = re.compile(r"#\s*unbounded-ok:")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: posix-style path as given to the driver
    line: int  #: 1-indexed
    rule: str  #: rule id, e.g. ``det-set-iter``
    message: str
    snippet: str = ""  #: stripped source line (baseline fingerprint input)
    suppressed: bool = False  #: an inline ``disable`` comment covers it

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file."""
        body = "\x00".join((self.path, self.rule, self.snippet))
        return hashlib.sha256(body.encode("utf-8", "backslashreplace")).hexdigest()[:24]

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class FileContext:
    """Everything a rule may inspect about one file (parsed exactly once)."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: line -> suppressed rule ids (``{"all"}`` suppresses every rule there).
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: line -> lock name from a ``# guarded-by:`` comment on that line.
    guarded_lines: dict[int, str] = field(default_factory=dict)
    #: lines carrying an ``# unbounded-ok:`` justification.
    unbounded_ok: set[int] = field(default_factory=set)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, node: ast.AST | int, rule: str, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            path=self.path,
            line=line,
            rule=rule,
            message=message,
            snippet=self.line_text(line),
        )


class Rule:
    """Base class for one lint rule; subclasses are registered by id.

    ``scope`` is a tuple of path substrings (posix): the rule runs on files
    whose path contains any of them — an empty tuple means every file.  The
    driver's ``everywhere=True`` ignores scopes (used by the repo-wide audit
    and by fixture tests that place files outside the production tree).
    """

    id: str = ""
    scope: tuple[str, ...] = ()
    description: str = ""

    def applies_to(self, path: str) -> bool:
        return not self.scope or any(part in path for part in self.scope)

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover - abstract
        raise NotImplementedError
        yield


_RULES: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_class()
    if not rule.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _RULES[rule.id] = rule
    return rule_class


def all_rules() -> dict[str, Rule]:
    """The registered rules, keyed by id (import-order independent: sorted)."""
    return {rule_id: _RULES[rule_id] for rule_id in sorted(_RULES)}


# ----------------------------------------------------------------------
# directive comments
# ----------------------------------------------------------------------
def _scan_comments(source: str) -> Iterator[tuple[int, str]]:
    """Yield ``(line, comment text)`` for every comment token in ``source``."""
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def parse_context(path: str, source: str) -> FileContext:
    """Parse one file into a :class:`FileContext` (raises ``SyntaxError``)."""
    tree = ast.parse(source, filename=path)
    ctx = FileContext(path=path, source=source, tree=tree, lines=source.splitlines())
    for line, comment in _scan_comments(source):
        directive = _DIRECTIVE.search(comment)
        if directive is not None:
            rules = {part.strip() for part in directive.group("rules").split(",") if part.strip()}
            target = line + 1 if directive.group("verb") == "disable-next-line" else line
            ctx.suppressions.setdefault(target, set()).update(rules)
        guarded = _GUARDED_BY.search(comment)
        if guarded is not None:
            ctx.guarded_lines[line] = guarded.group("lock")
        if _UNBOUNDED_OK.search(comment):
            ctx.unbounded_ok.add(line)
    return ctx


def _is_suppressed(finding: Finding, ctx: FileContext) -> bool:
    rules = ctx.suppressions.get(finding.line)
    return rules is not None and ("all" in rules or finding.rule in rules)


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated ``.py`` list."""
    found: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    found[candidate] = None
        elif path.suffix == ".py":
            found[path] = None
    return list(found)


def run_lint(
    paths: Iterable[str | Path],
    select: Iterable[str] | None = None,
    everywhere: bool = False,
    on_error: Callable[[str, Exception], None] | None = None,
) -> list[Finding]:
    """Run the registered rules over ``paths``; returns every finding.

    Suppressed findings are included with ``suppressed=True`` so callers can
    audit them; filter on the flag for the enforcement view.  ``select``
    restricts to the named rule ids; ``everywhere`` ignores rule scopes.
    Unparseable files are reported through ``on_error`` (or ignored) rather
    than aborting the run.
    """
    selected = set(select) if select is not None else None
    if selected is not None:
        unknown = selected - set(_RULES)
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        posix = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            ctx = parse_context(posix, source)
        except (OSError, SyntaxError, ValueError) as error:
            if on_error is not None:
                on_error(posix, error)
            continue
        for rule in all_rules().values():
            if selected is not None and rule.id not in selected:
                continue
            if not everywhere and not rule.applies_to(posix):
                continue
            for finding in rule.check(ctx):
                if _is_suppressed(finding, ctx):
                    finding = replace(finding, suppressed=True)
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
