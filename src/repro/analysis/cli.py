"""The ``repro lint`` subcommand (``python -m repro.cli lint ...``).

Runs the registered rules (``docs/static_analysis.md``) over the given
paths and reports findings in human or JSON form::

    python -m repro.cli lint src/
    python -m repro.cli lint src/ --json
    python -m repro.cli lint src/ --select det-set-iter,det-wall-clock
    python -m repro.cli lint tests/lint_fixtures/ --everywhere
    python -m repro.cli lint src/ --baseline lint-baseline.json
    python -m repro.cli lint src/ --baseline lint-baseline.json --write-baseline

Exit codes: 0 — no enforced findings; 1 — enforced findings reported;
2 — usage or input error (unknown rule id, unreadable baseline).
Suppressed findings never affect the exit code; ``--show-suppressed``
lists them for auditing.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable

from repro.analysis.baseline import apply_baseline, load_baseline, save_baseline
from repro.analysis.core import Finding, all_rules, run_lint


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli lint",
        description="AST-based invariant checks: determinism, lock discipline, "
        "telemetry schema, boundedness (docs/static_analysis.md).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all); "
        "see --list-rules for the catalogue",
    )
    parser.add_argument(
        "--everywhere",
        action="store_true",
        help="ignore per-rule path scopes and run every selected rule on "
        "every file (repo-wide audits, fixture trees)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline JSON of grandfathered findings; findings covered by "
        "it are not enforced (a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of text")
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also list findings silenced by inline disable comments",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def _render_text(findings: Iterable[Finding], stream) -> None:
    for finding in findings:
        marker = " (suppressed)" if finding.suppressed else ""
        print(
            f"{finding.path}:{finding.line}: [{finding.rule}]{marker} {finding.message}",
            file=stream,
        )


def lint_main(argv: list[str]) -> int:
    parser = build_lint_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        rules = all_rules()
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "id": rule.id,
                            "scope": list(rule.scope),
                            "description": rule.description,
                        }
                        for rule in rules.values()
                    ],
                    indent=2,
                )
            )
        else:
            for rule in rules.values():
                scope = ", ".join(rule.scope) if rule.scope else "everywhere"
                print(f"{rule.id:<20} [{scope}]")
                print(f"    {rule.description}")
        return 0

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    if args.write_baseline and not args.baseline:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    errors: list[str] = []

    def on_error(path: str, error: Exception) -> None:
        errors.append(f"{path}: {error}")

    try:
        findings = run_lint(
            args.paths, select=select, everywhere=args.everywhere, on_error=on_error
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    for line in errors:
        print(f"error: {line}", file=sys.stderr)

    if args.write_baseline:
        written = save_baseline(args.baseline, findings)
        print(
            f"wrote {sum(written.values())} finding(s) "
            f"({len(written)} fingerprint(s)) to {args.baseline}"
        )
        return 0

    enforced = [f for f in findings if not f.suppressed]
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (ValueError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        enforced = [f for f in apply_baseline(findings, baseline) if not f.suppressed]

    suppressed = [f for f in findings if f.suppressed]
    reported = enforced + (suppressed if args.show_suppressed else [])
    reported.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in reported],
                    "enforced": len(enforced),
                    "suppressed": len(suppressed),
                    "errors": errors,
                },
                indent=2,
            )
        )
    else:
        _render_text(reported, sys.stdout)
        summary = f"{len(enforced)} finding(s)"
        if suppressed:
            summary += f", {len(suppressed)} suppressed"
        print(summary)

    if errors:
        return 2
    return 1 if enforced else 0
