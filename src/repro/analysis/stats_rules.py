"""Stats-shape rule: snapshot dictionaries must keep their documented keys.

``ShardScheduler.stats()``, ``QueryDaemon.stats()``, ``QuerySession.stats()``
and ``CacheStats.summary()`` are operator-facing contracts: dashboards,
the daemon's admission telemetry and the chaos harness all read these
dictionaries by key, and ``docs/service.md`` / ``docs/observability.md``
document their exact shapes.  A key added in code but not in the documented
set silently drifts the contract (and the reverse — a documented key that
code stops producing — is caught by the pinned shape tests).

This rule resolves the shape statically: inside each documented snapshot
function it collects every *constant string* key — dict-literal keys and
``snapshot["key"] = ...`` subscript assignments, at any nesting depth — and
flags keys missing from the documented set for that ``(class, function)``
pair.  Dynamic keys (``summary[kind]``, tenant names) are skipped; they are
data, not shape.  Classes not listed here (``UnitTable.summary``,
``FaultRule.as_dict``) are out of scope entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

#: Documented snapshot shapes: ``(class, function) -> allowed constant keys``
#: (top-level and nested keys pooled per function; see docs/service.md).
SNAPSHOT_KEYS: dict[tuple[str, str], frozenset[str]] = {
    ("ServiceStats", "as_dict"): frozenset(
        {
            "collect_tasks_run",
            "collect_cache_hits",
            "finish_tasks_run",
            "retries",
            "worker_deaths",
            "workers_spawned",
            "workers_killed",
            "worker_hangs",
            "serial_fallbacks",
            "reaped_results",
            "timeouts",
            "cancelled",
            "records_reaped",
            "tasks_reaped",
        }
    ),
    ("ShardScheduler", "stats"): frozenset(
        {
            "live_records",
            "live_tasks",
            "warm_keys",
            "ready_tasks",
            "delayed_tasks",
            "circuit_open",
            "pinned_keys",
        }
    ),
    ("_TenantBackend", "stats"): frozenset(
        {"tenant", "admitted", "rejected", "inflight"}
    ),
    ("QueryDaemon", "stats"): frozenset(
        {
            "sessions",
            "inflight",
            "draining",
            "tenants",
            "degraded",
            "admitted",
            "rejected",
            "scheduler",
        }
    ),
    ("QuerySession", "stats"): frozenset(
        {
            "executor",
            "submitted",
            "delivered",
            "cancelled",
            "outstanding",
            "max_pending",
            "scheduler",
        }
    ),
    ("CacheStats", "summary"): frozenset(
        {"hits", "misses", "stores", "quarantined", "store_errors"}
    ),
}


def _constant_keys(func: ast.FunctionDef) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, key)`` for every constant-string snapshot key in ``func``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    yield key, key.value
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    yield target, target.slice.value


@register
class StatsShapeRule(Rule):
    id = "stats-shape"
    scope = ("service", "store")
    description = (
        "stats()/cache_stats() snapshot dictionaries must only use keys from "
        "the documented shape for their (class, function) pair"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for item in class_node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                allowed = SNAPSHOT_KEYS.get((class_node.name, item.name))
                if allowed is None:
                    continue
                for node, key in _constant_keys(item):
                    if key not in allowed:
                        yield ctx.finding(
                            node,
                            self.id,
                            f"snapshot key {key!r} in {class_node.name}."
                            f"{item.name}() is not in the documented shape "
                            f"(docs/service.md); add it there and to "
                            f"SNAPSHOT_KEYS, or drop it",
                        )
