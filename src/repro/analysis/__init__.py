"""``repro lint`` — AST-based invariant checking for this codebase.

Every hard bug this reproduction has shipped-and-fixed is an instance of a
statically checkable invariant: hash-seed nondeterminism from bare-``set``
iteration (fixed in the CSR grounding rework), unbounded daemon bookkeeping
(fixed by the O(in-flight) reaping pass), and telemetry-schema drift that is
otherwise only caught at runtime, per emit.  This package encodes those
contracts once as lint rules so CI proves them on every PR
(``docs/static_analysis.md``):

* **determinism** — no iteration over bare ``set``/``frozenset`` values in
  order-sensitive positions, no ``sorted(..., key=str)`` over heterogeneous
  keys, no builtin ``hash()`` near persisted fingerprints, no wall-clock
  ``time.time()`` where span timing requires the monotonic clock;
* **lock discipline** — attributes annotated ``# guarded-by: <lock>`` may
  only be touched under ``with self.<lock>`` (or in a method that declares
  the lock held), and bulk numpy calls stay out of lock scope;
* **telemetry schema** — every span/counter/gauge/histogram emit call site
  is cross-checked against the frozen ``EVENTS`` registry;
* **stats shape** — the documented snapshot dictionaries
  (``stats()``/``as_dict()``/``summary()`` in the service and cache layers)
  may only use their documented keys;
* **fault sites** — every ``fault_point(...)`` call and ``FaultRule`` site
  is cross-checked against the frozen ``FAULT_SITES`` catalogue (a typo
  would make the fault silently uninjectable);
* **boundedness** — long-lived classes may not grow container attributes
  without a matching reap (or an explicit ``# unbounded-ok:`` justification).

Entry points: the ``repro lint`` CLI subcommand
(:func:`repro.analysis.cli.lint_main`) and the programmatic
:func:`repro.analysis.core.run_lint`.
"""

from repro.analysis.core import Finding, Rule, all_rules, run_lint

# Importing the rule modules registers their rules.
from repro.analysis import boundedness, determinism, fault_rules, locks, stats_rules, telemetry_rules  # noqa: F401  isort: skip

__all__ = ["Finding", "Rule", "all_rules", "run_lint"]
