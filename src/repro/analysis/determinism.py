"""Determinism rules: no hash-order, string-order or wall-clock leakage.

The motivating bug (PR 6): grounded-graph walks iterated bare ``set``
values, so node order — and with it cached artifacts and covariate
ordering — depended on ``PYTHONHASHSEED``.  The fix (interned node ids,
CSR adjacency, insertion-ordered dicts) holds only as long as nobody
reintroduces an unordered iteration on the determinism-critical paths;
these rules keep that invariant mechanical.

* ``det-set-iter`` — iterating a ``set``/``frozenset`` value in an
  order-sensitive position (``for``, list/generator/dict comprehension,
  ``list()``/``tuple()``/``enumerate()``).  Order-insensitive consumers —
  ``sorted``, ``len``, ``sum``, ``min``/``max``, ``any``/``all``,
  membership, set algebra, building another set — are fine.
* ``det-sorted-str`` — ``sorted(..., key=str)`` (or ``key=repr``): over
  heterogeneous key tuples this is lexicographic, so ``(10,)`` sorts
  before ``(2,)`` — the exact ordering bug PR 6 fixed in the graph's
  attribute queries.  Sort on a structural key instead
  (:func:`repro.carl.causal_graph.node_sort_key`).
* ``det-builtin-hash`` — builtin ``hash()`` is salted per process by
  ``PYTHONHASHSEED``; anything feeding a persisted fingerprint must use
  :mod:`hashlib` (``repro.cache.fingerprint``).
* ``det-wall-clock`` — ``time.time()`` in the service/observability
  layers: span timing and deadlines must use the monotonic clock
  (``time.monotonic()`` / ``time.perf_counter()``); a wall-clock *log
  timestamp* is the one legitimate use and carries an inline suppression.

Set-typed values are inferred structurally (literals, comprehensions,
``set()``/``frozenset()`` calls, set-algebra operators, set-returning
methods) and propagated through local names, ``self.`` attributes
initialized in ``__init__`` / class-level annotations, and parameter
annotations.  The inference is deliberately conservative: a value the
rule cannot prove set-typed is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

#: Builtins whose consumption of an iterable is order-insensitive.
_ORDER_FREE_CALLS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all", "iter", "next"}
)

#: Set methods that return another set (propagate set-typedness).
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

_SET_ALGEBRA_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    """True when a type annotation names ``set``/``frozenset`` (plain or subscripted)."""
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(target, ast.Attribute):  # typing.Set / typing.AbstractSet
        return target.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(target, ast.Constant) and isinstance(target.value, str):
        text = target.value
        return text.startswith(("set[", "frozenset[", "set", "frozenset")) and "[" in text
    return False


class _SetTypes:
    """Names/attributes proven set-typed within one lexical scope."""

    def __init__(self, names: set[str] | None = None, self_attrs: set[str] | None = None) -> None:
        self.names = set(names or ())
        self.self_attrs = set(self_attrs or ())

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_RETURNING_METHODS
                and self.is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_ALGEBRA_OPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in self.self_attrs
            )
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) and self.is_set_expr(node.orelse)
        return False


def _collect_class_set_attrs(class_node: ast.ClassDef) -> set[str]:
    """``self.<attr>`` names proven set-typed by ``__init__`` or class-level
    annotations (dataclass fields)."""
    attrs: set[str] = set()
    seed = _SetTypes()
    for statement in class_node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            if _annotation_is_set(statement.annotation):
                attrs.add(statement.target.id)
        if isinstance(statement, ast.FunctionDef) and statement.name in ("__init__", "__post_init__"):
            for node in ast.walk(statement):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and seed.is_set_expr(node.value)
                        ):
                            attrs.add(target.attr)
                elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Attribute):
                    target = node.target
                    if (
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and _annotation_is_set(node.annotation)
                    ):
                        attrs.add(target.attr)
    return attrs


#: Nodes that open a new lexical scope: pruned walks stop at them so one
#: scope's name bindings never leak into a sibling's analysis.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _pruned_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Descendants of ``scope`` without entering nested scopes.

    Nested scope nodes are yielded (so callers can recurse into them
    explicitly) but their bodies are not — unlike ``ast.walk``, which would
    let a ``set``-typed local in one method taint a same-named list in
    another.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def _collect_local_sets(scope: ast.AST, types: _SetTypes) -> None:
    """Record local names bound to set-typed values directly in ``scope``.

    One fixed-point pass over assignments (repeated until no growth) so
    chains like ``a = set(); b = a | other`` resolve regardless of order.
    Names also assigned non-set values stay tracked — conservative for a
    linter: a rebound name is rare and an inline suppression documents it.
    """
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for argument in [
            *scope.args.posonlyargs,
            *scope.args.args,
            *scope.args.kwonlyargs,
        ]:
            if _annotation_is_set(argument.annotation):
                types.names.add(argument.arg)
    while True:
        before = len(types.names)
        for node in _pruned_walk(scope):
            if isinstance(node, ast.Assign) and types.is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types.names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _annotation_is_set(node.annotation) or (
                    node.value is not None and types.is_set_expr(node.value)
                ):
                    types.names.add(node.target.id)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                if isinstance(node.op, _SET_ALGEBRA_OPS) and types.is_set_expr(node.value):
                    types.names.add(node.target.id)
        if len(types.names) == before:
            return


@register
class SetIterationRule(Rule):
    id = "det-set-iter"
    scope = ("graph/", "carl/grounding", "carl/causal_graph", "cache/fingerprint")
    description = (
        "iteration over a bare set/frozenset leaks PYTHONHASHSEED into "
        "results; sort it (or restructure onto node ids) first"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._process_scope(ctx, ctx.tree, _SetTypes())

    def _process_scope(
        self, ctx: FileContext, scope: ast.AST, inherited: _SetTypes
    ) -> Iterator[Finding]:
        """Analyze one lexical scope, then recurse into its nested scopes.

        A nested function inherits the enclosing scope's proven-set names
        (closures read them); a class introduces its own ``self.`` attribute
        environment for the methods directly inside it.
        """
        types = _SetTypes(inherited.names, inherited.self_attrs)
        _collect_local_sets(scope, types)
        yield from self._check_scope(ctx, scope, types)
        for node in _pruned_walk(scope):
            if isinstance(node, ast.ClassDef):
                class_env = _SetTypes(types.names, _collect_class_set_attrs(node))
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._process_scope(ctx, item, class_env)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._process_scope(ctx, node, types)

    def _check_scope(self, ctx: FileContext, scope: ast.AST, types: _SetTypes) -> Iterator[Finding]:
        for node in _pruned_walk(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)) and types.is_set_expr(node.iter):
                yield self._finding(ctx, node.iter, "a for-loop")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if types.is_set_expr(generator.iter):
                        yield self._finding(ctx, generator.iter, "a comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in ("list", "tuple", "enumerate")
                    and node.args
                    and types.is_set_expr(node.args[0])
                ):
                    yield self._finding(ctx, node.args[0], f"{func.id}()")
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and node.args
                    and types.is_set_expr(node.args[0])
                ):
                    yield self._finding(ctx, node.args[0], "str.join")

    def _finding(self, ctx: FileContext, node: ast.expr, where: str) -> Finding:
        return ctx.finding(
            node,
            self.id,
            f"set/frozenset iterated by {where}: iteration order depends on "
            "PYTHONHASHSEED — sort on a structural key (node ids, "
            "node_sort_key) before iterating",
        )


@register
class SortedKeyStrRule(Rule):
    id = "det-sorted-str"
    scope = ("graph/", "carl/", "cache/", "db/")
    description = (
        "sorted(..., key=str) is lexicographic over heterogeneous keys "
        "((10,) before (2,)); sort on a structural key instead"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_sorted = isinstance(func, ast.Name) and func.id == "sorted"
            is_sort = isinstance(func, ast.Attribute) and func.attr == "sort"
            if not (is_sorted or is_sort):
                continue
            for keyword in node.keywords:
                if (
                    keyword.arg == "key"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id in ("str", "repr")
                ):
                    yield ctx.finding(
                        node,
                        self.id,
                        f"sorted with key={keyword.value.id} orders heterogeneous "
                        "keys lexicographically ('(10,)' < '(2,)'); use a "
                        "structural sort key (repro.carl.causal_graph.node_sort_key)",
                    )


@register
class BuiltinHashRule(Rule):
    id = "det-builtin-hash"
    scope = ("cache/", "carl/", "db/", "graph/")
    description = (
        "builtin hash() is salted by PYTHONHASHSEED and must never feed a "
        "persisted fingerprint; use hashlib digests"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    "builtin hash() is per-process salted (PYTHONHASHSEED); "
                    "persisted fingerprints must use hashlib "
                    "(repro.cache.fingerprint._digest)",
                )


@register
class WallClockRule(Rule):
    id = "det-wall-clock"
    scope = ("service/", "observability/", "carl/shard", "carl/batch")
    description = (
        "time.time() is wall-clock (jumps on NTP/DST); span timing and "
        "deadlines must use time.monotonic()/perf_counter()"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "time"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "time"
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    "time.time() is not monotonic; spans and deadlines must "
                    "use time.monotonic() (suppress only for intentional "
                    "wall-clock log timestamps)",
                )
