"""Telemetry-schema rule: emit call sites must match the frozen registry.

The runtime already validates every emission against
:data:`repro.observability.schema.EVENTS` — but only when the emitting code
path runs.  A span added behind a rarely-taken branch (cold-path retry, a
drain mode) can carry an unregistered name or a misspelled metadata field
for a whole release before a test happens to cross it.  This rule resolves
the same contract statically: every ``.start_span(...)`` / ``.span(...)`` /
``.count(...)`` / ``.gauge(...)`` / ``.histogram(...)`` call with a literal
event name is checked
for (a) the name being registered, (b) the method matching the declared
kind, (c) explicit metadata keywords being allowed, and (d) required
metadata being present.

Resolution is receiver-heuristic: the call's receiver must look like a
telemetry registry — ``get_registry()`` directly, or a name/attribute whose
identifier mentions ``registry`` or ``telemetry`` (the codebase's two
binding conventions).  That keeps ``names.count("a")`` (``list.count``,
``str.count``) out of scope.  A non-literal event name (``.count(n)``,
forwarding wrappers) is skipped, as runtime validation still covers it.  A
``**splat`` in the call suppresses the required-keys check (the splat may
supply them) but explicit keywords are still validated.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register
from repro.observability.schema import EVENTS

#: Emit method name -> the event kind it must carry.
_EMIT_KINDS = {
    "start_span": "span",
    "span": "span",
    "count": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
}

#: Keyword arguments consumed by the emit methods themselves (not metadata).
_RESERVED_KWARGS = {
    "span": frozenset({"trace", "parent"}),
    "counter": frozenset({"value"}),
    "gauge": frozenset({"value"}),
    "histogram": frozenset({"value"}),
}


def _is_registry_receiver(node: ast.expr) -> bool:
    """True when ``node`` plausibly evaluates to a TelemetryRegistry."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "get_registry"
    if isinstance(node, ast.Name):
        identifier = node.id
    elif isinstance(node, ast.Attribute):
        identifier = node.attr
    else:
        return False
    lowered = identifier.lower()
    return "registry" in lowered or "telemetry" in lowered


@register
class TelemetrySchemaRule(Rule):
    id = "telemetry-schema"
    scope = ()  # emit sites may appear anywhere the registry is imported
    description = (
        "span/counter/gauge emit call sites must name a registered event, "
        "match its kind, and satisfy its metadata contract"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            kind = _EMIT_KINDS.get(node.func.attr)
            if kind is None:
                continue
            if not _is_registry_receiver(node.func.value):
                continue
            if not node.args:
                continue
            name_arg = node.args[0]
            if not (isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str)):
                continue  # dynamic name: runtime validation covers it
            name = name_arg.value
            spec = EVENTS.get(name)
            if spec is None:
                yield ctx.finding(
                    node,
                    self.id,
                    f"telemetry event {name!r} is not in the frozen EVENTS "
                    "registry (repro/observability/schema.py); register it "
                    "and update the pinned schema test",
                )
                continue
            if spec.kind != kind:
                yield ctx.finding(
                    node,
                    self.id,
                    f"telemetry event {name!r} is declared a {spec.kind} but "
                    f"emitted via .{node.func.attr}() (a {kind} emit)",
                )
                continue
            reserved = _RESERVED_KWARGS[kind]
            has_splat = any(keyword.arg is None for keyword in node.keywords)
            meta_keys = {
                keyword.arg
                for keyword in node.keywords
                if keyword.arg is not None and keyword.arg not in reserved
            }
            unknown = meta_keys - spec.allowed
            if unknown:
                yield ctx.finding(
                    node,
                    self.id,
                    f"telemetry event {name!r} does not allow metadata "
                    f"fields {sorted(unknown)!r} (allowed: "
                    f"{sorted(spec.allowed)!r})",
                )
            missing = set(spec.required) - meta_keys
            if missing and not has_splat:
                yield ctx.finding(
                    node,
                    self.id,
                    f"telemetry event {name!r} requires metadata fields "
                    f"{sorted(missing)!r} at emit time",
                )
