"""Baseline file: grandfathered findings that do not fail the build.

The baseline is a committed JSON file mapping finding fingerprints (see
:meth:`repro.analysis.core.Finding.fingerprint` — path + rule + stripped
source line, so unrelated line drift does not invalidate entries) to
occurrence counts.  ``repro lint --baseline <file>`` subtracts baselined
occurrences from the enforcement view: a finding fails the build only when
its fingerprint is absent, or appears more often than the baseline allows
(the same bad pattern was *added again*).

Policy (``docs/static_analysis.md``): the baseline exists to let a new rule
land before every legacy violation is fixed.  This repo's committed
baseline is empty — every rule runs clean — and should stay that way;
shrinking it is always fine, growing it needs the same scrutiny as a
suppression comment.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.core import Finding

#: Format marker so a future layout change can migrate old files.
_VERSION = 1


def load_baseline(path: str | Path) -> dict[str, int]:
    """fingerprint -> allowed count; missing file means an empty baseline."""
    try:
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return {}
    if not isinstance(raw, dict) or raw.get("version") != _VERSION:
        raise ValueError(f"unrecognized baseline format in {path}")
    entries = raw.get("findings", {})
    if not isinstance(entries, dict):
        raise ValueError(f"malformed baseline findings in {path}")
    return {str(fingerprint): int(count) for fingerprint, count in entries.items()}


def save_baseline(path: str | Path, findings: list[Finding]) -> dict[str, int]:
    """Write the unsuppressed findings as the new baseline; returns it."""
    counts = Counter(f.fingerprint() for f in findings if not f.suppressed)
    payload = {
        "version": _VERSION,
        "findings": {fingerprint: counts[fingerprint] for fingerprint in sorted(counts)},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return dict(payload["findings"])


def apply_baseline(findings: list[Finding], baseline: dict[str, int]) -> list[Finding]:
    """The findings that are *not* covered by the baseline.

    Suppressed findings pass through untouched (they are reported, never
    enforced).  For each fingerprint the first ``baseline[fp]`` occurrences
    (in the driver's deterministic path/line order) are absorbed; any
    excess — the same pattern introduced again — is returned for
    enforcement.
    """
    remaining = dict(baseline)
    kept: list[Finding] = []
    for finding in findings:
        if finding.suppressed:
            kept.append(finding)
            continue
        fingerprint = finding.fingerprint()
        if remaining.get(fingerprint, 0) > 0:
            remaining[fingerprint] -= 1
            continue
        kept.append(finding)
    return kept
