"""Lock-discipline rules: guarded attributes and numpy-under-lock.

The concurrency modules follow two conventions this rule family makes
machine-checkable:

* an attribute assignment annotated ``# guarded-by: <lock>`` (on the
  ``__init__`` line that creates it, or on a class-level field annotation)
  may only be read or written inside ``with self.<lock>:`` — or inside a
  method that declares the caller-holds-lock contract, either by the
  ``*_locked`` name suffix or a ``# guarded-by: <lock>`` comment on its
  ``def`` line;
* bulk numpy work stays **out** of lock scope (the PR 3 scheduler rule:
  "numpy phases outside the lock") — a ``np.*`` call under a held lock
  serializes every other thread behind an array operation.

Analysis is per-class and purely lexical: ``with self.<lock>:`` blocks add
the lock to the held set for their body; nested function bodies reset the
held set (a closure defined under a lock runs later, when the lock may not
be held — it must take the lock itself).  ``__init__`` / ``__post_init__``
are exempt (the object is not yet shared).  Only ``self.<attr>`` receivers
are tracked; the conventions only cover instance state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

#: Methods exempt from the guarded-attribute rule: the instance is not yet
#: (or no longer) visible to other threads.
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__del__"})

#: Sentinel: every lock of the class is held (``*_locked`` naming, which
#: does not name a specific lock).
_ALL_LOCKS = "*"


def _self_attr(node: ast.expr) -> str | None:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_guarded_attrs(class_node: ast.ClassDef, ctx: FileContext) -> dict[str, str]:
    """attr name -> lock name, from ``# guarded-by:`` annotated definitions.

    Covers ``self.<attr> = ...`` assignments (plain or annotated) anywhere
    in the class body — normally ``__init__`` — and class-level field
    annotations (dataclasses).
    """
    guarded: dict[str, str] = {}
    for node in ast.walk(class_node):
        lock = ctx.guarded_lines.get(getattr(node, "lineno", -1))
        if lock is None:
            continue
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                guarded[attr] = lock
            elif isinstance(target, ast.Name) and node in class_node.body:
                guarded[target.id] = lock  # class-level (dataclass) field
    return guarded


def _held_at_entry(method: ast.FunctionDef | ast.AsyncFunctionDef, ctx: FileContext) -> set[str]:
    """Locks the caller-holds-lock contract says are held on entry."""
    held: set[str] = set()
    if method.name.endswith("_locked"):
        held.add(_ALL_LOCKS)
    lock = ctx.guarded_lines.get(method.lineno)
    if lock is not None:
        held.add(lock)
    return held


def _with_locks(node: ast.With | ast.AsyncWith) -> set[str]:
    """Lock names acquired by ``with self.<lock>:`` items of this statement."""
    locks: set[str] = set()
    for item in node.items:
        attr = _self_attr(item.context_expr)
        if attr is not None and "lock" in attr.lower():
            locks.add(attr)
    return locks


class _MethodScanner:
    """Walks one method body tracking the lexically held lock set."""

    def __init__(self, rule: Rule, ctx: FileContext, guarded: dict[str, str]) -> None:
        self.rule = rule
        self.ctx = ctx
        self.guarded = guarded
        self.findings: list[Finding] = []

    def scan(self, method: ast.FunctionDef | ast.AsyncFunctionDef) -> list[Finding]:
        held = _held_at_entry(method, self.ctx)
        for statement in method.body:
            self._visit(statement, held)
        return self.findings

    def _visit(self, node: ast.AST, held: set[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested function runs later: its body starts with no locks
            # held (plus its own caller-holds-lock contract, if declared).
            inner = _held_at_entry(node, self.ctx)
            for statement in node.body:
                self._visit(statement, inner)
            return
        if isinstance(node, ast.Lambda):
            self._visit(node.body, set())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held | _with_locks(node)
            for item in node.items:
                self._check_expr(item.context_expr, held, lvalue=False)
            for statement in node.body:
                self._visit(statement, inner)
            return
        self._check_node(node, held)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held)

    def _check_node(self, node: ast.AST, held: set[str]) -> None:
        if isinstance(node, ast.Attribute):
            self._check_expr(node, held, lvalue=isinstance(node.ctx, (ast.Store, ast.Del)))
        elif isinstance(node, ast.Call):
            self._check_numpy_call(node, held)

    def _check_expr(self, node: ast.expr, held: set[str], lvalue: bool) -> None:
        attr = _self_attr(node)
        if attr is None:
            return
        lock = self.guarded.get(attr)
        if lock is None:
            return
        if _ALL_LOCKS in held or lock in held:
            return
        action = "written" if lvalue else "read"
        self.findings.append(
            self.ctx.finding(
                node,
                "lock-guarded-attr",
                f"attribute self.{attr} is guarded by self.{lock} but is "
                f"{action} outside `with self.{lock}:` (hold the lock, or "
                "declare the caller-holds-lock contract with a *_locked "
                "name / def-line guarded-by comment)",
            )
        )

    def _check_numpy_call(self, node: ast.Call, held: set[str]) -> None:
        if not held:
            return
        func = node.func
        root = func
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name) and root.id in ("np", "numpy"):
            self.findings.append(
                self.ctx.finding(
                    node,
                    "lock-numpy-call",
                    "numpy call inside lock scope serializes every other "
                    "thread behind bulk array work; stage inputs under the "
                    "lock, compute outside it (the PR 3 scheduler rule)",
                )
            )


@register
class GuardedAttrRule(Rule):
    id = "lock-guarded-attr"
    scope = ("service/", "cache/store", "observability/telemetry", "carl/engine")
    description = (
        "attributes annotated `# guarded-by: <lock>` may only be accessed "
        "under `with self.<lock>` or in a caller-holds-lock method"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            guarded = _collect_guarded_attrs(class_node, ctx)
            if not guarded:
                continue
            for item in class_node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in _EXEMPT_METHODS:
                    continue
                scanner = _MethodScanner(self, ctx, guarded)
                for finding in scanner.scan(item):
                    if finding.rule == self.id:
                        yield finding


@register
class NumpyUnderLockRule(Rule):
    id = "lock-numpy-call"
    scope = ("service/", "cache/store", "observability/telemetry", "carl/engine")
    description = "bulk numpy calls must not run inside lock scope"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            guarded = _collect_guarded_attrs(class_node, ctx)
            for item in class_node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                scanner = _MethodScanner(self, ctx, guarded)
                for finding in scanner.scan(item):
                    if finding.rule == self.id:
                        yield finding
