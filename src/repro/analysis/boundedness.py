"""Boundedness rule: long-lived classes must not grow containers forever.

The motivating bug (PR 7): the daemon kept per-query bookkeeping in dicts
keyed by global index and never reaped them — memory grew with every query
answered over the process lifetime, invisible in short tests.  The fix was
an O(in-flight) reaping pass; this rule keeps the *pattern* out: in a
long-lived class (daemon, scheduler, session, registry, engine — matched
by name), a container attribute that some method grows must either also
shrink somewhere in the class (pop/remove/clear/del/reassignment), be
created bounded (``deque(maxlen=...)``), or carry an explicit
``# unbounded-ok: <reason>`` justification on its initialization line.

``queue.Queue`` instances are exempt — a cross-thread handoff queue is
drained by its consumer by design, which this lexical analysis cannot see.
Reassignment counts as a shrink, including the swap-under-lock idiom
``pending, self._buf = self._buf, []``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

#: Class names considered long-lived (process- or session-lifetime).
_LONG_LIVED = re.compile(r"(Daemon|Scheduler|Session|Registry|Engine|Cache|Store|Backend)")

#: Methods that grow a container in place.
_GROW_METHODS = frozenset({"append", "appendleft", "add", "extend", "update", "setdefault", "insert"})

#: Methods that shrink (or bound) a container in place.
_SHRINK_METHODS = frozenset(
    {"pop", "popitem", "popleft", "remove", "discard", "clear", "clear_locked", "truncate"}
)

#: Constructor calls that produce a (potentially unbounded) container.
_CONTAINER_CALLS = frozenset({"dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter"})


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_container_init(value: ast.expr) -> bool:
    """True when ``value`` constructs a growable, unbounded container."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "deque":
            return not any(keyword.arg == "maxlen" for keyword in value.keywords)
        return name in _CONTAINER_CALLS
    return False


def _collect_container_attrs(class_node: ast.ClassDef) -> dict[str, int]:
    """attr name -> init line, for container attributes created in __init__
    (or as class-level / dataclass field defaults)."""
    attrs: dict[str, int] = {}
    for statement in class_node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
            if statement.value is not None and _is_container_init(statement.value):
                attrs[statement.target.id] = statement.lineno
            elif isinstance(statement.value, ast.Call):
                # dataclass field(default_factory=dict/list/set)
                call = statement.value
                if (
                    isinstance(call.func, ast.Name)
                    and call.func.id == "field"
                    and any(
                        keyword.arg == "default_factory"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in _CONTAINER_CALLS
                        for keyword in call.keywords
                    )
                ):
                    attrs[statement.target.id] = statement.lineno
        if isinstance(statement, ast.FunctionDef) and statement.name in ("__init__", "__post_init__"):
            for node in ast.walk(statement):
                value: ast.expr | None = None
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, node.targets
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value, targets = node.value, [node.target]
                if value is None or not _is_container_init(value):
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        attrs[attr] = node.lineno
    return attrs


def _classify_accesses(class_node: ast.ClassDef, attrs: dict[str, int]) -> tuple[set[str], set[str]]:
    """Return ``(grown, shrunk)`` attr-name sets over the whole class body."""
    grown: set[str] = set()
    shrunk: set[str] = set()
    for statement in class_node.body:
        if not isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        is_init = statement.name in ("__init__", "__post_init__")
        for node in ast.walk(statement):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = _self_attr(node.func.value)
                if attr in attrs:
                    if node.func.attr in _GROW_METHODS:
                        grown.add(attr)
                    elif node.func.attr in _SHRINK_METHODS:
                        shrunk.add(attr)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    # self.x[k] = v grows; self.x = ... (outside __init__)
                    # resets — including tuple targets in a swap.
                    if isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr in attrs:
                            grown.add(attr)
                    elif not is_init:
                        elements = (
                            target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
                        )
                        for element in elements:
                            attr = _self_attr(element)
                            if attr in attrs:
                                shrunk.add(attr)
            elif isinstance(node, ast.AugAssign):
                attr = _self_attr(node.target)
                if attr in attrs and isinstance(node.op, ast.Add):
                    grown.add(attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr in attrs:
                            shrunk.add(attr)
    return grown, shrunk


@register
class UnboundedGrowthRule(Rule):
    id = "unbounded-growth"
    scope = ("service/", "observability/", "cache/", "carl/engine")
    description = (
        "container attributes of long-lived classes must shrink somewhere, "
        "be bounded at construction, or carry `# unbounded-ok:`"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for class_node in ast.walk(ctx.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if not _LONG_LIVED.search(class_node.name):
                continue
            attrs = _collect_container_attrs(class_node)
            if not attrs:
                continue
            grown, shrunk = _classify_accesses(class_node, attrs)
            for attr in sorted(grown - shrunk):
                init_line = attrs[attr]
                if init_line in ctx.unbounded_ok:
                    continue
                yield ctx.finding(
                    init_line,
                    self.id,
                    f"container attribute self.{attr} of long-lived class "
                    f"{class_node.name} grows but never shrinks — add a "
                    "reap/LRU/maxlen bound, or justify with "
                    "`# unbounded-ok: <reason>` (the PR 7 daemon-bookkeeping bug)",
                )
