"""Recursive-descent parser for CaRL programs, rules and queries.

The concrete syntax follows the paper's notation as closely as plain text
allows::

    // schema
    ENTITY Person(person);
    ENTITY Submission(sub);
    RELATIONSHIP Author(person, sub);
    ATTRIBUTE Prestige OF Person;
    LATENT ATTRIBUTE Quality OF Submission;

    // relational causal rules
    Prestige[A] <= Qualification[A] WHERE Person(A);
    Quality[S] <= Qualification[A], Prestige[A] WHERE Author(A, S);
    Score[S] <= Quality[S], Prestige[A] WHERE Author(A, S);

    // aggregate rule
    AVG_Score[A] <= Score[S] WHERE Author(A, S);

and for queries::

    Score[S] <= Prestige[A] ?
    AVG_Score[A] <= Prestige[A] ?
    Score[S] <= Prestige[A] ? WHEN MORE THAN 1/3 PEERS TREATED
    Score[S] <= Prestige[A] ? WHERE Submitted(S, C), Blind[C] = "single"

``<=``, ``<-`` and the unicode arrow all spell the causal arrow.
"""

from __future__ import annotations

from repro.carl.ast import (
    AggregateRule,
    AttributeAtom,
    AttributeDeclaration,
    CausalQuery,
    CausalRule,
    Comparison,
    Condition,
    EntityDeclaration,
    PeerCondition,
    PredicateAtom,
    Program,
    RelationshipDeclaration,
    Term,
    Variable,
)
from repro.carl.errors import ParseError
from repro.carl.lexer import Token, iter_statements, tokenize
from repro.db.aggregates import AGGREGATES


class _Parser:
    """Statement parser over a bounded token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._position = 0

    # -- token helpers --------------------------------------------------
    def _peek(self, offset: int = 0) -> Token | None:
        index = self._position + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _at_end(self) -> bool:
        return self._position >= len(self._tokens)

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of statement")
        self._position += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"expected {value or kind}, found end of statement")
        if token.kind != kind or (value is not None and token.value != value):
            raise ParseError(
                f"expected {value or kind}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    def _match(self, kind: str, value: str | None = None) -> bool:
        token = self._peek()
        if token is None or token.kind != kind:
            return False
        if value is not None and token.value != value:
            return False
        self._advance()
        return True

    # -- statements -----------------------------------------------------
    def parse_statement(self) -> object:
        token = self._peek()
        if token is None:
            raise ParseError("empty statement")
        if token.kind == "KEYWORD" and token.value == "ENTITY":
            return self._parse_entity()
        if token.kind == "KEYWORD" and token.value == "RELATIONSHIP":
            return self._parse_relationship()
        if token.kind == "KEYWORD" and token.value in ("ATTRIBUTE", "LATENT"):
            return self._parse_attribute()
        return self._parse_rule_or_query()

    def _parse_entity(self) -> EntityDeclaration:
        self._expect("KEYWORD", "ENTITY")
        name = self._expect("IDENT").value
        self._expect("OP", "(")
        key = self._expect("IDENT").value
        self._expect("OP", ")")
        self._ensure_done()
        return EntityDeclaration(name=str(name), key=str(key))

    def _parse_relationship(self) -> RelationshipDeclaration:
        self._expect("KEYWORD", "RELATIONSHIP")
        name = self._expect("IDENT").value
        self._expect("OP", "(")
        keys: list[str] = []
        references: list[str | None] = []
        while True:
            keys.append(str(self._expect("IDENT").value))
            # Optional explicit entity reference: "RELATIONSHIP Collab(author Person, peer Person)".
            token = self._peek()
            if token is not None and token.kind == "IDENT":
                references.append(str(self._advance().value))
            else:
                references.append(None)
            if not self._match("OP", ","):
                break
        self._expect("OP", ")")
        self._ensure_done()
        return RelationshipDeclaration(
            name=str(name), keys=tuple(keys), references=tuple(references)
        )

    def _parse_attribute(self) -> AttributeDeclaration:
        latent = self._match("KEYWORD", "LATENT")
        self._expect("KEYWORD", "ATTRIBUTE")
        name = str(self._expect("IDENT").value)
        # Optional bracketed variable list (documentation only; the subject fixes the arity).
        if self._match("OP", "["):
            self._expect("IDENT")
            while self._match("OP", ","):
                self._expect("IDENT")
            self._expect("OP", "]")
        self._expect("KEYWORD", "OF")
        subject = str(self._expect("IDENT").value)
        column = None
        if self._match("KEYWORD", "COLUMN"):
            column = str(self._expect("IDENT").value)
        self._ensure_done()
        return AttributeDeclaration(name=name, subject=subject, column=column, latent=latent)

    # -- rules and queries ------------------------------------------------
    def _parse_rule_or_query(self) -> CausalRule | AggregateRule | CausalQuery:
        head = self._parse_attribute_atom()
        self._expect("OP", "<=")
        body = [self._parse_attribute_atom()]

        # Optional treatment threshold directly after the first body atom
        # (query form ``Y[S] <= Qualification[A] >= 30 ?``).
        threshold = None
        token = self._peek()
        if token is not None and token.kind == "OP" and token.value in (">", ">=", "<", "=", "!="):
            operator = str(self._advance().value)
            threshold_value = self._parse_constant()
            threshold = Comparison(left=body[0], operator=operator, right=threshold_value)

        while self._match("OP", ","):
            body.append(self._parse_attribute_atom())

        is_query = self._match("OP", "?")
        peer_condition = None
        if self._match("KEYWORD", "WHEN"):
            if not is_query:
                raise ParseError("WHEN ... PEERS TREATED is only allowed on queries")
            peer_condition = self._parse_peer_condition()

        condition = Condition()
        if self._match("KEYWORD", "WHERE"):
            condition = self._parse_condition()
        self._ensure_done()

        if is_query:
            if len(body) != 1:
                raise ParseError("a causal query has exactly one treatment attribute")
            return CausalQuery(
                response=head,
                treatment=body[0],
                peer_condition=peer_condition,
                condition=condition,
                treatment_threshold=threshold,
            )

        if threshold is not None:
            raise ParseError("treatment thresholds are only allowed on queries")

        aggregate = _aggregate_prefix(head.name)
        if aggregate is not None:
            if len(body) != 1:
                raise ParseError("an aggregate rule has exactly one body attribute")
            return AggregateRule(aggregate=aggregate, head=head, body=body[0], condition=condition)
        return CausalRule(head=head, body=tuple(body), condition=condition)

    def _parse_attribute_atom(self) -> AttributeAtom:
        name = str(self._expect("IDENT").value)
        self._expect("OP", "[")
        terms = [self._parse_term()]
        while self._match("OP", ","):
            terms.append(self._parse_term())
        self._expect("OP", "]")
        return AttributeAtom(name=name, terms=tuple(terms))

    def _parse_predicate_atom(self) -> PredicateAtom:
        name = str(self._expect("IDENT").value)
        self._expect("OP", "(")
        terms = [self._parse_term()]
        while self._match("OP", ","):
            terms.append(self._parse_term())
        self._expect("OP", ")")
        return PredicateAtom(predicate=name, terms=tuple(terms))

    def _parse_term(self) -> Term:
        token = self._peek()
        if token is None:
            raise ParseError("expected a term, found end of statement")
        if token.kind == "IDENT":
            self._advance()
            return Variable(str(token.value))
        return self._parse_constant()

    def _parse_constant(self) -> Term:
        token = self._advance()
        if token.kind in ("NUMBER", "STRING"):
            return token.value
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return token.value == "TRUE"
        raise ParseError(f"expected a constant, found {token.value!r}", token.line, token.column)

    def _parse_condition(self) -> Condition:
        atoms: list[PredicateAtom] = []
        comparisons: list[Comparison] = []
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind != "IDENT":
                raise ParseError(
                    f"expected an atom in WHERE clause, found {token.value!r}",
                    token.line,
                    token.column,
                )
            following = self._peek(1)
            if following is not None and following.kind == "OP" and following.value == "(":
                atoms.append(self._parse_predicate_atom())
            elif following is not None and following.kind == "OP" and following.value == "[":
                left = self._parse_attribute_atom()
                operator = str(self._expect("OP").value)
                if operator not in ("=", "!=", "<", "<=", ">", ">="):
                    raise ParseError(f"unexpected operator {operator!r} in comparison")
                right = self._parse_constant()
                comparisons.append(Comparison(left=left, operator=operator, right=right))
            else:
                left_variable = Variable(str(self._expect("IDENT").value))
                operator = str(self._expect("OP").value)
                if operator not in ("=", "!=", "<", "<=", ">", ">="):
                    raise ParseError(f"unexpected operator {operator!r} in comparison")
                right = self._parse_constant()
                comparisons.append(Comparison(left=left_variable, operator=operator, right=right))
            if not self._match("OP", ","):
                break
        return Condition(atoms=tuple(atoms), comparisons=tuple(comparisons))

    def _parse_peer_condition(self) -> PeerCondition:
        token = self._peek()
        if token is None:
            raise ParseError("expected a peer condition after WHEN")
        if self._match("KEYWORD", "ALL"):
            condition = PeerCondition(kind="ALL")
        elif self._match("KEYWORD", "NONE"):
            condition = PeerCondition(kind="NONE")
        elif self._match("KEYWORD", "MORE"):
            self._expect("KEYWORD", "THAN")
            condition = PeerCondition(kind="MORE_THAN_PERCENT", value=self._parse_percentage())
        elif self._match("KEYWORD", "LESS"):
            self._expect("KEYWORD", "THAN")
            condition = PeerCondition(kind="LESS_THAN_PERCENT", value=self._parse_percentage())
        elif self._match("KEYWORD", "AT"):
            if self._match("KEYWORD", "LEAST"):
                kind = "AT_LEAST"
            elif self._match("KEYWORD", "MOST"):
                kind = "AT_MOST"
            else:
                raise ParseError("expected LEAST or MOST after AT")
            condition = PeerCondition(kind=kind, value=self._parse_number())
        elif self._match("KEYWORD", "EXACTLY"):
            condition = PeerCondition(kind="EXACTLY", value=self._parse_number())
        else:
            raise ParseError(
                f"unexpected peer condition {token.value!r}", token.line, token.column
            )
        self._expect("KEYWORD", "PEERS")
        self._expect("KEYWORD", "TREATED")
        return condition

    def _parse_number(self) -> float:
        token = self._expect("NUMBER")
        return float(token.value)

    def _parse_percentage(self) -> float:
        """Parse ``k%``, ``a/b`` or a bare number; result is in percent units."""
        value = self._parse_number()
        if self._match("OP", "/"):
            denominator = self._parse_number()
            if denominator == 0:
                raise ParseError("zero denominator in peer-condition fraction")
            return 100.0 * value / denominator
        if self._match("OP", "%"):
            return value
        # A bare value <= 1 is read as a fraction, anything larger as a percentage.
        return value * 100.0 if value <= 1.0 else value

    def _ensure_done(self) -> None:
        token = self._peek()
        if token is not None:
            raise ParseError(
                f"unexpected trailing input {token.value!r}", token.line, token.column
            )


def _aggregate_prefix(name: str) -> str | None:
    """Return the aggregate keyword when ``name`` looks like ``AVG_Score``."""
    prefix, separator, rest = name.partition("_")
    if separator and rest and prefix.upper() in AGGREGATES:
        return prefix.upper()
    return None


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def parse_program(text: str) -> Program:
    """Parse a full CaRL program (declarations, rules, aggregate rules, queries)."""
    program = Program()
    for statement_tokens in iter_statements(tokenize(text)):
        parsed = _Parser(statement_tokens).parse_statement()
        if isinstance(parsed, EntityDeclaration):
            program.entities.append(parsed)
        elif isinstance(parsed, RelationshipDeclaration):
            program.relationships.append(parsed)
        elif isinstance(parsed, AttributeDeclaration):
            program.attributes.append(parsed)
        elif isinstance(parsed, AggregateRule):
            program.aggregate_rules.append(parsed)
        elif isinstance(parsed, CausalRule):
            program.rules.append(parsed)
        elif isinstance(parsed, CausalQuery):
            program.queries.append(parsed)
        else:  # pragma: no cover - defensive
            raise ParseError(f"unsupported statement {parsed!r}")
    return program


def parse_rule(text: str) -> CausalRule | AggregateRule:
    """Parse a single relational causal rule or aggregate rule."""
    statements = list(iter_statements(tokenize(text)))
    if len(statements) != 1:
        raise ParseError(f"expected exactly one rule, found {len(statements)} statements")
    parsed = _Parser(statements[0]).parse_statement()
    if not isinstance(parsed, (CausalRule, AggregateRule)):
        raise ParseError(f"expected a rule, parsed {type(parsed).__name__}")
    return parsed


def parse_query(text: str) -> CausalQuery:
    """Parse a single causal query."""
    statements = list(iter_statements(tokenize(text)))
    if len(statements) != 1:
        raise ParseError(f"expected exactly one query, found {len(statements)} statements")
    parsed = _Parser(statements[0]).parse_statement()
    if not isinstance(parsed, CausalQuery):
        raise ParseError(f"expected a query (did you forget the trailing '?'), parsed {type(parsed).__name__}")
    return parsed
