"""Relational paths, treatment/response unification, and relational peers.

Section 4.3 of the paper.  When the treated units and the response units are
different entity sets (authors vs submissions), CaRL unifies them by
aggregating the response along a *relational path* between the two
predicates, producing an aggregated response attribute over the treated
units.  Relational *peers* of a unit are the other units whose treatment has
a directed path to the unit's (possibly aggregated) response in the grounded
causal graph (Definition 4.3).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.carl.ast import AggregateRule, AttributeAtom, Condition, PredicateAtom, Variable
from repro.carl.causal_graph import GroundedAttribute, GroundedCausalGraph
from repro.carl.errors import QueryError
from repro.carl.schema import RelationalCausalSchema


# ----------------------------------------------------------------------
# relational paths
# ----------------------------------------------------------------------
def find_relational_path(
    schema: RelationalCausalSchema, start_entity: str, end_entity: str
) -> list[str]:
    """Shortest relational path between two entities, as an alternating list
    ``[entity, relationship, entity, ..., entity]`` (Definition 4.2).

    Raises :class:`QueryError` when the entities are not relationally
    connected, mirroring the paper's assumption that treatment and response
    units must be connected for the query to be meaningful.
    """
    if start_entity == end_entity:
        return [start_entity]

    # Build entity adjacency via relationships.
    adjacency: dict[str, list[tuple[str, str]]] = {name: [] for name in schema.entity_names}
    for relationship_name in schema.relationship_names:
        info = schema.predicate(relationship_name)
        referenced = list(dict.fromkeys(info.referenced_entities))
        for source in referenced:
            for target in referenced:
                if source != target:
                    adjacency[source].append((relationship_name, target))
        # A self-relationship (e.g. Collaboration(person, person)) connects an
        # entity to itself through the relationship.
        if len(referenced) == 1:
            adjacency[referenced[0]].append((relationship_name, referenced[0]))

    previous: dict[str, tuple[str, str]] = {}
    visited = {start_entity}
    frontier = deque([start_entity])
    while frontier:
        current = frontier.popleft()
        for relationship_name, neighbour in adjacency.get(current, ()):
            if neighbour in visited and neighbour != end_entity:
                continue
            if neighbour not in previous:
                previous[neighbour] = (current, relationship_name)
            if neighbour == end_entity:
                return _reconstruct_path(previous, start_entity, end_entity)
            if neighbour not in visited:
                visited.add(neighbour)
                frontier.append(neighbour)
    raise QueryError(
        f"entities {start_entity!r} and {end_entity!r} are not relationally connected; "
        "a causal query between them is not meaningful"
    )


def _reconstruct_path(
    previous: dict[str, tuple[str, str]], start: str, end: str
) -> list[str]:
    path = [end]
    current = end
    while current != start:
        parent, relationship = previous[current]
        path.append(relationship)
        path.append(parent)
        current = parent
    path.reverse()
    return path


# ----------------------------------------------------------------------
# unification of treated and response units
# ----------------------------------------------------------------------
def build_unifying_aggregate_rule(
    schema: RelationalCausalSchema,
    response_attribute: str,
    treatment_subject: str,
    aggregate: str = "AVG",
) -> AggregateRule:
    """Aggregate rule mapping the response attribute onto the treated units.

    Implements rule (21) of the paper: ``AGG_Y[X] <= Y[X'] WHERE R1(...), ...``
    where the condition is the relational path between the treatment subject
    and the response subject.  Only entity subjects are supported for the
    treatment side (the common case); the response may live on an entity or a
    relationship reachable from it.
    """
    response_subject = schema.subject_of(response_attribute)
    response_info = schema.predicate(response_subject)

    treatment_info = schema.predicate(treatment_subject)
    if not treatment_info.is_entity:
        raise QueryError(
            "unification requires the treated units to be an entity; "
            f"{treatment_subject!r} is a relationship"
        )

    # Target entity on the response side: the response subject itself when it
    # is an entity, otherwise the first referenced entity of the relationship
    # that is reachable from the treatment entity.
    if response_info.is_entity:
        target_entities = [response_subject]
    else:
        target_entities = list(dict.fromkeys(response_info.referenced_entities))

    path: list[str] | None = None
    target_used: str | None = None
    for candidate in target_entities:
        try:
            path = find_relational_path(schema, treatment_subject, candidate)
        except QueryError:
            continue
        target_used = candidate
        break
    if path is None or target_used is None:
        raise QueryError(
            f"no relational path connects the treated units ({treatment_subject!r}) to the "
            f"response attribute {response_attribute!r}"
        )

    # Assign one variable per entity occurrence along the path.
    entity_variables: dict[str, Variable] = {}

    def variable_for(entity: str) -> Variable:
        if entity not in entity_variables:
            entity_variables[entity] = Variable(f"V_{entity}")
        return entity_variables[entity]

    condition_atoms: list[PredicateAtom] = []
    for index in range(1, len(path), 2):
        relationship_name = path[index]
        info = schema.predicate(relationship_name)
        terms = tuple(variable_for(entity) for entity in info.referenced_entities)
        condition_atoms.append(PredicateAtom(predicate=relationship_name, terms=terms))

    # Head variable: the treatment entity; body variable(s): the response subject keys.
    head_variable = variable_for(treatment_subject)
    if response_info.is_entity:
        body_terms: tuple[Variable, ...] = (variable_for(response_subject),)
        if not condition_atoms:
            # Same entity on both sides; ground over the entity itself.
            condition_atoms.append(
                PredicateAtom(predicate=response_subject, terms=(variable_for(response_subject),))
            )
    else:
        body_terms = tuple(variable_for(entity) for entity in response_info.referenced_entities)
        condition_atoms.append(PredicateAtom(predicate=response_subject, terms=body_terms))

    head = AttributeAtom(name=f"{aggregate}_{response_attribute}", terms=(head_variable,))
    body = AttributeAtom(name=response_attribute, terms=body_terms)
    return AggregateRule(
        aggregate=aggregate,
        head=head,
        body=body,
        condition=Condition(atoms=tuple(condition_atoms)),
    )


# ----------------------------------------------------------------------
# relational peers
# ----------------------------------------------------------------------
def compute_peers(
    graph: GroundedCausalGraph,
    treatment_attribute: str,
    response_attribute: str,
    units: list[tuple[Any, ...]],
    within: list[tuple[Any, ...]] | None = None,
) -> dict[tuple[Any, ...], list[tuple[Any, ...]]]:
    """Relational peers of every unit (Definition 4.3).

    ``units`` are the unified treatment/response unit keys.  A unit ``p`` is
    a peer of ``x`` when there is a directed path from ``T[p]`` to ``Y[x]``
    in the grounded graph, with ``p != x``.

    ``within`` restricts peer *membership* independently of which units are
    walked: a shard worker computes peers for its unit-range slice only, but
    a sliced unit's peers must still be drawn from the full unit list — so
    the shard passes its slice as ``units`` and the full list as ``within``.
    Defaults to ``units`` (peer membership = walked units), the serial
    behavior.
    """
    unit_set = set(units if within is None else within)
    peers: dict[tuple[Any, ...], list[tuple[Any, ...]]] = {}
    for unit in units:
        response_node = GroundedAttribute(response_attribute, unit)
        if response_node not in graph:
            peers[unit] = []
            continue
        treated_ancestors = graph.ancestor_nodes_of_attribute(response_node, treatment_attribute)
        peers[unit] = [
            ancestor.key
            for ancestor in treated_ancestors
            if ancestor.key != unit and ancestor.key in unit_set
        ]
    return peers


def influencing_treated_units(
    graph: GroundedCausalGraph,
    treatment_attribute: str,
    response_node: GroundedAttribute,
) -> list[tuple[Any, ...]]:
    """Keys of treated units with a directed path to ``response_node`` (the set
    ``S'`` of Theorem 5.2)."""
    if response_node not in graph:
        return []
    return [
        ancestor.key
        for ancestor in graph.ancestor_nodes_of_attribute(response_node, treatment_attribute)
    ]
