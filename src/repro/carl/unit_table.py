"""Unit-table construction (Algorithm 1 of the paper).

The unit table is the flat, single-table representation of a relational
causal query: one row per (unified) unit with its outcome, its own
treatment, the embedded treatments of its relational peers, and the embedded
confounding covariates detected by Theorem 5.2.  Once built, any standard
single-table causal estimator can be applied to it (Section 5.2.1).
"""

from __future__ import annotations

import copy
from collections import Counter
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from repro.carl.causal_graph import GroundedAttribute, GroundedCausalGraph
from repro.carl.covariates import parent_adjustment_set
from repro.carl.embeddings import Embedding, MeanEmbedding, get_embedding
from repro.carl.errors import EstimationError

#: Maximum number of distinct categories one-hot encoded for a categorical covariate.
MAX_CATEGORIES = 20


class UnitTable:
    """The flat table produced by Algorithm 1, backed by numpy arrays."""

    def __init__(
        self,
        unit_keys: list[tuple[Any, ...]],
        outcome: np.ndarray,
        treatment: np.ndarray,
        peer_treatment: np.ndarray,
        peer_counts: np.ndarray,
        covariates: np.ndarray,
        peer_columns: list[str],
        covariate_columns: list[str],
        treatment_attribute: str,
        response_attribute: str,
    ) -> None:
        self.unit_keys = unit_keys
        self.outcome = outcome
        self.treatment = treatment
        self.peer_treatment = peer_treatment
        self.peer_counts = peer_counts
        self.covariates = covariates
        self.peer_columns = peer_columns
        self.covariate_columns = covariate_columns
        self.treatment_attribute = treatment_attribute
        self.response_attribute = response_attribute

    # ------------------------------------------------------------------
    # shape / access helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.unit_keys)

    @property
    def has_peers(self) -> bool:
        return bool(self.peer_columns) and bool(np.any(self.peer_counts > 0))

    @property
    def feature_names(self) -> list[str]:
        """Column names of :meth:`features`, in order."""
        return ["treatment", *self.peer_columns, *self.covariate_columns]

    def features(self) -> np.ndarray:
        """Design matrix ``[treatment | peer treatment embedding | covariates]``."""
        columns = [self.treatment.reshape(-1, 1)]
        if self.peer_treatment.size:
            columns.append(self.peer_treatment)
        if self.covariates.size:
            columns.append(self.covariates)
        return np.hstack(columns) if columns else np.empty((len(self), 0))

    def adjustment_features(self) -> np.ndarray:
        """Covariates plus peer-treatment embedding (everything except own treatment)."""
        columns = []
        if self.peer_treatment.size:
            columns.append(self.peer_treatment)
        if self.covariates.size:
            columns.append(self.covariates)
        if not columns:
            return np.empty((len(self), 0))
        return np.hstack(columns)

    def peer_fraction(self) -> np.ndarray:
        """Fraction of each unit's peers that are treated (0 when it has no peers)."""
        if not self.peer_columns:
            return np.zeros(len(self))
        # The first peer column is the mean of the binarized peer treatments.
        return self.peer_treatment[:, 0].copy()

    def to_rows(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Human-readable rows (the paper's Table 1 rendering of the unit table)."""
        rows = []
        count = len(self) if limit is None else min(limit, len(self))
        for index in range(count):
            row: dict[str, Any] = {
                "unit": self.unit_keys[index],
                self.response_attribute: float(self.outcome[index]),
                self.treatment_attribute: float(self.treatment[index]),
            }
            for column_index, column in enumerate(self.peer_columns):
                row[column] = float(self.peer_treatment[index, column_index])
            for column_index, column in enumerate(self.covariate_columns):
                row[column] = float(self.covariates[index, column_index])
            rows.append(row)
        return rows

    def summary(self) -> dict[str, Any]:
        treated = self.treatment > 0.5
        return {
            "units": len(self),
            "treated": int(treated.sum()),
            "control": int((~treated).sum()),
            "covariate_columns": list(self.covariate_columns),
            "peer_columns": list(self.peer_columns),
            "mean_outcome": float(self.outcome.mean()) if len(self) else float("nan"),
            "mean_peer_count": float(self.peer_counts.mean()) if len(self) else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UnitTable(units={len(self)}, treatment={self.treatment_attribute!r}, "
            f"response={self.response_attribute!r}, covariates={len(self.covariate_columns)})"
        )


def default_binarizer(attribute: str) -> Callable[[Any], float]:
    """Binarize a raw treatment value: booleans and 0/1 numerics pass through."""

    def binarize(value: Any) -> float:
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, (int, float)) and float(value) in (0.0, 1.0):
            return float(value)
        raise EstimationError(
            f"treatment attribute {attribute!r} has non-binary value {value!r}; "
            "add a threshold to the query (e.g. 'T[X] >= 30') to binarize it"
        )

    return binarize


def build_unit_table(
    graph: GroundedCausalGraph,
    values: dict[GroundedAttribute, Any],
    treatment_attribute: str,
    response_attribute: str,
    units: Sequence[tuple[Any, ...]],
    peers: dict[tuple[Any, ...], list[tuple[Any, ...]]],
    is_observed: Callable[[str], bool],
    embedding: str | Embedding = "mean",
    peer_embedding: str | Embedding | None = None,
    binarize: Callable[[Any], float] | None = None,
) -> UnitTable:
    """Algorithm 1: build the unit table for a (unified) treatment/response pair.

    Parameters mirror the paper's algorithm: the grounded causal graph, the
    observed (and aggregated) grounded values, the treatment and response
    attribute functions, the unified units and their relational peers, and
    the embedding functions used to collapse variable-size vectors.
    """
    binarize = binarize or default_binarizer(treatment_attribute)
    peer_embedder = get_embedding(peer_embedding if peer_embedding is not None else MeanEmbedding())

    kept_units: list[tuple[Any, ...]] = []
    outcomes: list[float] = []
    treatments: list[float] = []
    peer_groups: list[list[float]] = []
    peer_counts: list[int] = []
    covariate_groups: list[dict[str, list[Any]]] = []

    for unit in units:
        response_node = GroundedAttribute(response_attribute, unit)
        treatment_node = GroundedAttribute(treatment_attribute, unit)
        outcome_value = values.get(response_node)
        treatment_value = values.get(treatment_node)
        if outcome_value is None or treatment_value is None:
            continue
        try:
            own_treatment = binarize(treatment_value)
            peer_values = [
                binarize(values[GroundedAttribute(treatment_attribute, peer)])
                for peer in peers.get(unit, [])
                if GroundedAttribute(treatment_attribute, peer) in values
            ]
        except EstimationError:
            raise
        # Theorem 5.2 adjustment set, split into the unit's own confounders and
        # its peers' confounders so they enter the unit table as separate
        # (separately embedded) columns, mirroring Table 1 of the paper.
        own_adjustment = parent_adjustment_set(
            graph, treatment_attribute, response_node, [unit], is_observed
        )
        peer_adjustment = parent_adjustment_set(
            graph, treatment_attribute, response_node, list(peers.get(unit, [])), is_observed
        )
        own_nodes = set(own_adjustment)
        grouped: dict[str, list[Any]] = {}
        for node in own_adjustment:
            if node in values:
                grouped.setdefault(f"own_{node.attribute}", []).append(values[node])
        for node in peer_adjustment:
            if node in values and node not in own_nodes:
                grouped.setdefault(f"peer_{node.attribute}", []).append(values[node])

        kept_units.append(unit)
        outcomes.append(float(outcome_value))
        treatments.append(own_treatment)
        peer_groups.append(peer_values)
        peer_counts.append(len(peers.get(unit, [])))
        covariate_groups.append(grouped)

    if not kept_units:
        raise EstimationError(
            f"no units with observed treatment {treatment_attribute!r} and response "
            f"{response_attribute!r}; cannot build a unit table"
        )

    peer_matrix, peer_columns = _embed_peer_treatments(peer_groups, peer_embedder)
    covariate_matrix, covariate_columns = _embed_covariates(covariate_groups, embedding)

    return UnitTable(
        unit_keys=kept_units,
        outcome=np.asarray(outcomes, dtype=float),
        treatment=np.asarray(treatments, dtype=float),
        peer_treatment=peer_matrix,
        peer_counts=np.asarray(peer_counts, dtype=float),
        covariates=covariate_matrix,
        peer_columns=peer_columns,
        covariate_columns=covariate_columns,
        treatment_attribute=treatment_attribute,
        response_attribute=response_attribute,
    )


# ----------------------------------------------------------------------
# embedding helpers
# ----------------------------------------------------------------------
def _embed_peer_treatments(
    peer_groups: list[list[float]], embedder: Embedding
) -> tuple[np.ndarray, list[str]]:
    if not any(peer_groups):
        return np.empty((len(peer_groups), 0)), []
    embedder = copy.deepcopy(embedder).fit(peer_groups)
    columns = embedder.feature_names("peer_treatment")
    matrix = np.asarray([embedder.apply(group) for group in peer_groups], dtype=float)
    return matrix, columns


def _embed_covariates(
    covariate_groups: list[dict[str, list[Any]]],
    embedding: str | Embedding,
) -> tuple[np.ndarray, list[str]]:
    attribute_names: list[str] = []
    for grouped in covariate_groups:
        for name in grouped:
            if name not in attribute_names:
                attribute_names.append(name)
    if not attribute_names:
        return np.empty((len(covariate_groups), 0)), []

    blocks: list[np.ndarray] = []
    columns: list[str] = []
    for attribute in attribute_names:
        groups = [grouped.get(attribute, []) for grouped in covariate_groups]
        if _is_numeric_attribute(groups):
            embedder = copy.deepcopy(get_embedding(embedding)).fit(
                [[_to_number(v) for v in group] for group in groups]
            )
            block = np.asarray(
                [embedder.apply([_to_number(v) for v in group]) for group in groups], dtype=float
            )
            block_columns = embedder.feature_names(f"cov_{attribute}")
        else:
            block, block_columns = _encode_categorical(attribute, groups)
        blocks.append(block)
        columns.extend(block_columns)
    return np.hstack(blocks), columns


def _is_numeric_attribute(groups: list[list[Any]]) -> bool:
    for group in groups:
        for value in group:
            if isinstance(value, bool):
                continue
            if not isinstance(value, (int, float)):
                return False
    return True


def _to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    return float(value)


def _encode_categorical(
    attribute: str, groups: list[list[Any]]
) -> tuple[np.ndarray, list[str]]:
    """Encode a categorical covariate group as per-category fractions + count.

    For the common case of a single parent value per unit this reduces to a
    one-hot encoding.  The most frequent :data:`MAX_CATEGORIES` categories get
    their own column; the rest share an ``other`` column.
    """
    counts: Counter[Any] = Counter()
    for group in groups:
        counts.update(group)
    categories = [category for category, _ in counts.most_common(MAX_CATEGORIES)]
    category_index = {category: position for position, category in enumerate(categories)}
    has_other = len(counts) > len(categories)

    width = len(categories) + (1 if has_other else 0) + 1  # + count column
    matrix = np.zeros((len(groups), width), dtype=float)
    for row, group in enumerate(groups):
        if not group:
            continue
        total = float(len(group))
        for value in group:
            position = category_index.get(value)
            if position is None:
                position = len(categories)  # "other"
            matrix[row, position] += 1.0 / total
        matrix[row, -1] = total

    columns = [f"cov_{attribute}_is_{_category_label(category)}" for category in categories]
    if has_other:
        columns.append(f"cov_{attribute}_is_other")
    columns.append(f"cov_{attribute}_count")
    return matrix, columns


def _category_label(category: Any) -> str:
    label = str(category).strip().replace(" ", "_")
    return label or "empty"
