"""Unit-table construction (Algorithm 1 of the paper).

The unit table is the flat, single-table representation of a relational
causal query: one row per (unified) unit with its outcome, its own
treatment, the embedded treatments of its relational peers, and the embedded
confounding covariates detected by Theorem 5.2.  Once built, any standard
single-table causal estimator can be applied to it (Section 5.2.1).
"""

from __future__ import annotations

import copy
from collections import Counter
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.carl.causal_graph import GroundedAttribute, GroundedCausalGraph
from repro.carl.covariates import parent_adjustment_set
from repro.carl.embeddings import Embedding, MeanEmbedding, get_embedding
from repro.carl.errors import EstimationError
from repro.db.aggregates import as_numeric_array

#: Maximum number of distinct categories one-hot encoded for a categorical covariate.
MAX_CATEGORIES = 20

#: Unit-table construction backends (see :func:`build_unit_table`).
UNIT_TABLE_BACKENDS = ("rows", "columnar")


class UnitTable:
    """The flat table produced by Algorithm 1, backed by numpy arrays."""

    def __init__(
        self,
        unit_keys: list[tuple[Any, ...]],
        outcome: np.ndarray,
        treatment: np.ndarray,
        peer_treatment: np.ndarray,
        peer_counts: np.ndarray,
        covariates: np.ndarray,
        peer_columns: list[str],
        covariate_columns: list[str],
        treatment_attribute: str,
        response_attribute: str,
    ) -> None:
        self.unit_keys = unit_keys
        self.outcome = outcome
        self.treatment = treatment
        self.peer_treatment = peer_treatment
        self.peer_counts = peer_counts
        self.covariates = covariates
        self.peer_columns = peer_columns
        self.covariate_columns = covariate_columns
        self.treatment_attribute = treatment_attribute
        self.response_attribute = response_attribute

    # ------------------------------------------------------------------
    # shape / access helpers
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.unit_keys)

    @property
    def has_peers(self) -> bool:
        return bool(self.peer_columns) and bool(np.any(self.peer_counts > 0))

    @property
    def feature_names(self) -> list[str]:
        """Column names of :meth:`features`, in order."""
        return ["treatment", *self.peer_columns, *self.covariate_columns]

    def features(self) -> np.ndarray:
        """Design matrix ``[treatment | peer treatment embedding | covariates]``."""
        columns = [self.treatment.reshape(-1, 1)]
        if self.peer_treatment.size:
            columns.append(self.peer_treatment)
        if self.covariates.size:
            columns.append(self.covariates)
        return np.hstack(columns) if columns else np.empty((len(self), 0))

    def adjustment_features(self) -> np.ndarray:
        """Covariates plus peer-treatment embedding (everything except own treatment)."""
        columns = []
        if self.peer_treatment.size:
            columns.append(self.peer_treatment)
        if self.covariates.size:
            columns.append(self.covariates)
        if not columns:
            return np.empty((len(self), 0))
        return np.hstack(columns)

    def peer_fraction(self) -> np.ndarray:
        """Fraction of each unit's peers that are treated (0 when it has no peers)."""
        if not self.peer_columns:
            return np.zeros(len(self))
        # The first peer column is the mean of the binarized peer treatments.
        return self.peer_treatment[:, 0].copy()

    def to_rows(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Human-readable rows (the paper's Table 1 rendering of the unit table)."""
        rows = []
        count = len(self) if limit is None else min(limit, len(self))
        for index in range(count):
            row: dict[str, Any] = {
                "unit": self.unit_keys[index],
                self.response_attribute: float(self.outcome[index]),
                self.treatment_attribute: float(self.treatment[index]),
            }
            for column_index, column in enumerate(self.peer_columns):
                row[column] = float(self.peer_treatment[index, column_index])
            for column_index, column in enumerate(self.covariate_columns):
                row[column] = float(self.covariates[index, column_index])
            rows.append(row)
        return rows

    def equals(self, other: "UnitTable") -> bool:
        """Bit-exact equality with ``other`` (NaN payloads and signed zeros
        included).

        This is the contract the artifact cache's ``save -> load`` round trip
        guarantees: a unit table loaded from disk (possibly memory-mapped) is
        ``equals`` to the one that was stored, so estimators see the exact
        same bytes and produce bit-identical answers.
        """
        if self.unit_keys != other.unit_keys:
            return False
        if (
            self.peer_columns != other.peer_columns
            or self.covariate_columns != other.covariate_columns
            or self.treatment_attribute != other.treatment_attribute
            or self.response_attribute != other.response_attribute
        ):
            return False
        for field in ("outcome", "treatment", "peer_treatment", "peer_counts", "covariates"):
            mine = np.asarray(getattr(self, field), dtype=float)
            theirs = np.asarray(getattr(other, field), dtype=float)
            if mine.shape != theirs.shape or mine.tobytes() != theirs.tobytes():
                return False
        return True

    def summary(self) -> dict[str, Any]:
        treated = self.treatment > 0.5
        return {
            "units": len(self),
            "treated": int(treated.sum()),
            "control": int((~treated).sum()),
            "covariate_columns": list(self.covariate_columns),
            "peer_columns": list(self.peer_columns),
            "mean_outcome": float(self.outcome.mean()) if len(self) else float("nan"),
            "mean_peer_count": float(self.peer_counts.mean()) if len(self) else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UnitTable(units={len(self)}, treatment={self.treatment_attribute!r}, "
            f"response={self.response_attribute!r}, covariates={len(self.covariate_columns)})"
        )


def default_binarizer(attribute: str) -> Callable[[Any], float]:
    """Binarize a raw treatment value: booleans and 0/1 numerics pass through."""

    def binarize(value: Any) -> float:
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, (int, float)) and float(value) in (0.0, 1.0):
            return float(value)
        raise EstimationError(
            f"treatment attribute {attribute!r} has non-binary value {value!r}; "
            "add a threshold to the query (e.g. 'T[X] >= 30') to binarize it"
        )

    return binarize


def build_unit_table(
    graph: GroundedCausalGraph,
    values: dict[GroundedAttribute, Any],
    treatment_attribute: str,
    response_attribute: str,
    units: Sequence[tuple[Any, ...]],
    peers: dict[tuple[Any, ...], list[tuple[Any, ...]]],
    is_observed: Callable[[str], bool],
    embedding: str | Embedding = "mean",
    peer_embedding: str | Embedding | None = None,
    binarize: Callable[[Any], float] | None = None,
    backend: str = "columnar",
) -> UnitTable:
    """Algorithm 1: build the unit table for a (unified) treatment/response pair.

    Parameters mirror the paper's algorithm: the grounded causal graph, the
    observed (and aggregated) grounded values, the treatment and response
    attribute functions, the unified units and their relational peers, and
    the embedding functions used to collapse variable-size vectors.

    ``backend`` selects the materialization strategy: ``"rows"`` builds
    per-unit dicts and embeds group by group (the original Algorithm 1
    transcription); ``"columnar"`` (the default) collects covariates into
    flat value/group-id arrays, shares one ancestor walk per unit between
    the own- and peer-adjustment sets, and embeds every unit in single
    vectorized passes.  Both produce identical unit tables.
    """
    if backend not in UNIT_TABLE_BACKENDS:
        raise EstimationError(
            f"unknown unit-table backend {backend!r}; expected one of {UNIT_TABLE_BACKENDS}"
        )
    if backend == "columnar":
        return _build_unit_table_columnar(
            graph,
            values,
            treatment_attribute,
            response_attribute,
            units,
            peers,
            is_observed,
            embedding,
            peer_embedding,
            binarize,
        )
    binarize = binarize or default_binarizer(treatment_attribute)
    peer_embedder = get_embedding(peer_embedding if peer_embedding is not None else MeanEmbedding())

    kept_units: list[tuple[Any, ...]] = []
    outcomes: list[float] = []
    treatments: list[float] = []
    peer_groups: list[list[float]] = []
    peer_counts: list[int] = []
    covariate_groups: list[dict[str, list[Any]]] = []

    for unit in units:
        response_node = GroundedAttribute(response_attribute, unit)
        treatment_node = GroundedAttribute(treatment_attribute, unit)
        outcome_value = values.get(response_node)
        treatment_value = values.get(treatment_node)
        if outcome_value is None or treatment_value is None:
            continue
        try:
            own_treatment = binarize(treatment_value)
            peer_values = [
                binarize(values[GroundedAttribute(treatment_attribute, peer)])
                for peer in peers.get(unit, [])
                if GroundedAttribute(treatment_attribute, peer) in values
            ]
        except EstimationError:
            raise
        # Theorem 5.2 adjustment set, split into the unit's own confounders and
        # its peers' confounders so they enter the unit table as separate
        # (separately embedded) columns, mirroring Table 1 of the paper.
        own_adjustment = parent_adjustment_set(
            graph, treatment_attribute, response_node, [unit], is_observed
        )
        peer_adjustment = parent_adjustment_set(
            graph, treatment_attribute, response_node, list(peers.get(unit, [])), is_observed
        )
        own_nodes = set(own_adjustment)
        grouped: dict[str, list[Any]] = {}
        for node in own_adjustment:
            if node in values:
                grouped.setdefault(f"own_{node.attribute}", []).append(values[node])
        for node in peer_adjustment:
            if node in values and node not in own_nodes:
                grouped.setdefault(f"peer_{node.attribute}", []).append(values[node])

        kept_units.append(unit)
        outcomes.append(float(outcome_value))
        treatments.append(own_treatment)
        peer_groups.append(peer_values)
        peer_counts.append(len(peers.get(unit, [])))
        covariate_groups.append(grouped)

    if not kept_units:
        raise EstimationError(
            f"no units with observed treatment {treatment_attribute!r} and response "
            f"{response_attribute!r}; cannot build a unit table"
        )

    peer_matrix, peer_columns = _embed_peer_treatments(peer_groups, peer_embedder)
    covariate_matrix, covariate_columns = _embed_covariates(covariate_groups, embedding)

    return UnitTable(
        unit_keys=kept_units,
        outcome=np.asarray(outcomes, dtype=float),
        treatment=np.asarray(treatments, dtype=float),
        peer_treatment=peer_matrix,
        peer_counts=np.asarray(peer_counts, dtype=float),
        covariates=covariate_matrix,
        peer_columns=peer_columns,
        covariate_columns=covariate_columns,
        treatment_attribute=treatment_attribute,
        response_attribute=response_attribute,
    )


# ----------------------------------------------------------------------
# columnar (bulk) materialization
# ----------------------------------------------------------------------
_MISSING = object()


@dataclass(frozen=True)
class UnitTableInputs:
    """The embedding- and binarization-independent inputs of one unit table.

    Everything :func:`collect_unit_table_inputs` gathers from the grounded
    graph — kept units, raw treatment/outcome/peer values, and flat covariate
    ``(value, unit-row)`` buckets — depends only on ``(graph, values,
    treatment attribute, response attribute, units, peers)``.  Queries that
    differ only in treatment threshold or embedding can therefore share one
    collection and diverge at :func:`materialize_unit_table`, which is how
    :meth:`CaRLEngine.answer_all` amortizes graph walks across a batch.

    Instances are treated as immutable after collection: materialization only
    reads them, so one collection may back any number of concurrent
    materializations.
    """

    treatment_attribute: str
    response_attribute: str
    unit_keys: list[tuple[Any, ...]] = field(repr=False)
    outcomes_raw: list[Any] = field(repr=False)
    treatments_raw: list[Any] = field(repr=False)
    peer_counts: list[int] = field(repr=False)
    peer_values_raw: list[Any] = field(repr=False)
    peer_group_ids: list[int] = field(repr=False)
    covariate_order: list[str] = field(repr=False)
    #: column name -> (flat values, flat unit-row ids)
    buckets: dict[str, tuple[list[Any], list[int]]] = field(repr=False)

    def __len__(self) -> int:
        return len(self.unit_keys)


def _build_unit_table_columnar(
    graph: GroundedCausalGraph,
    values: dict[GroundedAttribute, Any],
    treatment_attribute: str,
    response_attribute: str,
    units: Sequence[tuple[Any, ...]],
    peers: dict[tuple[Any, ...], list[tuple[Any, ...]]],
    is_observed: Callable[[str], bool],
    embedding: str | Embedding,
    peer_embedding: str | Embedding | None,
    binarize: Callable[[Any], float] | None,
) -> UnitTable:
    """Bulk variant of Algorithm 1.

    Differences from the row path are purely mechanical: covariate and peer
    values are appended to flat ``(value, unit-row)`` arrays instead of
    per-unit dicts, the own- and peer-adjustment sets share a single
    ancestor walk per unit instead of one directed-path search per (unit,
    peer), binarization happens vectorized, and embeddings run as one numpy
    pass per attribute via :meth:`Embedding.apply_flat`.

    Implemented as :func:`collect_unit_table_inputs` (graph walks, pure
    Python) followed by :func:`materialize_unit_table` (binarization,
    embedding and assembly, numpy); batch callers invoke the two phases
    separately to share collections across queries.
    """
    inputs = collect_unit_table_inputs(
        graph, values, treatment_attribute, response_attribute, units, peers, is_observed
    )
    return materialize_unit_table(
        inputs, embedding=embedding, peer_embedding=peer_embedding, binarize=binarize
    )


def collect_unit_table_inputs(
    graph: GroundedCausalGraph,
    values: dict[GroundedAttribute, Any],
    treatment_attribute: str,
    response_attribute: str,
    units: Sequence[tuple[Any, ...]],
    peers: dict[tuple[Any, ...], list[tuple[Any, ...]]],
    is_observed: Callable[[str], bool],
    allow_empty: bool = False,
) -> UnitTableInputs:
    """Phase 1 of the columnar build: walk the grounded graph once.

    Collects, per kept unit, the raw outcome/treatment values, the raw peer
    treatments, and the Theorem 5.2 adjustment-set values as flat covariate
    buckets.  The result is independent of the embedding and of treatment
    binarization (both are applied by :func:`materialize_unit_table`).

    ``allow_empty`` suppresses the no-units error: a shard worker collecting
    one unit *range* of a larger table may legitimately keep zero units (the
    merged collection raises instead when every shard came back empty).
    """
    kept_units: list[tuple[Any, ...]] = []
    outcomes_raw: list[Any] = []
    treatments_raw: list[Any] = []
    peer_counts: list[int] = []
    peer_values_raw: list[Any] = []
    peer_group_ids: list[int] = []
    covariate_order: list[str] = []
    #: column name -> (flat values, flat unit-row ids)
    buckets: dict[str, tuple[list[Any], list[int]]] = {}

    # Hot-loop locals: interned node ids for membership tests, binary-search
    # edge probes and ancestor masks over the compiled CSR adjacency.
    # Iteration uses the id-ordered ``parent_nodes`` so the covariate
    # discovery order matches the row path exactly.
    node_id = graph.index_of
    csr = graph.csr()
    csr_has_edge = csr.has_edge
    csr_ancestor_mask = csr.ancestor_mask
    graph_parents = graph.parent_nodes
    values_get = values.get
    peers_get = peers.get
    observed_cache: dict[str, bool] = {}
    observed_get = observed_cache.get

    # Per-node cache of the observed, non-treatment parents.  A node's
    # parents are iterated once per visiting unit in the row path; the
    # filtered list is identical every time, so computing it once per node is
    # pure reuse.  Entries are mutable 5-slots
    # ``[parent, own_name, peer_name, own_bucket, peer_bucket]`` so the
    # bucket resolved on first use is cached for the ~peer-count later visits.
    parent_info: dict[GroundedAttribute, list[list[Any]]] = {}
    parent_info_get = parent_info.get

    def build_parent_info(node: GroundedAttribute) -> list[list[Any]]:
        entries: list[list[Any]] = []
        for parent in graph_parents(node):
            attribute = parent.attribute
            if attribute == treatment_attribute:
                continue
            flag = observed_get(attribute)
            if flag is None:
                flag = observed_cache[attribute] = bool(is_observed(attribute))
            if not flag:
                continue
            entries.append([parent, f"own_{attribute}", f"peer_{attribute}", None, None])
        parent_info[node] = entries
        return entries

    # Treatment nodes recur: a unit's own node is also referenced as a peer
    # node by each of its neighbors, so intern them once per unit key.
    treatment_nodes: dict[tuple[Any, ...], GroundedAttribute] = {}
    treatment_node_get = treatment_nodes.get

    row = 0
    for unit in units:
        response_node = GroundedAttribute(response_attribute, unit)
        treatment_node = treatment_node_get(unit)
        if treatment_node is None:
            treatment_node = treatment_nodes[unit] = GroundedAttribute(
                treatment_attribute, unit
            )
        outcome_value = values_get(response_node)
        if outcome_value is None:
            continue
        treatment_value = values_get(treatment_node)
        if treatment_value is None:
            continue

        unit_peers = peers_get(unit) or []
        peer_nodes = []
        for peer in unit_peers:
            peer_node = treatment_node_get(peer)
            if peer_node is None:
                peer_node = treatment_nodes[peer] = GroundedAttribute(
                    treatment_attribute, peer
                )
            peer_nodes.append(peer_node)
        for peer_node in peer_nodes:
            peer_value = values_get(peer_node, _MISSING)
            if peer_value is not _MISSING:
                peer_values_raw.append(peer_value)
                peer_group_ids.append(row)

        # Theorem 5.2 adjustment sets.  ``has_directed_path(T[x], Y[u])`` is
        # equivalent to ``T[x] in ancestors(Y[u])`` (or equality).  Direct
        # parenthood — by far the common case — is a binary-search edge
        # probe; only indirect paths trigger the (lazily computed, per-unit)
        # ancestor mask, which is then shared by the unit and all of its peers.
        response_id = node_id(response_node)
        treatment_id = node_id(treatment_node)
        response_ancestors: np.ndarray | None = None
        own_nodes: set[GroundedAttribute] = set()
        if treatment_id is not None:
            if treatment_node == response_node:
                reachable = True
            elif response_id is not None and csr_has_edge(treatment_id, response_id):
                reachable = True
            else:
                if response_ancestors is None and response_id is not None:
                    response_ancestors = csr_ancestor_mask((response_id,))
                reachable = response_ancestors is not None and bool(
                    response_ancestors[treatment_id]
                )
            if reachable:
                info = parent_info_get(treatment_node)
                if info is None:
                    info = build_parent_info(treatment_node)
                for entry in info:
                    parent = entry[0]
                    own_nodes.add(parent)
                    value = values_get(parent, _MISSING)
                    if value is not _MISSING:
                        bucket = entry[3]
                        if bucket is None:
                            own_name = entry[1]
                            bucket = buckets.get(own_name)
                            if bucket is None:
                                covariate_order.append(own_name)
                                bucket = buckets[own_name] = ([], [])
                            entry[3] = bucket
                        bucket[0].append(value)
                        bucket[1].append(row)
        seen_peer_parents: set[GroundedAttribute] = set()
        for peer_node in peer_nodes:
            peer_id = node_id(peer_node)
            if peer_id is None:
                continue
            if peer_node != response_node and not (
                response_id is not None and csr_has_edge(peer_id, response_id)
            ):
                if response_ancestors is None and response_id is not None:
                    response_ancestors = csr_ancestor_mask((response_id,))
                if response_ancestors is None or not response_ancestors[peer_id]:
                    continue
            info = parent_info_get(peer_node)
            if info is None:
                info = build_parent_info(peer_node)
            for entry in info:
                parent = entry[0]
                if parent in seen_peer_parents:
                    continue
                seen_peer_parents.add(parent)
                if parent in own_nodes:
                    continue
                value = values_get(parent, _MISSING)
                if value is not _MISSING:
                    bucket = entry[4]
                    if bucket is None:
                        peer_name = entry[2]
                        bucket = buckets.get(peer_name)
                        if bucket is None:
                            covariate_order.append(peer_name)
                            bucket = buckets[peer_name] = ([], [])
                        entry[4] = bucket
                    bucket[0].append(value)
                    bucket[1].append(row)

        kept_units.append(unit)
        outcomes_raw.append(outcome_value)
        treatments_raw.append(treatment_value)
        peer_counts.append(len(unit_peers))
        row += 1

    if not kept_units and not allow_empty:
        raise EstimationError(
            f"no units with observed treatment {treatment_attribute!r} and response "
            f"{response_attribute!r}; cannot build a unit table"
        )

    return UnitTableInputs(
        treatment_attribute=treatment_attribute,
        response_attribute=response_attribute,
        unit_keys=kept_units,
        outcomes_raw=outcomes_raw,
        treatments_raw=treatments_raw,
        peer_counts=peer_counts,
        peer_values_raw=peer_values_raw,
        peer_group_ids=peer_group_ids,
        covariate_order=covariate_order,
        buckets=buckets,
    )


def merge_unit_table_inputs(parts: Sequence[UnitTableInputs]) -> UnitTableInputs:
    """Merge shard collections over consecutive unit ranges into one.

    Given collections produced by :func:`collect_unit_table_inputs` over
    consecutive slices of one unit list (in slice order), the merge is pure
    concatenation: per-unit fields append in shard order, bucket and peer
    row ids shift by the number of units the earlier shards kept, and the
    covariate column order is the first-seen order across shards — exactly
    the order a single collection over the full unit list discovers.  The
    merged result is therefore *identical* (not just equivalent) to the
    unsharded collection, which is what makes sharded unit-table builds
    bit-identical to serial ones: materialization sees the same inputs.
    """
    if not parts:
        raise EstimationError("cannot merge zero unit-table shard collections")
    first = parts[0]
    for part in parts[1:]:
        if (
            part.treatment_attribute != first.treatment_attribute
            or part.response_attribute != first.response_attribute
        ):
            raise EstimationError(
                "unit-table shard collections disagree on the treatment/response pair: "
                f"({first.treatment_attribute!r}, {first.response_attribute!r}) vs "
                f"({part.treatment_attribute!r}, {part.response_attribute!r})"
            )

    unit_keys: list[tuple[Any, ...]] = []
    outcomes_raw: list[Any] = []
    treatments_raw: list[Any] = []
    peer_counts: list[int] = []
    peer_values_raw: list[Any] = []
    peer_group_ids: list[int] = []
    covariate_order: list[str] = []
    buckets: dict[str, tuple[list[Any], list[int]]] = {}

    offset = 0
    for part in parts:
        unit_keys.extend(part.unit_keys)
        outcomes_raw.extend(part.outcomes_raw)
        treatments_raw.extend(part.treatments_raw)
        peer_counts.extend(part.peer_counts)
        peer_values_raw.extend(part.peer_values_raw)
        peer_group_ids.extend(row + offset for row in part.peer_group_ids)
        for name in part.covariate_order:
            bucket = buckets.get(name)
            if bucket is None:
                covariate_order.append(name)
                bucket = buckets[name] = ([], [])
            part_values, part_rows = part.buckets[name]
            bucket[0].extend(part_values)
            bucket[1].extend(row + offset for row in part_rows)
        offset += len(part.unit_keys)

    if not unit_keys:
        raise EstimationError(
            f"no units with observed treatment {first.treatment_attribute!r} and response "
            f"{first.response_attribute!r}; cannot build a unit table"
        )
    return UnitTableInputs(
        treatment_attribute=first.treatment_attribute,
        response_attribute=first.response_attribute,
        unit_keys=unit_keys,
        outcomes_raw=outcomes_raw,
        treatments_raw=treatments_raw,
        peer_counts=peer_counts,
        peer_values_raw=peer_values_raw,
        peer_group_ids=peer_group_ids,
        covariate_order=covariate_order,
        buckets=buckets,
    )


def materialize_unit_table(
    inputs: UnitTableInputs,
    embedding: str | Embedding = "mean",
    peer_embedding: str | Embedding | None = None,
    binarize: Callable[[Any], float] | None = None,
) -> UnitTable:
    """Phase 2 of the columnar build: binarize, embed and assemble.

    Pure function of ``inputs`` (which it never mutates) plus the embedding
    and binarizer choices — the numpy-dominated half of the columnar path,
    safe to run concurrently over one shared collection.
    """
    treatment_attribute = inputs.treatment_attribute
    vectorized_binarize = binarize is None
    binarize = binarize or default_binarizer(treatment_attribute)
    peer_embedder = get_embedding(peer_embedding if peer_embedding is not None else MeanEmbedding())

    kept_units = inputs.unit_keys
    n_units = len(kept_units)
    treatment = _binarize_vector(inputs.treatments_raw, binarize, vectorized_binarize)
    peer_flat = _binarize_vector(inputs.peer_values_raw, binarize, vectorized_binarize)
    outcome = np.asarray(inputs.outcomes_raw, dtype=float)

    peer_gids = np.asarray(inputs.peer_group_ids, dtype=np.intp)
    if len(peer_flat) == 0:
        peer_matrix, peer_columns = np.empty((n_units, 0)), []
    else:
        embedder = _fit_embedder(copy.deepcopy(peer_embedder), peer_flat, peer_gids, n_units)
        peer_columns = embedder.feature_names("peer_treatment")
        peer_matrix = _apply_embedder(embedder, peer_flat, peer_gids, n_units)

    blocks: list[np.ndarray] = []
    columns: list[str] = []
    for attribute in inputs.covariate_order:
        flat_values, flat_group_ids = inputs.buckets[attribute]
        group_ids = np.asarray(flat_group_ids, dtype=np.intp)
        numeric = as_numeric_array(flat_values)
        if numeric is None and _is_numeric_attribute([flat_values]):
            numeric = np.asarray([_to_number(value) for value in flat_values], dtype=float)
        if numeric is not None:
            embedder = _fit_embedder(
                copy.deepcopy(get_embedding(embedding)), numeric, group_ids, n_units
            )
            block = _apply_embedder(embedder, numeric, group_ids, n_units)
            block_columns = embedder.feature_names(f"cov_{attribute}")
        else:
            block, block_columns = _encode_categorical_flat(
                attribute, flat_values, group_ids, n_units
            )
        blocks.append(block)
        columns.extend(block_columns)
    covariate_matrix = np.hstack(blocks) if blocks else np.empty((n_units, 0))

    return UnitTable(
        unit_keys=kept_units,
        outcome=outcome,
        treatment=treatment,
        peer_treatment=peer_matrix,
        peer_counts=np.asarray(inputs.peer_counts, dtype=float),
        covariates=covariate_matrix,
        peer_columns=peer_columns,
        covariate_columns=columns,
        treatment_attribute=treatment_attribute,
        response_attribute=inputs.response_attribute,
    )


def _binarize_vector(
    raw_values: list[Any], binarize: Callable[[Any], float], vectorize: bool
) -> np.ndarray:
    """Binarize treatments in bulk; error semantics match the row path."""
    if not raw_values:
        return np.empty(0)
    if vectorize:
        array = as_numeric_array(raw_values)
        if array is not None:
            valid = (array == 0.0) | (array == 1.0)
            if bool(valid.all()):
                return array
            # Raise the row path's exact error for the first offending value.
            binarize(raw_values[int(np.argmax(~valid))])
    return np.asarray([binarize(value) for value in raw_values], dtype=float)


def _defining_class(cls: type, method: str) -> type | None:
    """The most-derived class in ``cls``'s MRO that defines ``method``."""
    for base in cls.__mro__:
        if method in vars(base):
            return base
    return None


def _flat_method_usable(cls: type, scalar: str, flat: str) -> bool:
    """True when the ``flat`` kernel is at least as derived as the ``scalar``
    method, i.e. no subclass customized the scalar behavior below the class
    that supplied the vectorized kernel (which would be silently bypassed)."""
    flat_owner = _defining_class(cls, flat)
    scalar_owner = _defining_class(cls, scalar)
    if flat_owner is None or scalar_owner is None:
        return flat_owner is not None
    return issubclass(flat_owner, scalar_owner)


def _fit_embedder(
    embedder: Embedding, values: np.ndarray, group_ids: np.ndarray, n_groups: int
) -> Embedding:
    """Fit on flat arrays; custom embeddings whose ``fit`` override is more
    derived than their ``fit_flat`` get their groups reconstructed so the
    custom fitting logic still runs."""
    cls = type(embedder)
    if _defining_class(cls, "fit") is Embedding or _flat_method_usable(cls, "fit", "fit_flat"):
        return embedder.fit_flat(values, group_ids, n_groups)
    return embedder.fit(_regroup(values, group_ids, n_groups))


def _apply_embedder(
    embedder: Embedding, values: np.ndarray, group_ids: np.ndarray, n_groups: int
) -> np.ndarray:
    if _flat_method_usable(type(embedder), "apply", "apply_flat"):
        matrix = embedder.apply_flat(values, group_ids, n_groups)
        if matrix is not None:
            return matrix
    groups = _regroup(values, group_ids, n_groups)
    return np.asarray([embedder.apply(group) for group in groups], dtype=float)


def _regroup(values: np.ndarray, group_ids: np.ndarray, n_groups: int) -> list[list[float]]:
    groups: list[list[float]] = [[] for _ in range(n_groups)]
    for group, value in zip(group_ids.tolist(), values.tolist()):
        groups[group].append(value)
    return groups


def _encode_categorical_flat(
    attribute: str, values: list[Any], group_ids: np.ndarray, n_groups: int
) -> tuple[np.ndarray, list[str]]:
    """Vectorized :func:`_encode_categorical` over flat (value, unit) pairs."""
    counts: Counter[Any] = Counter(values)
    categories = [category for category, _ in counts.most_common(MAX_CATEGORIES)]
    category_index = {category: position for position, category in enumerate(categories)}
    has_other = len(counts) > len(categories)

    width = len(categories) + (1 if has_other else 0) + 1  # + count column
    matrix = np.zeros((n_groups, width), dtype=float)
    totals = np.bincount(group_ids, minlength=n_groups).astype(float)
    if values:
        other_position = len(categories)
        positions = np.asarray(
            [category_index.get(value, other_position) for value in values], dtype=np.intp
        )
        np.add.at(matrix, (group_ids, positions), 1.0 / totals[group_ids])
        nonempty = totals > 0
        matrix[nonempty, -1] = totals[nonempty]

    columns = [f"cov_{attribute}_is_{_category_label(category)}" for category in categories]
    if has_other:
        columns.append(f"cov_{attribute}_is_other")
    columns.append(f"cov_{attribute}_count")
    return matrix, columns


# ----------------------------------------------------------------------
# embedding helpers
# ----------------------------------------------------------------------
def _embed_peer_treatments(
    peer_groups: list[list[float]], embedder: Embedding
) -> tuple[np.ndarray, list[str]]:
    if not any(peer_groups):
        return np.empty((len(peer_groups), 0)), []
    embedder = copy.deepcopy(embedder).fit(peer_groups)
    columns = embedder.feature_names("peer_treatment")
    matrix = np.asarray([embedder.apply(group) for group in peer_groups], dtype=float)
    return matrix, columns


def _embed_covariates(
    covariate_groups: list[dict[str, list[Any]]],
    embedding: str | Embedding,
) -> tuple[np.ndarray, list[str]]:
    attribute_names: list[str] = []
    for grouped in covariate_groups:
        for name in grouped:
            if name not in attribute_names:
                attribute_names.append(name)
    if not attribute_names:
        return np.empty((len(covariate_groups), 0)), []

    blocks: list[np.ndarray] = []
    columns: list[str] = []
    for attribute in attribute_names:
        groups = [grouped.get(attribute, []) for grouped in covariate_groups]
        if _is_numeric_attribute(groups):
            embedder = copy.deepcopy(get_embedding(embedding)).fit(
                [[_to_number(v) for v in group] for group in groups]
            )
            block = np.asarray(
                [embedder.apply([_to_number(v) for v in group]) for group in groups], dtype=float
            )
            block_columns = embedder.feature_names(f"cov_{attribute}")
        else:
            block, block_columns = _encode_categorical(attribute, groups)
        blocks.append(block)
        columns.extend(block_columns)
    return np.hstack(blocks), columns


def _is_numeric_attribute(groups: list[list[Any]]) -> bool:
    for group in groups:
        for value in group:
            if isinstance(value, bool):
                continue
            if not isinstance(value, (int, float)):
                return False
    return True


def _to_number(value: Any) -> float:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    return float(value)


def _encode_categorical(
    attribute: str, groups: list[list[Any]]
) -> tuple[np.ndarray, list[str]]:
    """Encode a categorical covariate group as per-category fractions + count.

    For the common case of a single parent value per unit this reduces to a
    one-hot encoding.  The most frequent :data:`MAX_CATEGORIES` categories get
    their own column; the rest share an ``other`` column.
    """
    counts: Counter[Any] = Counter()
    for group in groups:
        counts.update(group)
    categories = [category for category, _ in counts.most_common(MAX_CATEGORIES)]
    category_index = {category: position for position, category in enumerate(categories)}
    has_other = len(counts) > len(categories)

    width = len(categories) + (1 if has_other else 0) + 1  # + count column
    matrix = np.zeros((len(groups), width), dtype=float)
    for row, group in enumerate(groups):
        if not group:
            continue
        total = float(len(group))
        for value in group:
            position = category_index.get(value)
            if position is None:
                position = len(categories)  # "other"
            matrix[row, position] += 1.0 / total
        matrix[row, -1] = total

    columns = [f"cov_{attribute}_is_{_category_label(category)}" for category in categories]
    if has_other:
        columns.append(f"cov_{attribute}_is_other")
    columns.append(f"cov_{attribute}_count")
    return matrix, columns


def _category_label(category: Any) -> str:
    label = str(category).strip().replace(" ", "_")
    return label or "empty"
