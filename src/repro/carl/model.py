"""The relational causal model: a validated collection of CaRL rules.

A relational causal model (Section 3.2) is the set of relational causal rules
and aggregate rules the analyst writes down as background knowledge.  This
module validates the rules against a :class:`RelationalCausalSchema`
(attribute names and arities, variable safety), derives implicit conditions
for the paper's shorthand rules written without a ``WHERE`` clause, registers
derived (aggregated) attributes, and checks that the model is non-recursive
at the attribute level so the grounded graph is guaranteed to be a DAG.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carl.ast import (
    AggregateRule,
    AttributeAtom,
    CausalRule,
    Condition,
    PredicateAtom,
    Program,
    Variable,
)
from repro.carl.errors import ModelError
from repro.carl.schema import RelationalCausalSchema
from repro.graph.dag import DAG, CycleError


@dataclass(frozen=True)
class DerivedAttribute:
    """An aggregated attribute introduced by an aggregate rule.

    ``name`` is the head attribute (e.g. ``AVG_Score``), ``aggregate`` the
    aggregate function keyword, ``base`` the attribute being aggregated and
    ``subject`` the predicate the derived attribute is a function of.
    """

    name: str
    aggregate: str
    base: str
    subject: str


class RelationalCausalModel:
    """Rules + aggregate rules validated against a schema."""

    def __init__(
        self,
        schema: RelationalCausalSchema,
        rules: list[CausalRule] | None = None,
        aggregate_rules: list[AggregateRule] | None = None,
    ) -> None:
        self.schema = schema
        self.rules: list[CausalRule] = []
        self.aggregate_rules: list[AggregateRule] = []
        self._derived: dict[str, DerivedAttribute] = {}
        for rule in rules or []:
            self.add_rule(rule)
        for rule in aggregate_rules or []:
            self.add_aggregate_rule(rule)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_program(cls, program: Program, schema: RelationalCausalSchema | None = None) -> "RelationalCausalModel":
        """Build a model (and, unless given, a schema) from a parsed program."""
        schema = schema or RelationalCausalSchema.from_program(program)
        return cls(schema, rules=program.rules, aggregate_rules=program.aggregate_rules)

    def add_rule(self, rule: CausalRule) -> CausalRule:
        """Validate and register a relational causal rule (with implicit condition)."""
        if isinstance(rule, AggregateRule):
            raise ModelError(
                f"rule {rule} defines a derived (aggregated) attribute; "
                "register it with add_aggregate_rule instead"
            )
        rule = CausalRule(
            head=rule.head,
            body=rule.body,
            condition=self._effective_condition(rule.head, rule.body, rule.condition),
        )
        self._validate_atom(rule.head, allow_derived=False)
        for atom in rule.body:
            self._validate_atom(atom, allow_derived=True)
        self._validate_safety(rule)
        self.rules.append(rule)
        self._check_non_recursive()
        return rule

    def add_aggregate_rule(self, rule: AggregateRule) -> AggregateRule:
        """Validate and register an aggregate rule, declaring its derived attribute."""
        rule = AggregateRule(
            aggregate=rule.aggregate,
            head=rule.head,
            body=rule.body,
            condition=self._effective_condition(rule.head, (rule.body,), rule.condition, skip_head=True),
        )
        self._validate_atom(rule.body, allow_derived=True)
        if len(rule.head.terms) != 1:
            raise ModelError(
                f"aggregate rule head {rule.head} must have exactly one unit variable"
            )
        subject = self._infer_subject(rule.head, rule.condition)
        derived = DerivedAttribute(
            name=rule.head.name,
            aggregate=rule.aggregate,
            base=rule.body.name,
            subject=subject,
        )
        existing = self._derived.get(rule.head.name)
        if existing is not None and existing != derived:
            raise ModelError(
                f"conflicting definitions for derived attribute {rule.head.name!r}"
            )
        self._derived[rule.head.name] = derived
        self._validate_safety(rule)
        self.aggregate_rules.append(rule)
        self._check_non_recursive()
        return rule

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def derived_attributes(self) -> dict[str, DerivedAttribute]:
        return dict(self._derived)

    def is_derived(self, attribute_name: str) -> bool:
        return attribute_name in self._derived

    def subject_of(self, attribute_name: str) -> str:
        """Subject predicate of a declared or derived attribute."""
        if attribute_name in self._derived:
            return self._derived[attribute_name].subject
        return self.schema.subject_of(attribute_name)

    def is_observed(self, attribute_name: str) -> bool:
        """Derived attributes are observed iff their base attribute is observed."""
        if attribute_name in self._derived:
            return self.schema.is_observed(self._derived[attribute_name].base)
        return self.schema.is_observed(attribute_name)

    def rules_with_head(self, attribute_name: str) -> list[CausalRule]:
        """The rule set ``phi_A`` of the paper: rules whose head is ``attribute_name``."""
        return [rule for rule in self.rules if rule.head.name == attribute_name]

    def attribute_dependency_graph(self) -> DAG:
        """Attribute-level DAG: edge ``B -> A`` when some rule derives A from B."""
        graph = DAG()
        for name in self.schema.attribute_names:
            graph.add_node(name)
        for name in self._derived:
            graph.add_node(name)
        for rule in self.rules:
            for atom in rule.body:
                if atom.name != rule.head.name:
                    graph.add_edge(atom.name, rule.head.name)
        for rule in self.aggregate_rules:
            if rule.body.name != rule.head.name:
                graph.add_edge(rule.body.name, rule.head.name)
        return graph

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _effective_condition(
        self,
        head: AttributeAtom,
        body: tuple[AttributeAtom, ...],
        condition: Condition,
        skip_head: bool = False,
    ) -> Condition:
        """Fill in the implicit condition of shorthand rules without WHERE.

        Following the paper's own shorthand (the NIS rules in Section 6.1 are
        written without conditions), a missing condition is taken to be the
        conjunction of the subject predicates of the head and body attributes,
        applied to the rule's variables.
        """
        if not condition.is_trivial:
            return condition
        atoms: list[PredicateAtom] = []
        seen: set[tuple[str, tuple[str, ...]]] = set()
        atom_sources = body if skip_head else (head, *body)
        for atom in atom_sources:
            subject = self._subject_for_validation(atom.name)
            if subject is None:
                continue
            signature = (subject, tuple(str(term) for term in atom.terms))
            if signature in seen:
                continue
            seen.add(signature)
            atoms.append(PredicateAtom(predicate=subject, terms=atom.terms))
        return Condition(atoms=tuple(atoms))

    def _subject_for_validation(self, attribute_name: str) -> str | None:
        if attribute_name in self._derived:
            return self._derived[attribute_name].subject
        if self.schema.has_attribute(attribute_name):
            return self.schema.subject_of(attribute_name)
        return None

    def _validate_atom(self, atom: AttributeAtom, allow_derived: bool) -> None:
        if atom.name in self._derived:
            if not allow_derived:
                raise ModelError(
                    f"derived attribute {atom.name!r} cannot appear in the head of a causal rule"
                )
            return
        if not self.schema.has_attribute(atom.name):
            raise ModelError(
                f"attribute {atom.name!r} used in a rule is not declared in the schema"
            )
        subject = self.schema.predicate(self.schema.subject_of(atom.name))
        if len(atom.terms) != len(subject.keys):
            raise ModelError(
                f"attribute atom {atom} has {len(atom.terms)} argument(s) but its subject "
                f"{subject.name!r} has {len(subject.keys)} key column(s)"
            )

    def _validate_safety(self, rule: CausalRule | AggregateRule) -> None:
        """Every variable of the head and body must occur in the condition."""
        condition_variables = {variable.name for variable in rule.condition.variables}
        body_atoms = rule.body if isinstance(rule, CausalRule) else (rule.body,)
        for atom in (rule.head, *body_atoms):
            for term in atom.terms:
                if isinstance(term, Variable) and term.name not in condition_variables:
                    raise ModelError(
                        f"unsafe rule {rule}: variable {term.name!r} does not occur in the "
                        "WHERE condition"
                    )

    def _infer_subject(self, head: AttributeAtom, condition: Condition) -> str:
        """Subject predicate of an aggregate rule head, inferred from the condition."""
        term = head.terms[0]
        if not isinstance(term, Variable):
            raise ModelError(f"aggregate rule head {head} must use a variable, not a constant")
        candidates: list[str] = []
        for atom in condition.atoms:
            info = self.schema.predicate(atom.predicate)
            for position, atom_term in enumerate(atom.terms):
                if isinstance(atom_term, Variable) and atom_term.name == term.name:
                    if info.is_entity:
                        candidates.append(info.name)
                    else:
                        candidates.append(info.referenced_entities[position])
        unique = list(dict.fromkeys(candidates))
        if not unique:
            raise ModelError(
                f"cannot infer the subject of aggregated attribute {head.name!r}: variable "
                f"{term.name!r} is not bound by the rule condition"
            )
        if len(unique) > 1:
            raise ModelError(
                f"ambiguous subject for aggregated attribute {head.name!r}: variable "
                f"{term.name!r} refers to entities {unique}"
            )
        return unique[0]

    def _check_non_recursive(self) -> None:
        for rule in self.rules:
            if any(atom.name == rule.head.name for atom in rule.body):
                raise ModelError(
                    f"recursive rule {rule}: the head attribute also appears in the body; "
                    "recursive rules are outside the scope of CaRL"
                )
        for rule in self.aggregate_rules:
            if rule.body.name == rule.head.name:
                raise ModelError(f"recursive aggregate rule {rule}")
        graph = self.attribute_dependency_graph()
        try:
            graph.validate_acyclic()
        except CycleError as error:
            raise ModelError(
                "the relational causal model is recursive (attribute-level dependency cycle); "
                "recursive rules are outside the scope of CaRL"
            ) from error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RelationalCausalModel(rules={len(self.rules)}, "
            f"aggregate_rules={len(self.aggregate_rules)})"
        )
