"""Embedding functions for variable-size parent / peer / covariate vectors.

Section 5.2.2 of the paper: different groundings of the same attribute can
have different numbers of parents (a submission may have one or five
authors), so conditional distributions are defined over a fixed-dimensional
*embedding* of the parent values.  The paper evaluates four families — mean,
median, moment summaries and padding — and we implement all of them plus a
couple of trivial ones (count, sum) that are useful as building blocks.

Every embedding maps a list of numeric values (possibly empty) to a
fixed-length ``list[float]``; :meth:`Embedding.feature_names` names the
output dimensions so unit-table columns are self-describing.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.db.aggregates import agg_avg, agg_median, agg_skew, agg_sum, agg_var, grouped_aggregate


class Embedding(ABC):
    """A set-embedding function ``psi`` with a fixed output dimensionality.

    Besides the scalar :meth:`apply`, embeddings support a *flat* batch form
    used by the columnar unit-table builder: all groups' values concatenated
    into one float array plus a parallel group-id array.  Subclasses override
    :meth:`apply_flat` with a vectorized kernel; the default returns ``None``
    and callers fall back to a per-group :meth:`apply` loop with identical
    semantics.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def feature_names(self, prefix: str) -> list[str]:
        """Names of the output dimensions, prefixed for unit-table columns."""

    @abstractmethod
    def apply(self, values: Sequence[float]) -> list[float]:
        """Embed ``values`` into a fixed-length vector."""

    def fit(self, groups: Sequence[Sequence[float]]) -> "Embedding":
        """Optional fitting step over all groups (used by padding); returns self."""
        return self

    def fit_flat(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> "Embedding":
        """Flat-form equivalent of :meth:`fit`; returns self."""
        return self

    def apply_flat(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray | None:
        """Vectorized batch embedding over flattened groups.

        Returns a ``(n_groups, dimension)`` matrix, or ``None`` when the
        embedding has no vectorized kernel (callers then loop :meth:`apply`).
        """
        return None

    @property
    def dimension(self) -> int:
        return len(self.feature_names("x"))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _grouped_counts(group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    return np.bincount(group_ids, minlength=n_groups).astype(float)


def _to_floats(values: Sequence[float]) -> list[float]:
    return [float(value) for value in values]


class MeanEmbedding(Embedding):
    """``[mean, count]`` — the paper's simplest embedding.

    The cardinality is included (as the paper notes) to preserve the topology
    of the relational skeleton, e.g. the number of co-authors.
    """

    name = "mean"

    def feature_names(self, prefix: str) -> list[str]:
        return [f"{prefix}_mean", f"{prefix}_count"]

    def apply(self, values: Sequence[float]) -> list[float]:
        values = _to_floats(values)
        return [agg_avg(values), float(len(values))]

    def apply_flat(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray:
        means = grouped_aggregate("AVG", values, group_ids, n_groups)
        return np.column_stack([means, _grouped_counts(group_ids, n_groups)])


class MedianEmbedding(Embedding):
    """``[median, count]``."""

    name = "median"

    def feature_names(self, prefix: str) -> list[str]:
        return [f"{prefix}_median", f"{prefix}_count"]

    def apply(self, values: Sequence[float]) -> list[float]:
        values = _to_floats(values)
        return [agg_median(values), float(len(values))]

    def apply_flat(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray:
        medians = grouped_aggregate("MEDIAN", values, group_ids, n_groups)
        return np.column_stack([medians, _grouped_counts(group_ids, n_groups)])


class CountEmbedding(Embedding):
    """``[count]`` — only the cardinality of the value set."""

    name = "count"

    def feature_names(self, prefix: str) -> list[str]:
        return [f"{prefix}_count"]

    def apply(self, values: Sequence[float]) -> list[float]:
        return [float(len(values))]

    def apply_flat(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray:
        return _grouped_counts(group_ids, n_groups).reshape(-1, 1)


class SumEmbedding(Embedding):
    """``[sum, count]``."""

    name = "sum"

    def feature_names(self, prefix: str) -> list[str]:
        return [f"{prefix}_sum", f"{prefix}_count"]

    def apply(self, values: Sequence[float]) -> list[float]:
        values = _to_floats(values)
        return [agg_sum(values), float(len(values))]

    def apply_flat(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray:
        sums = grouped_aggregate("SUM", values, group_ids, n_groups)
        return np.column_stack([sums, _grouped_counts(group_ids, n_groups)])


class MomentsEmbedding(Embedding):
    """``[mean, variance, skewness, ..., count]`` — moment summarization.

    ``order`` controls how many central moments are emitted (1 = mean,
    2 = +variance, 3 = +skewness).  The paper chooses the order to minimise
    response-prediction loss; the engine exposes it as a parameter.
    """

    name = "moments"

    def __init__(self, order: int = 3) -> None:
        if order < 1 or order > 3:
            raise ValueError(f"moment order must be 1, 2 or 3, got {order}")
        self.order = order

    def feature_names(self, prefix: str) -> list[str]:
        names = [f"{prefix}_mean"]
        if self.order >= 2:
            names.append(f"{prefix}_var")
        if self.order >= 3:
            names.append(f"{prefix}_skew")
        names.append(f"{prefix}_count")
        return names

    def apply(self, values: Sequence[float]) -> list[float]:
        values = _to_floats(values)
        features = [agg_avg(values)]
        if self.order >= 2:
            features.append(agg_var(values))
        if self.order >= 3:
            features.append(agg_skew(values))
        features.append(float(len(values)))
        return features

    def apply_flat(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray:
        blocks = [grouped_aggregate("AVG", values, group_ids, n_groups)]
        if self.order >= 2:
            blocks.append(grouped_aggregate("VAR", values, group_ids, n_groups))
        if self.order >= 3:
            blocks.append(grouped_aggregate("SKEW", values, group_ids, n_groups))
        blocks.append(_grouped_counts(group_ids, n_groups))
        return np.column_stack(blocks)


class PaddingEmbedding(Embedding):
    """Sort the values and pad them with an out-of-band marker to a fixed width.

    The width is either given explicitly or learned from the data via
    :meth:`fit` (the maximum group size seen).  As the paper notes, the
    vectors grow with the relational skeleton, which limits applicability —
    the implementation caps the width at ``max_width``.
    """

    name = "padding"

    def __init__(self, width: int | None = None, fill: float = -1.0, max_width: int = 32) -> None:
        if width is not None and width < 1:
            raise ValueError("padding width must be at least 1")
        self.width = width
        self.fill = float(fill)
        self.max_width = max_width

    def fit(self, groups: Sequence[Sequence[float]]) -> "PaddingEmbedding":
        observed = max((len(group) for group in groups), default=1)
        self.width = max(1, min(observed, self.max_width))
        return self

    def fit_flat(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> "PaddingEmbedding":
        counts = np.bincount(group_ids, minlength=n_groups)
        observed = int(counts.max()) if n_groups else 1
        self.width = max(1, min(observed, self.max_width))
        return self

    def feature_names(self, prefix: str) -> list[str]:
        width = self.width or 1
        return [f"{prefix}_pad{i}" for i in range(width)] + [f"{prefix}_count"]

    def apply(self, values: Sequence[float]) -> list[float]:
        width = self.width or 1
        # Descending with NaNs deterministically last (position-independent),
        # matching the vectorized :meth:`apply_flat` sort order.
        ordered = sorted(
            _to_floats(values), key=lambda value: (math.isnan(value), -value)
        )[:width]
        padded = ordered + [self.fill] * (width - len(ordered))
        return padded + [float(len(values))]

    def apply_flat(
        self, values: np.ndarray, group_ids: np.ndarray, n_groups: int
    ) -> np.ndarray:
        width = self.width or 1
        counts = np.bincount(group_ids, minlength=n_groups)
        matrix = np.full((n_groups, width), self.fill)
        if len(values):
            # Descending sort within each group (stable, like sorted(reverse=True)).
            order = np.lexsort((-values, group_ids))
            sorted_ids = group_ids[order]
            sorted_values = values[order]
            offsets = np.concatenate([[0], np.cumsum(counts)])
            ranks = np.arange(len(values)) - offsets[sorted_ids]
            keep = ranks < width
            matrix[sorted_ids[keep], ranks[keep]] = sorted_values[keep]
        return np.hstack([matrix, counts.astype(float).reshape(-1, 1)])


#: Registry of embedding factories by name.
EMBEDDINGS: dict[str, type[Embedding]] = {
    MeanEmbedding.name: MeanEmbedding,
    MedianEmbedding.name: MedianEmbedding,
    CountEmbedding.name: CountEmbedding,
    SumEmbedding.name: SumEmbedding,
    MomentsEmbedding.name: MomentsEmbedding,
    PaddingEmbedding.name: PaddingEmbedding,
}


def get_embedding(name_or_embedding: str | Embedding, **kwargs: object) -> Embedding:
    """Resolve an embedding by name (or pass an instance through)."""
    if isinstance(name_or_embedding, Embedding):
        return name_or_embedding
    factory = EMBEDDINGS.get(str(name_or_embedding).lower())
    if factory is None:
        raise ValueError(
            f"unknown embedding {name_or_embedding!r}; expected one of {sorted(EMBEDDINGS)}"
        )
    return factory(**kwargs)  # type: ignore[arg-type]
