"""Result objects returned by the CaRL engine for the three query families."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.carl.ast import CausalQuery, PeerCondition


@dataclass
class ATEResult:
    """Answer to an ATE or aggregated-response query (Sections 4.4.1-4.4.2).

    ``ate`` is the causal estimate after relational covariate adjustment;
    ``naive_difference`` and ``correlation`` are the associational quantities
    the paper contrasts against (Table 3, Figure 7a).
    """

    ate: float
    naive_difference: float
    treated_mean: float
    control_mean: float
    correlation: float
    n_units: int
    n_treated: int
    n_control: int
    estimator: str
    confidence_interval: tuple[float, float] | None = None
    details: dict[str, Any] = field(default_factory=dict)

    def __float__(self) -> float:
        return self.ate


@dataclass
class EffectsResult:
    """Answer to a relational-effects query (Section 4.4.3).

    ``aie`` is the average isolated effect, ``are`` the average relational
    effect, ``aoe`` the average overall effect.  Proposition 4.1
    (``AOE = AIE + ARE``) holds by construction of the plug-in estimator.
    """

    aie: float
    are: float
    aoe: float
    peer_condition: PeerCondition | None
    correlation: float
    naive_difference: float
    n_units: int
    mean_peer_count: float
    estimator: str
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def decomposition_gap(self) -> float:
        """|AOE - (AIE + ARE)|; ~0 up to floating-point error."""
        return abs(self.aoe - (self.aie + self.are))


@dataclass
class QueryAnswer:
    """Full answer to a causal query, including timing and unit-table metadata.

    ``result`` is an :class:`ATEResult` or :class:`EffectsResult` depending
    on the query type.  ``unit_table_seconds`` and ``estimation_seconds``
    correspond to the two runtime columns of Table 2 in the paper
    ("Unit Table Cons." and "Query Ans.").

    ``grounding_seconds`` is the grounding work *this* answer actually
    triggered: the full grounding (or cache-load) time when answering the
    query forced it, and 0.0 when the grounded graph already existed or the
    answer came straight from a cached unit table.  The field never double
    counts one grounding across answers; note that an uncached
    ``answer_all(jobs>1)`` batch grounds up front, *before* its workers, so
    that grounding is attributed to no individual answer (the engine's
    ``grounding_runs``/``grounding_seconds`` still record it).
    """

    query: CausalQuery
    result: ATEResult | EffectsResult
    unit_table_summary: dict[str, Any]
    unit_table_seconds: float
    estimation_seconds: float
    grounding_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.grounding_seconds + self.unit_table_seconds + self.estimation_seconds
