"""Shared scratch state for one batched ``answer_all`` call.

A batch of causal queries over one grounded graph repeats a lot of work: the
relational peers and the covariate collection of the columnar unit-table
build depend only on the ``(treatment attribute, response attribute)`` pair,
not on the treatment threshold, embedding or estimator a specific query
uses.  :class:`BatchScratch` memoizes those per-pair intermediates for the
lifetime of a single :meth:`CaRLEngine.answer_all` call, so an 8-query
workload with three distinct attribute pairs walks the grounded graph three
times instead of eight.

The scratch is deliberately batch-scoped rather than engine-scoped: its
entries hold references into the current grounding and can be arbitrarily
large, so they are dropped as soon as the batch returns instead of
accumulating on a long-lived engine.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TypeVar

T = TypeVar("T")


class BatchScratch:
    """Memo of shareable per-(treatment, response) intermediates of a batch.

    Thread-safe: worker threads of one batch race to populate entries, and
    :meth:`get_or_build` guarantees each key is built at most once (losers
    block until the winner's value is ready).  The engine additionally holds
    its own state lock while building, so builder callbacks may freely read
    engine state; the per-entry events exist so a future caller that builds
    outside that lock stays correct.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: key -> [threading.Event, value, exception]
        self._entries: dict[Any, list[Any]] = {}

    def get_or_build(self, key: Any, build: Callable[[], T]) -> T:
        """Return the memoized value for ``key``, building it on first use.

        A ``build`` that raises is not cached — the exception propagates to
        every thread waiting on the entry, and the next caller retries.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = [threading.Event(), None, None]
                self._entries[key] = entry
                owner = True
            else:
                owner = False
        if owner:
            try:
                entry[1] = build()
            except BaseException as error:
                entry[2] = error
                with self._lock:
                    self._entries.pop(key, None)
                raise
            finally:
                entry[0].set()
            return entry[1]
        entry[0].wait()
        if entry[2] is not None:
            raise entry[2]
        return entry[1]

    def clear(self) -> None:
        """Drop every memoized entry.

        A long-lived :class:`~repro.service.session.QuerySession` reuses one
        scratch across many submissions; entries are keyed by grounding
        epoch, so after a database mutation re-grounds the engine the stale
        epoch's entries become unreachable garbage — the session clears the
        scratch at the epoch boundary to keep its memory bounded.  Entries
        still being built are abandoned to their builders (the per-entry
        events keep waiters correct); only the map is reset.
        """
        with self._lock:
            self._entries = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
