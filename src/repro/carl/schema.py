"""Relational causal schema and its binding to a concrete database instance.

Section 3.1 of the paper: a relational causal schema ``S = (P, A)`` consists
of predicates ``P`` (entities and relationships) and attribute functions
``A``, some of which may be unobserved (latent).  A database instance whose
tables correspond to the predicates provides the *relational skeleton* and
the observed values of the attribute functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.carl.ast import (
    AttributeDeclaration,
    EntityDeclaration,
    Program,
    RelationshipDeclaration,
)
from repro.carl.errors import SchemaBindingError
from repro.db.database import Database


@dataclass(frozen=True)
class PredicateInfo:
    """Resolved metadata for an entity or relationship predicate."""

    name: str
    keys: tuple[str, ...]
    is_entity: bool
    #: For relationships: the entity referenced by each key position.
    referenced_entities: tuple[str, ...] = ()


class RelationalCausalSchema:
    """The declarative schema: entities, relationships, attribute functions."""

    def __init__(
        self,
        entities: list[EntityDeclaration] | None = None,
        relationships: list[RelationshipDeclaration] | None = None,
        attributes: list[AttributeDeclaration] | None = None,
    ) -> None:
        self._entities: dict[str, EntityDeclaration] = {}
        self._relationships: dict[str, RelationshipDeclaration] = {}
        self._attributes: dict[str, AttributeDeclaration] = {}
        for entity in entities or []:
            self.add_entity(entity)
        for relationship in relationships or []:
            self.add_relationship(relationship)
        for attribute in attributes or []:
            self.add_attribute(attribute)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_program(cls, program: Program) -> "RelationalCausalSchema":
        """Build a schema from the declarations of a parsed program."""
        return cls(
            entities=program.entities,
            relationships=program.relationships,
            attributes=program.attributes,
        )

    def add_entity(self, entity: EntityDeclaration) -> None:
        if entity.name in self._entities or entity.name in self._relationships:
            raise SchemaBindingError(f"duplicate predicate declaration {entity.name!r}")
        self._entities[entity.name] = entity

    def add_relationship(self, relationship: RelationshipDeclaration) -> None:
        if relationship.name in self._entities or relationship.name in self._relationships:
            raise SchemaBindingError(f"duplicate predicate declaration {relationship.name!r}")
        self._relationships[relationship.name] = relationship

    def add_attribute(self, attribute: AttributeDeclaration) -> None:
        if attribute.name in self._attributes:
            raise SchemaBindingError(f"duplicate attribute declaration {attribute.name!r}")
        self._attributes[attribute.name] = attribute

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def entity_names(self) -> list[str]:
        return list(self._entities)

    @property
    def relationship_names(self) -> list[str]:
        return list(self._relationships)

    @property
    def attribute_names(self) -> list[str]:
        return list(self._attributes)

    @property
    def observed_attribute_names(self) -> list[str]:
        return [name for name, decl in self._attributes.items() if not decl.latent]

    @property
    def latent_attribute_names(self) -> list[str]:
        return [name for name, decl in self._attributes.items() if decl.latent]

    def has_predicate(self, name: str) -> bool:
        return name in self._entities or name in self._relationships

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def attribute(self, name: str) -> AttributeDeclaration:
        try:
            return self._attributes[name]
        except KeyError:
            raise SchemaBindingError(
                f"unknown attribute {name!r}; declared attributes: {sorted(self._attributes)}"
            ) from None

    def is_observed(self, name: str) -> bool:
        return not self.attribute(name).latent

    def subject_of(self, attribute_name: str) -> str:
        """Name of the predicate an attribute function is defined on."""
        return self.attribute(attribute_name).subject

    def predicate(self, name: str) -> PredicateInfo:
        """Resolved predicate info (keys and, for relationships, referenced entities)."""
        if name in self._entities:
            entity = self._entities[name]
            return PredicateInfo(name=name, keys=(entity.key,), is_entity=True)
        if name in self._relationships:
            relationship = self._relationships[name]
            referenced = tuple(
                self._resolve_reference(reference, key, relationship.name)
                for key, reference in zip(relationship.keys, relationship.references)
            )
            return PredicateInfo(
                name=name,
                keys=relationship.keys,
                is_entity=False,
                referenced_entities=referenced,
            )
        raise SchemaBindingError(
            f"unknown predicate {name!r}; declared predicates: "
            f"{sorted(self._entities) + sorted(self._relationships)}"
        )

    def _resolve_reference(
        self, reference: str | None, key: str, relationship_name: str
    ) -> str:
        """Entity referenced by one relationship position (explicit or by convention)."""
        if reference is not None:
            if reference not in self._entities:
                raise SchemaBindingError(
                    f"relationship {relationship_name!r} references unknown entity {reference!r}"
                )
            return reference
        return self._entity_for_key(key, relationship_name)

    def _entity_for_key(self, key: str, relationship_name: str) -> str:
        """Entity whose key column matches ``key`` (the naming convention)."""
        matches = [name for name, entity in self._entities.items() if entity.key == key]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise SchemaBindingError(
                f"relationship {relationship_name!r} argument {key!r} does not match "
                "the key column of any declared entity"
            )
        raise SchemaBindingError(
            f"relationship {relationship_name!r} argument {key!r} is ambiguous: "
            f"entities {sorted(matches)} share that key column name"
        )

    def attribute_column(self, attribute_name: str) -> str:
        """Column of the subject's table that stores the attribute values."""
        declaration = self.attribute(attribute_name)
        return declaration.column or attribute_name.lower()

    def validate(self) -> None:
        """Cross-check declarations (subjects exist, relationship keys resolve)."""
        for name in self._relationships:
            self.predicate(name)
        for attribute in self._attributes.values():
            if not self.has_predicate(attribute.subject):
                raise SchemaBindingError(
                    f"attribute {attribute.name!r} is declared on unknown predicate "
                    f"{attribute.subject!r}"
                )

    # ------------------------------------------------------------------
    # binding to data
    # ------------------------------------------------------------------
    def bind(self, database: Database) -> "BoundInstance":
        """Bind the schema to a database instance, validating the mapping."""
        self.validate()
        return BoundInstance(self, database)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RelationalCausalSchema(entities={self.entity_names}, "
            f"relationships={self.relationship_names}, attributes={self.attribute_names})"
        )


class BoundInstance:
    """A relational causal schema bound to an observed database instance.

    Provides the two things grounding needs: the *relational skeleton* (a
    database of key-only views, one per predicate, used to evaluate rule
    conditions) and observed attribute-function lookups ``A[x]``.
    """

    def __init__(self, schema: RelationalCausalSchema, database: Database) -> None:
        self.schema = schema
        self.database = database
        self._attribute_values: dict[str, dict[tuple[Any, ...], Any]] = {}
        self._units: dict[str, list[tuple[Any, ...]]] = {}
        self._validate_mapping()
        self.skeleton = self._build_skeleton()

    # ------------------------------------------------------------------
    # validation / construction
    # ------------------------------------------------------------------
    def _validate_mapping(self) -> None:
        for predicate_name in (
            self.schema.entity_names + self.schema.relationship_names
        ):
            info = self.schema.predicate(predicate_name)
            if predicate_name not in self.database:
                raise SchemaBindingError(
                    f"predicate {predicate_name!r} has no table in database "
                    f"{self.database.name!r}"
                )
            table = self.database.table(predicate_name)
            for key in info.keys:
                if key not in table.columns:
                    raise SchemaBindingError(
                        f"table {predicate_name!r} is missing key column {key!r}"
                    )
        for attribute_name in self.schema.attribute_names:
            declaration = self.schema.attribute(attribute_name)
            if declaration.latent:
                continue
            table = self.database.table(declaration.subject)
            column = self.schema.attribute_column(attribute_name)
            if column not in table.columns:
                raise SchemaBindingError(
                    f"observed attribute {attribute_name!r} maps to column {column!r} "
                    f"which does not exist in table {declaration.subject!r}"
                )

    def _build_skeleton(self) -> Database:
        """Key-only projections of the predicate tables (the relational skeleton)."""
        skeleton = Database(name=f"{self.database.name}_skeleton")
        for predicate_name in self.schema.entity_names + self.schema.relationship_names:
            info = self.schema.predicate(predicate_name)
            table = self.database.table(predicate_name)
            view = table.project(list(info.keys), distinct=True)
            if view.name != predicate_name:  # pragma: no cover - project keeps the name
                view = view.rename({}, name=predicate_name)
            skeleton.add_table(view)
        return skeleton

    # ------------------------------------------------------------------
    # units and attribute values
    # ------------------------------------------------------------------
    def units(self, attribute_name: str) -> list[tuple[Any, ...]]:
        """All grounded key tuples of the attribute's subject predicate (``U_A``)."""
        subject = self.schema.subject_of(attribute_name)
        if subject not in self._units:
            info = self.schema.predicate(subject)
            table = self.database.table(subject)
            seen: dict[tuple[Any, ...], None] = {}
            for row in table.rows():
                seen.setdefault(tuple(row[key] for key in info.keys), None)
            self._units[subject] = list(seen)
        return self._units[subject]

    def attribute_value(self, attribute_name: str, key: tuple[Any, ...]) -> Any:
        """Observed value of ``attribute_name[key]``; None for latent attributes."""
        declaration = self.schema.attribute(attribute_name)
        if declaration.latent:
            return None
        values = self._attribute_index(attribute_name)
        return values.get(tuple(key))

    def attribute_values(self, attribute_name: str) -> dict[tuple[Any, ...], Any]:
        """Mapping from unit key to observed value for one attribute."""
        declaration = self.schema.attribute(attribute_name)
        if declaration.latent:
            return {}
        return dict(self._attribute_index(attribute_name))

    def _attribute_index(self, attribute_name: str) -> dict[tuple[Any, ...], Any]:
        if attribute_name not in self._attribute_values:
            declaration = self.schema.attribute(attribute_name)
            info = self.schema.predicate(declaration.subject)
            column = self.schema.attribute_column(attribute_name)
            table = self.database.table(declaration.subject)
            index: dict[tuple[Any, ...], Any] = {}
            for row in table.rows():
                index[tuple(row[key] for key in info.keys)] = row[column]
            self._attribute_values[attribute_name] = index
        return self._attribute_values[attribute_name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundInstance(schema={self.schema!r}, database={self.database.name!r})"
