"""Exception hierarchy for the CaRL language and engine."""

from __future__ import annotations


class CaRLError(Exception):
    """Base class for every error raised by the CaRL package."""


class ParseError(CaRLError):
    """Raised when CaRL source text cannot be tokenized or parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SchemaBindingError(CaRLError):
    """Raised when a relational causal schema cannot be bound to a database."""


class ModelError(CaRLError):
    """Raised when a relational causal model is invalid (e.g. recursive rules)."""


class GroundingError(CaRLError):
    """Raised when rules cannot be grounded against the relational skeleton."""


class QueryError(CaRLError):
    """Raised when a causal query is malformed or cannot be answered."""


class EstimationError(CaRLError):
    """Raised when causal-effect estimation fails (e.g. no treated units)."""
