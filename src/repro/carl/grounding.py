"""Grounding relational causal rules against a relational skeleton.

Definition 3.5 of the paper: a rule ``A[X] <= A1[X1], ..., Ak[Xk] WHERE Q(Y)``
generates one grounded rule per satisfying assignment of the conjunctive
query ``Q`` over the skeleton.  This module evaluates the conditions (atoms
via :class:`~repro.db.query.ConjunctiveQuery`, comparisons against observed
attribute values), instantiates grounded heads and bodies, and assembles the
grounded causal graph.
"""

from __future__ import annotations

from typing import Any

from repro.carl.ast import (
    AggregateRule,
    AttributeAtom,
    CausalRule,
    Comparison,
    Condition,
    Variable,
)
from repro.carl.causal_graph import (
    GroundedAttribute,
    GroundedCausalGraph,
    GroundedRule,
    node_sort_key,
)
from repro.carl.errors import GroundingError
from repro.carl.model import RelationalCausalModel
from repro.carl.schema import BoundInstance
from repro.db.query import Atom as DbAtom
from repro.db.query import ConjunctiveQuery
from repro.db.query import Variable as DbVariable

Binding = dict[str, Any]


class Grounder:
    """Grounds a relational causal model against a bound instance.

    ``query_backend`` selects the conjunctive-query evaluation strategy
    (``"rows"`` or ``"columnar"``; ``None`` uses the module default of
    :mod:`repro.db.query`) — the engine threads its own backend choice here
    so ``backend="rows"`` bypasses the columnar code end to end.
    """

    def __init__(
        self,
        model: RelationalCausalModel,
        instance: BoundInstance,
        query_backend: str | None = None,
    ) -> None:
        if model.schema is not instance.schema:
            # Not an error per se, but almost always a bug: the model was
            # validated against a different schema object.
            if model.schema.attribute_names != instance.schema.attribute_names:
                raise GroundingError(
                    "the model and the bound instance use different schemas"
                )
        self.model = model
        self.instance = instance
        self.query_backend = query_backend
        #: Number of full :meth:`ground` runs this grounder has performed.
        #: The artifact cache's tests and benchmarks assert warm runs leave
        #: this at zero — grounding work must be loaded, not redone.
        self.ground_count = 0

    # ------------------------------------------------------------------
    # condition evaluation
    # ------------------------------------------------------------------
    def condition_bindings(self, condition: Condition) -> list[Binding]:
        """All satisfying assignments of a rule/query condition."""
        atoms = [self._to_db_atom(atom.predicate, atom.terms) for atom in condition.atoms]
        bindings = ConjunctiveQuery(atoms).evaluate(
            self.instance.skeleton, backend=self.query_backend
        )
        if condition.comparisons:
            bindings = [
                binding
                for binding in bindings
                if all(self._comparison_holds(cmp_, binding) for cmp_ in condition.comparisons)
            ]
        return bindings

    def _to_db_atom(self, predicate: str, terms: tuple[Any, ...]) -> DbAtom:
        info = self.instance.schema.predicate(predicate)
        if len(terms) != len(info.keys):
            raise GroundingError(
                f"atom {predicate}({', '.join(map(str, terms))}) has arity {len(terms)} but "
                f"predicate {predicate!r} has {len(info.keys)} key(s)"
            )
        converted = tuple(
            DbVariable(term.name) if isinstance(term, Variable) else term for term in terms
        )
        return DbAtom(predicate=predicate, terms=converted)

    def _comparison_holds(self, comparison: Comparison, binding: Binding) -> bool:
        left = comparison.left
        if isinstance(left, Variable):
            if left.name not in binding:
                raise GroundingError(
                    f"comparison {comparison} uses unbound variable {left.name!r}"
                )
            return comparison.evaluate(binding[left.name])
        # Attribute comparison, e.g. Blind[C] = "single".
        key = self._ground_key(left, binding)
        value = self.instance.attribute_value(left.name, key)
        return comparison.evaluate(value)

    def _ground_key(self, atom: AttributeAtom, binding: Binding) -> tuple[Any, ...]:
        key = []
        for term in atom.terms:
            if isinstance(term, Variable):
                if term.name not in binding:
                    raise GroundingError(
                        f"variable {term.name!r} of atom {atom} is not bound by the condition"
                    )
                key.append(binding[term.name])
            else:
                key.append(term)
        return tuple(key)

    # ------------------------------------------------------------------
    # rule grounding
    # ------------------------------------------------------------------
    def ground_rule(self, rule: CausalRule) -> list[GroundedRule]:
        """All groundings of one relational causal rule."""
        grounded: dict[GroundedAttribute, set[GroundedAttribute]] = {}
        for binding in self.condition_bindings(rule.condition):
            head = GroundedAttribute(rule.head.name, self._ground_key(rule.head, binding))
            body = tuple(
                GroundedAttribute(atom.name, self._ground_key(atom, binding))
                for atom in rule.body
            )
            grounded.setdefault(head, set()).update(body)
        return [
            GroundedRule(head=head, body=tuple(sorted(body, key=node_sort_key)))
            for head, body in grounded.items()
        ]

    def ground_aggregate_rule(self, rule: AggregateRule) -> list[GroundedRule]:
        """All groundings of one aggregate rule (head nodes are aggregate nodes)."""
        grounded: dict[GroundedAttribute, set[GroundedAttribute]] = {}
        for binding in self.condition_bindings(rule.condition):
            head = GroundedAttribute(rule.head.name, self._ground_key(rule.head, binding))
            parent = GroundedAttribute(rule.body.name, self._ground_key(rule.body, binding))
            grounded.setdefault(head, set()).add(parent)
        return [
            GroundedRule(head=head, body=tuple(sorted(body, key=node_sort_key)))
            for head, body in grounded.items()
        ]

    # ------------------------------------------------------------------
    # graph assembly
    # ------------------------------------------------------------------
    def ground(self, include_aggregates: bool = True) -> GroundedCausalGraph:
        """Ground every rule of the model and assemble ``G(Phi_Delta)``.

        Nodes are also created for every unit of every declared attribute even
        when no rule mentions it (isolated attribute nodes carry observed
        values that may still serve as covariates).
        """
        self.ground_count += 1
        graph = GroundedCausalGraph()

        # Ensure every grounding of every declared attribute exists as a node.
        for attribute_name in self.model.schema.attribute_names:
            for key in self.instance.units(attribute_name):
                graph.add_node(GroundedAttribute(attribute_name, key))

        for rule in self.model.rules:
            for grounded_rule in self.ground_rule(rule):
                graph.add_grounded_rule(grounded_rule)

        if include_aggregates:
            for rule in self.model.aggregate_rules:
                for grounded_rule in self.ground_aggregate_rule(rule):
                    graph.add_grounded_rule(grounded_rule, aggregate=rule.aggregate)

        graph.validate_acyclic()
        return graph

    def grounded_attribute_values(
        self, graph: GroundedCausalGraph
    ) -> dict[GroundedAttribute, Any]:
        """Observed values for every grounded node (aggregates are computed).

        Latent attributes are absent from the mapping.  Aggregate nodes are
        evaluated bottom-up from their parents' observed values using the
        aggregate function attached to the node.
        """
        from repro.db.aggregates import aggregate as apply_aggregate

        values: dict[GroundedAttribute, Any] = {}
        for attribute_name in self.model.schema.observed_attribute_names:
            for key, value in self.instance.attribute_values(attribute_name).items():
                node = GroundedAttribute(attribute_name, key)
                if node in graph:
                    values[node] = value

        # Aggregates in topological order so nested aggregates (if any) resolve.
        for node in graph.topological_order():
            aggregate_name = graph.aggregate_of(node)
            if aggregate_name is None:
                continue
            parent_values = [
                values[parent] for parent in graph.parent_nodes(node) if parent in values
            ]
            values[node] = apply_aggregate(aggregate_name, parent_values)
        return values
