"""Tokenizer for CaRL source text."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.carl.errors import ParseError

#: Keywords are matched case-insensitively and normalized to upper case.
KEYWORDS = frozenset(
    {
        "ENTITY",
        "RELATIONSHIP",
        "ATTRIBUTE",
        "LATENT",
        "OF",
        "COLUMN",
        "WHERE",
        "WHEN",
        "PEERS",
        "TREATED",
        "ALL",
        "NONE",
        "MORE",
        "LESS",
        "THAN",
        "AT",
        "MOST",
        "LEAST",
        "EXACTLY",
        "TRUE",
        "FALSE",
    }
)

#: Multi-character operators, longest first so they win over single characters.
_OPERATORS = (
    "<=",
    ">=",
    "!=",
    "⇐",
    "<-",
    "=",
    "<",
    ">",
    "?",
    "%",
    "/",
    "(",
    ")",
    "[",
    "]",
    ",",
    ";",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: str  # IDENT, NUMBER, STRING, KEYWORD, OP, EOF
    value: str | int | float
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> list[Token]:
    """Tokenize CaRL source text into a list of tokens ending with EOF.

    Supports ``//`` and ``#`` line comments, double-quoted strings, integer
    and float literals, identifiers, keywords, and the operator set used by
    rules and queries (``<=`` / ``<-`` / ``⇐`` all spell the causal arrow).
    """
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    while index < length:
        char = text[index]

        # -- whitespace ------------------------------------------------
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue

        # -- comments --------------------------------------------------
        if char == "#" or text.startswith("//", index):
            while index < length and text[index] != "\n":
                index += 1
            continue

        # -- string literals --------------------------------------------
        if char in ('"', "'"):
            end = index + 1
            while end < length and text[end] != char:
                if text[end] == "\n":
                    raise ParseError("unterminated string literal", line, column)
                end += 1
            if end >= length:
                raise ParseError("unterminated string literal", line, column)
            value = text[index + 1 : end]
            tokens.append(Token("STRING", value, line, column))
            column += end - index + 1
            index = end + 1
            continue

        # -- numbers ----------------------------------------------------
        if char.isdigit() or (char == "." and index + 1 < length and text[index + 1].isdigit()):
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            literal = text[index:end]
            value: int | float = float(literal) if seen_dot else int(literal)
            tokens.append(Token("NUMBER", value, line, column))
            column += end - index
            index = end
            continue

        # -- identifiers and keywords ------------------------------------
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), line, column))
            else:
                tokens.append(Token("IDENT", word, line, column))
            column += end - index
            index = end
            continue

        # -- operators ----------------------------------------------------
        for operator in _OPERATORS:
            if text.startswith(operator, index):
                normalized = "<=" if operator in ("⇐", "<-") else operator
                tokens.append(Token("OP", normalized, line, column))
                column += len(operator)
                index += len(operator)
                break
        else:
            raise ParseError(f"unexpected character {char!r}", line, column)

    tokens.append(Token("EOF", "", line, column))
    return tokens


def iter_statements(tokens: list[Token]) -> Iterator[list[Token]]:
    """Split a token stream into statements separated by ``;`` or newlines.

    The parser works statement-by-statement; a statement ends at a semicolon.
    Newline-separated programs without semicolons are also accepted because
    statements are additionally split before a top-level keyword or an
    identifier that starts a new head while the previous statement is
    complete.  For robustness CaRL programs in this repository always use
    semicolons or one statement per line.
    """
    current: list[Token] = []
    for token in tokens:
        if token.kind == "EOF":
            break
        if token.kind == "OP" and token.value == ";":
            if current:
                yield current
                current = []
            continue
        if current and token.line > current[-1].line and _statement_complete(current):
            yield current
            current = []
        current.append(token)
    if current:
        yield current


def _statement_complete(tokens: list[Token]) -> bool:
    """Heuristic: a statement is complete when brackets are balanced and it
    does not end in a token that demands continuation (comma, arrow, WHERE...)."""
    depth = 0
    for token in tokens:
        if token.kind == "OP" and token.value in ("(", "["):
            depth += 1
        elif token.kind == "OP" and token.value in (")", "]"):
            depth -= 1
    if depth != 0:
        return False
    last = tokens[-1]
    if last.kind == "OP" and last.value in (",", "<=", "=", "<", ">", ">=", "!="):
        return False
    if last.kind == "KEYWORD" and last.value in (
        "WHERE",
        "WHEN",
        "OF",
        "COLUMN",
        "MORE",
        "LESS",
        "THAN",
        "AT",
        "MOST",
        "LEAST",
        "EXACTLY",
        "ENTITY",
        "RELATIONSHIP",
        "ATTRIBUTE",
        "LATENT",
        "PEERS",
    ):
        return False
    return True
