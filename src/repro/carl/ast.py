"""Abstract syntax tree for CaRL programs and queries.

A CaRL *program* consists of schema declarations (entities, relationships,
attribute functions), relational causal rules, and aggregate rules
(Section 3 of the paper).  Causal *queries* are parsed separately and come in
three forms: ATE queries, aggregated-response queries, and relational /
isolated / overall effect queries with a ``WHEN ... PEERS TREATED`` clause
(Section 3.3).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Union


# ----------------------------------------------------------------------
# terms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Variable:
    """A logical variable appearing in rule heads, bodies and conditions."""

    name: str

    def __str__(self) -> str:
        return self.name


Term = Union[Variable, int, float, str, bool]


def term_to_str(term: Term) -> str:
    if isinstance(term, Variable):
        return term.name
    if isinstance(term, str):
        return f'"{term}"'
    return str(term)


# ----------------------------------------------------------------------
# atoms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PredicateAtom:
    """An entity/relationship atom such as ``Author(A, S)``."""

    predicate: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(term for term in self.terms if isinstance(term, Variable))

    def __str__(self) -> str:
        return f"{self.predicate}({', '.join(term_to_str(t) for t in self.terms)})"


@dataclass(frozen=True)
class AttributeAtom:
    """An attribute-function atom such as ``Prestige[A]`` or ``AVG_Score[A]``."""

    name: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def variables(self) -> tuple[Variable, ...]:
        return tuple(term for term in self.terms if isinstance(term, Variable))

    def __str__(self) -> str:
        return f"{self.name}[{', '.join(term_to_str(t) for t in self.terms)}]"


#: Comparison operators allowed in rule / query conditions.
COMPARISON_OPERATORS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class Comparison:
    """A comparison between an attribute atom (or variable) and a constant.

    Used in rule/query conditions, e.g. ``Blind[C] = "single"`` restricts the
    grounding to single-blind conferences, and as a treatment threshold, e.g.
    ``Qualification[A] >= 30``.
    """

    left: AttributeAtom | Variable
    operator: str
    right: Any

    def __post_init__(self) -> None:
        if self.operator not in COMPARISON_OPERATORS:
            raise ValueError(f"unknown comparison operator {self.operator!r}")

    def evaluate(self, left_value: Any) -> bool:
        """Evaluate the comparison for a concrete left-hand value."""
        if left_value is None:
            return False
        right = self.right
        if self.operator == "=":
            return left_value == right
        if self.operator == "!=":
            return left_value != right
        if self.operator == "<":
            return left_value < right
        if self.operator == "<=":
            return left_value <= right
        if self.operator == ">":
            return left_value > right
        return left_value >= right

    def __str__(self) -> str:
        left = str(self.left)
        right = f'"{self.right}"' if isinstance(self.right, str) else str(self.right)
        return f"{left} {self.operator} {right}"


@dataclass(frozen=True)
class Condition:
    """The ``WHERE`` clause of a rule or query: predicate atoms + comparisons."""

    atoms: tuple[PredicateAtom, ...] = ()
    comparisons: tuple[Comparison, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", tuple(self.atoms))
        object.__setattr__(self, "comparisons", tuple(self.comparisons))

    @property
    def is_trivial(self) -> bool:
        return not self.atoms and not self.comparisons

    @property
    def variables(self) -> tuple[Variable, ...]:
        seen: dict[str, Variable] = {}
        for atom in self.atoms:
            for variable in atom.variables:
                seen.setdefault(variable.name, variable)
        for comparison in self.comparisons:
            if isinstance(comparison.left, Variable):
                seen.setdefault(comparison.left.name, comparison.left)
            else:
                for variable in comparison.left.variables:
                    seen.setdefault(variable.name, variable)
        return tuple(seen.values())

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.atoms] + [str(cmp_) for cmp_ in self.comparisons]
        return ", ".join(parts) if parts else "TRUE"


# ----------------------------------------------------------------------
# schema declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EntityDeclaration:
    """``ENTITY Person(person)`` — an entity and the name of its key column."""

    name: str
    key: str

    def __str__(self) -> str:
        return f"ENTITY {self.name}({self.key})"


@dataclass(frozen=True)
class RelationshipDeclaration:
    """``RELATIONSHIP Author(person, sub)`` — a relationship over entity keys.

    Each argument names a column of the relationship's table; by convention
    the argument name matches the key column of the referenced entity, which
    is how the engine resolves which entity each position refers to.  When
    the convention does not apply (e.g. a self-relationship such as
    ``Collaborates(author, peer)``), the referenced entity can be stated
    explicitly: ``RELATIONSHIP Collaborates(author Person, peer Person)``.
    ``references`` holds the explicit entity name per position (None when
    the convention should be used).
    """

    name: str
    keys: tuple[str, ...]
    references: tuple[str | None, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))
        references = tuple(self.references)
        if not references:
            references = tuple(None for _ in self.keys)
        if len(references) != len(self.keys):
            raise ValueError(
                f"relationship {self.name!r} declares {len(self.keys)} keys but "
                f"{len(references)} entity references"
            )
        object.__setattr__(self, "references", references)

    def __str__(self) -> str:
        parts = []
        for key, reference in zip(self.keys, self.references):
            parts.append(f"{key} {reference}" if reference else key)
        return f"RELATIONSHIP {self.name}({', '.join(parts)})"


@dataclass(frozen=True)
class AttributeDeclaration:
    """``ATTRIBUTE Prestige OF Person`` (optionally ``LATENT``, ``COLUMN col``).

    ``subject`` is the entity or relationship the attribute function is
    defined on; ``column`` is the column of the subject's table holding the
    observed values (defaults to the lower-cased attribute name); latent
    attributes have no column and are unobserved in every instance.
    """

    name: str
    subject: str
    column: str | None = None
    latent: bool = False

    def __str__(self) -> str:
        prefix = "LATENT ATTRIBUTE" if self.latent else "ATTRIBUTE"
        suffix = f" COLUMN {self.column}" if self.column else ""
        return f"{prefix} {self.name} OF {self.subject}{suffix}"


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CausalRule:
    """A relational causal rule ``A[X] <= A1[X1], ..., Ak[Xk] WHERE Q(Y)``."""

    head: AttributeAtom
    body: tuple[AttributeAtom, ...]
    condition: Condition = field(default_factory=Condition)

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    @property
    def variables(self) -> tuple[Variable, ...]:
        seen: dict[str, Variable] = {}
        for atom in (self.head, *self.body):
            for variable in atom.variables:
                seen.setdefault(variable.name, variable)
        for variable in self.condition.variables:
            seen.setdefault(variable.name, variable)
        return tuple(seen.values())

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        where = "" if self.condition.is_trivial else f" WHERE {self.condition}"
        return f"{self.head} <= {body}{where}"


@dataclass(frozen=True)
class AggregateRule:
    """An aggregate rule ``AGG_A[W] <= A[X] WHERE Q(Z)`` (Section 3.2.4)."""

    aggregate: str
    head: AttributeAtom
    body: AttributeAtom
    condition: Condition = field(default_factory=Condition)

    def __str__(self) -> str:
        where = "" if self.condition.is_trivial else f" WHERE {self.condition}"
        return f"{self.head} <= {self.body}{where}"


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------
#: Kinds of peer-treatment conditions in the ``WHEN ... PEERS TREATED`` grammar.
PEER_CONDITION_KINDS = (
    "ALL",
    "NONE",
    "MORE_THAN_PERCENT",
    "LESS_THAN_PERCENT",
    "AT_LEAST",
    "AT_MOST",
    "EXACTLY",
)


@dataclass(frozen=True)
class PeerCondition:
    """The ``<cnd>`` of ``WHEN <cnd> PEERS TREATED`` (grammar (16) of the paper)."""

    kind: str
    value: float | int | None = None

    def __post_init__(self) -> None:
        if self.kind not in PEER_CONDITION_KINDS:
            raise ValueError(f"unknown peer condition kind {self.kind!r}")
        if self.kind in ("ALL", "NONE") and self.value is not None:
            raise ValueError(f"peer condition {self.kind} takes no value")
        if self.kind not in ("ALL", "NONE") and self.value is None:
            raise ValueError(f"peer condition {self.kind} requires a value")

    def treated_fraction(self, peer_count: int) -> float:
        """Fraction of a unit's peers treated under this condition.

        Percent conditions translate directly; count conditions are divided
        by the unit's own peer count (truncated to [0, 1]), matching the
        paper's allowance for per-unit peer-set sizes (footnote 9).
        """
        if self.kind == "ALL":
            return 1.0
        if self.kind == "NONE":
            return 0.0
        if self.kind in ("MORE_THAN_PERCENT", "LESS_THAN_PERCENT"):
            return min(max(float(self.value) / 100.0, 0.0), 1.0)
        if peer_count <= 0:
            return 0.0
        return min(max(float(self.value) / peer_count, 0.0), 1.0)

    def __str__(self) -> str:
        if self.kind == "ALL":
            return "ALL"
        if self.kind == "NONE":
            return "NONE"
        if self.kind == "MORE_THAN_PERCENT":
            return f"MORE THAN {self.value}%"
        if self.kind == "LESS_THAN_PERCENT":
            return f"LESS THAN {self.value}%"
        if self.kind == "AT_LEAST":
            return f"AT LEAST {self.value}"
        if self.kind == "AT_MOST":
            return f"AT MOST {self.value}"
        return f"EXACTLY {self.value}"


@dataclass(frozen=True)
class CausalQuery:
    """A causal query ``Y[X'] <= T[X] ? [WHEN <cnd> PEERS TREATED] [WHERE ...]``.

    ``treatment_threshold`` optionally binarizes a non-binary treatment
    attribute (e.g. ``Qualification[A] >= 30``); ``condition`` optionally
    restricts the response units considered (e.g. to single-blind venues).
    """

    response: AttributeAtom
    treatment: AttributeAtom
    peer_condition: PeerCondition | None = None
    condition: Condition = field(default_factory=Condition)
    treatment_threshold: Comparison | None = None

    @property
    def is_peer_query(self) -> bool:
        return self.peer_condition is not None

    def __str__(self) -> str:
        text = f"{self.response} <= {self.treatment} ?"
        if self.treatment_threshold is not None:
            text = (
                f"{self.response} <= {self.treatment} "
                f"{self.treatment_threshold.operator} {self.treatment_threshold.right} ?"
            )
        if self.peer_condition is not None:
            text += f" WHEN {self.peer_condition} PEERS TREATED"
        if not self.condition.is_trivial:
            text += f" WHERE {self.condition}"
        return text


# ----------------------------------------------------------------------
# program
# ----------------------------------------------------------------------
@dataclass
class Program:
    """A parsed CaRL program: declarations + rules (+ any inline queries)."""

    entities: list[EntityDeclaration] = field(default_factory=list)
    relationships: list[RelationshipDeclaration] = field(default_factory=list)
    attributes: list[AttributeDeclaration] = field(default_factory=list)
    rules: list[CausalRule] = field(default_factory=list)
    aggregate_rules: list[AggregateRule] = field(default_factory=list)
    queries: list[CausalQuery] = field(default_factory=list)

    def merge(self, other: "Program") -> "Program":
        """Concatenate two programs (declarations first, then rules/queries)."""
        return Program(
            entities=self.entities + other.entities,
            relationships=self.relationships + other.relationships,
            attributes=self.attributes + other.attributes,
            rules=self.rules + other.rules,
            aggregate_rules=self.aggregate_rules + other.aggregate_rules,
            queries=self.queries + other.queries,
        )

    def __str__(self) -> str:
        lines: list[str] = []
        lines.extend(str(declaration) for declaration in self.entities)
        lines.extend(str(declaration) for declaration in self.relationships)
        lines.extend(str(declaration) for declaration in self.attributes)
        lines.extend(str(rule) for rule in self.rules)
        lines.extend(str(rule) for rule in self.aggregate_rules)
        lines.extend(str(query) for query in self.queries)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# canonical serialization (used for content-addressed caching)
# ----------------------------------------------------------------------
def to_canonical(node: Any) -> Any:
    """Lossless, JSON-able representation of an AST node (or nesting thereof).

    Every dataclass node becomes a dict tagged with its class name, so two
    structurally different programs can never collapse to the same
    representation (unlike the pretty-printed ``str`` form, which omits e.g.
    the aggregate function of an :class:`AggregateRule`).  Primitives pass
    through unchanged; unknown objects degrade to their ``repr``.
    """
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        canonical: dict[str, Any] = {"__ast__": type(node).__name__}
        for f in dataclasses.fields(node):
            canonical[f.name] = to_canonical(getattr(node, f.name))
        return canonical
    if isinstance(node, (list, tuple)):
        return [to_canonical(item) for item in node]
    if node is None or isinstance(node, (str, int, float, bool)):
        return node
    return {"__repr__": repr(node)}


def canonical_text(node: Any) -> str:
    """Deterministic text encoding of :func:`to_canonical` (stable for hashing).

    Keys are sorted and separators fixed, so the same AST always yields the
    same byte string across processes and platforms.
    """
    return json.dumps(
        to_canonical(node), sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
