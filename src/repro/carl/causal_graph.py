"""The grounded relational causal graph ``G(Phi_Delta)``.

Nodes are grounded attributes ``A[x]`` — an attribute-function name plus a
tuple of entity/relationship key constants — and edges run from every atom
in the body of a grounded rule to its head (Section 3.2.3 of the paper).
Aggregated attributes introduced by aggregate rules become additional nodes
whose value is a deterministic function of their parents (Section 3.2.4).

The graph is arrays-first: nodes are interned into an id table (ids are
assigned in insertion order) and adjacency is compiled into a
:class:`~repro.graph.csr.CSRGraph` — dual CSR arrays whose neighbour lists
are sorted by node id.  Every walk (ancestors, topological order,
d-separation) is a vectorized frontier sweep over those arrays, and every
iteration order is a pure function of node ids: nothing here depends on
``PYTHONHASHSEED``, so warm-cache loads in spawn workers iterate exactly
like the grounding process did.

Mutation stays cheap: ``add_node``/``add_grounded_rule`` append to plain
Python buffers and the CSR snapshot is recompiled lazily on the next
adjacency query (the engine splices dynamically-registered aggregate rules
into a loaded graph, so post-load mutability is required).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import Any, NamedTuple

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.dag import DAG


class GroundedAttribute(NamedTuple):
    """A grounded attribute node ``A[x]``: attribute name + key constants."""

    attribute: str
    key: tuple[Any, ...]

    def __str__(self) -> str:
        rendered = ", ".join(repr(part) for part in self.key)
        return f"{self.attribute}[{rendered}]"


def _key_part_sort_key(part: Any) -> tuple[int, float, str]:
    """Total order over heterogeneous key constants: numbers by value, then
    booleans, then strings, then everything else by repr."""
    if isinstance(part, bool):
        return (1, float(part), "")
    if isinstance(part, (int, float)):
        return (0, float(part), "")
    if isinstance(part, str):
        return (2, 0.0, part)
    return (3, 0.0, repr(part))


def node_sort_key(node: GroundedAttribute) -> tuple[Any, ...]:
    """Structural sort key for grounded attribute nodes.

    ``sorted(nodes, key=str)`` is lexicographic — ``A[10]`` sorts before
    ``A[2]`` — so stringly-sorted node lists change order when key spaces
    cross a digit boundary.  This key sorts by attribute name, then by key
    arity, then part-wise with numeric parts in numeric order, giving one
    canonical order that is stable across runs and dataset sizes.
    """
    return (
        node.attribute,
        len(node.key),
        tuple(_key_part_sort_key(part) for part in node.key),
    )


class GroundedRule(NamedTuple):
    """A grounded rule: head node, body nodes, and the originating rule index."""

    head: GroundedAttribute
    body: tuple[GroundedAttribute, ...]


class GroundedCausalGraph:
    """Interned-node DAG over grounded attributes with attribute-aware queries.

    Node ids are insertion-order ints; all ordered query results
    (``nodes_of``, ``parents_by_attribute``, ``ancestor_nodes_of_attribute``,
    ``edges``, ``topological_order``) are ordered by node id, which makes
    them deterministic and — for the common integer/string key tuples —
    matches the order the grounder discovered the units in.
    """

    def __init__(self) -> None:
        self._nodes: list[GroundedAttribute] = []
        self._node_index: dict[GroundedAttribute, int] = {}
        #: attribute name -> node ids (ascending: appended in intern order).
        self._by_attribute: dict[str, list[int]] = {}
        self._by_attribute_arrays: dict[str, np.ndarray] = {}
        self._aggregates: dict[GroundedAttribute, str] = {}
        #: edges appended since the last CSR compile, as id pairs.
        self._pending_parents: list[int] = []
        self._pending_children: list[int] = []
        self._csr: CSRGraph | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _intern(self, node: GroundedAttribute) -> int:
        index = self._node_index.get(node)
        if index is None:
            index = len(self._nodes)
            self._node_index[node] = index
            self._nodes.append(node)
            self._by_attribute.setdefault(node.attribute, []).append(index)
            self._by_attribute_arrays.pop(node.attribute, None)
        return index

    def add_node(self, node: GroundedAttribute, aggregate: str | None = None) -> None:
        """Register a grounded attribute node (idempotent)."""
        self._intern(node)
        if aggregate is not None:
            self._aggregates[node] = aggregate

    def add_edge(self, parent: GroundedAttribute, child: GroundedAttribute) -> None:
        """Add the directed edge ``parent -> child`` (idempotent), creating
        missing nodes."""
        if parent == child:
            raise ValueError(f"self-loop not allowed: {parent!r}")
        self._pending_parents.append(self._intern(parent))
        self._pending_children.append(self._intern(child))

    def add_grounded_rule(self, rule: GroundedRule, aggregate: str | None = None) -> None:
        """Add a grounded rule: nodes for head and body, edges body -> head."""
        self.add_node(rule.head, aggregate=aggregate)
        for parent in rule.body:
            if parent != rule.head:
                self.add_edge(parent, rule.head)
            else:
                self.add_node(parent)

    # ------------------------------------------------------------------
    # CSR compilation
    # ------------------------------------------------------------------
    def csr(self) -> CSRGraph:
        """The compiled CSR adjacency, recompiled lazily after mutations."""
        n = len(self._nodes)
        csr = self._csr
        if csr is not None and csr.n == n and not self._pending_parents:
            return csr
        parents = np.asarray(self._pending_parents, dtype=np.int64)
        children = np.asarray(self._pending_children, dtype=np.int64)
        if csr is not None and csr.n_edges:
            old_parents, old_children = csr.edge_arrays()
            parents = np.concatenate((old_parents, parents))
            children = np.concatenate((old_children, children))
        self._csr = CSRGraph.from_edges(n, parents, children)
        self._pending_parents = []
        self._pending_children = []
        return self._csr

    def _adopt_arrays(self, nodes: list[GroundedAttribute], csr: CSRGraph) -> None:
        """Bulk-install an interned node list and a compiled CSR snapshot.

        Used by :func:`repro.cache.serialization.load_grounding`: the payload
        already holds the id table and both CSR directions, so a warm load
        wires them in directly instead of re-interning node by node.  The
        ``_by_attribute`` index is installed separately by the loader (it is
        derived from the payload's attribute-id array in one vectorized pass).
        """
        self._nodes = nodes
        self._node_index = dict(zip(nodes, range(len(nodes))))
        self._csr = csr

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: GroundedAttribute) -> bool:
        return node in self._node_index

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[GroundedAttribute]:
        """All nodes, in insertion (= id) order."""
        return list(self._nodes)

    def node_at(self, index: int) -> GroundedAttribute:
        return self._nodes[index]

    def index_of(self, node: GroundedAttribute) -> int | None:
        """Interned id of ``node`` (None for unknown nodes)."""
        return self._node_index.get(node)

    @property
    def edges(self) -> list[tuple[GroundedAttribute, GroundedAttribute]]:
        """All edges as ``(parent, child)`` pairs, sorted by (parent, child) id."""
        csr = self.csr()
        nodes = self._nodes
        counts = np.diff(csr.child_indptr)
        parent_ids = np.repeat(np.arange(csr.n, dtype=np.int64), counts)
        return [
            (nodes[parent], nodes[child])
            for parent, child in zip(parent_ids.tolist(), csr.child_indices.tolist())
        ]

    def number_of_edges(self) -> int:
        return self.csr().n_edges

    def has_edge(self, parent: GroundedAttribute, child: GroundedAttribute) -> bool:
        parent_id = self._node_index.get(parent)
        child_id = self._node_index.get(child)
        if parent_id is None or child_id is None:
            return False
        return self.csr().has_edge(parent_id, child_id)

    def nodes_of(self, attribute: str) -> list[GroundedAttribute]:
        """All groundings of one attribute function (``A_Delta`` in the paper),
        in node-id (insertion) order."""
        nodes = self._nodes
        return [nodes[index] for index in self._by_attribute.get(attribute, ())]

    def attribute_names(self) -> list[str]:
        return list(self._by_attribute)

    def is_aggregate(self, node: GroundedAttribute) -> bool:
        return node in self._aggregates

    def aggregate_of(self, node: GroundedAttribute) -> str | None:
        return self._aggregates.get(node)

    def parent_nodes(self, node: GroundedAttribute) -> list[GroundedAttribute]:
        """Direct parents of ``node`` in ascending node-id order."""
        index = self._node_index.get(node)
        if index is None:
            return []
        nodes = self._nodes
        return [nodes[parent] for parent in self.csr().parents_of(index).tolist()]

    def child_nodes(self, node: GroundedAttribute) -> list[GroundedAttribute]:
        """Direct children of ``node`` in ascending node-id order."""
        index = self._node_index.get(node)
        if index is None:
            return []
        nodes = self._nodes
        return [nodes[child] for child in self.csr().children_of(index).tolist()]

    def parents(self, node: GroundedAttribute) -> set[GroundedAttribute]:
        return set(self.parent_nodes(node))

    def children(self, node: GroundedAttribute) -> set[GroundedAttribute]:
        return set(self.child_nodes(node))

    def parents_by_attribute(
        self, node: GroundedAttribute
    ) -> dict[str, list[GroundedAttribute]]:
        """Parents of ``node`` grouped by attribute-function name.

        This grouping is what the embedding layer operates on: all parents of
        the same type are collapsed by one embedding function ``psi_A_Aj``
        (Section 4.1).  Groups appear in first-parent order and each group is
        in ascending node-id order.
        """
        grouped: dict[str, list[GroundedAttribute]] = {}
        for parent in self.parent_nodes(node):
            grouped.setdefault(parent.attribute, []).append(parent)
        return grouped

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def _mask_nodes(self, mask: np.ndarray) -> set[GroundedAttribute]:
        nodes = self._nodes
        return {nodes[index] for index in np.flatnonzero(mask).tolist()}

    def ancestors(self, node: GroundedAttribute) -> set[GroundedAttribute]:
        index = self._node_index.get(node)
        if index is None:
            return set()
        return self._mask_nodes(self.csr().ancestor_mask((index,)))

    def descendants(self, node: GroundedAttribute) -> set[GroundedAttribute]:
        index = self._node_index.get(node)
        if index is None:
            return set()
        return self._mask_nodes(self.csr().descendant_mask((index,)))

    def ancestors_of_set(self, nodes: Iterable[GroundedAttribute]) -> set[GroundedAttribute]:
        """Union of the ancestors of every node in ``nodes``, plus the nodes."""
        ids = [
            index
            for index in (self._node_index.get(node) for node in nodes)
            if index is not None
        ]
        if not ids:
            return set()
        return self._mask_nodes(self.csr().ancestor_mask(ids, include_sources=True))

    def has_directed_path(self, source: GroundedAttribute, target: GroundedAttribute) -> bool:
        source_id = self._node_index.get(source)
        target_id = self._node_index.get(target)
        if source_id is None or target_id is None:
            return False
        return self.csr().has_directed_path(source_id, target_id)

    def _attribute_ids(self, attribute: str) -> np.ndarray:
        array = self._by_attribute_arrays.get(attribute)
        if array is None:
            array = np.asarray(self._by_attribute.get(attribute, ()), dtype=np.int64)
            self._by_attribute_arrays[attribute] = array
        return array

    def ancestor_nodes_of_attribute(
        self, node: GroundedAttribute, attribute: str
    ) -> list[GroundedAttribute]:
        """Ancestors of ``node`` restricted to groundings of ``attribute``,
        in ascending node-id order."""
        index = self._node_index.get(node)
        if index is None:
            return []
        mask = self.csr().ancestor_mask((index,))
        candidates = self._attribute_ids(attribute)
        nodes = self._nodes
        return [nodes[match] for match in candidates[mask[candidates]].tolist()]

    # ------------------------------------------------------------------
    # causal-graph operations
    # ------------------------------------------------------------------
    def topological_order(self) -> list[GroundedAttribute]:
        """Deterministic topological order (level-synchronous Kahn over CSR);
        raises :class:`~repro.graph.dag.CycleError` on cyclic graphs."""
        nodes = self._nodes
        return [nodes[index] for index in self.csr().topological_order().tolist()]

    def validate_acyclic(self) -> None:
        self.csr().topological_order()

    def do(self, nodes: Iterable[GroundedAttribute]) -> DAG:
        """Mutilated DAG for an intervention on ``nodes`` (edges into them
        removed), with nodes and edges inserted in deterministic id order."""
        intervened = {node for node in nodes if node in self._node_index}
        mutilated = DAG()
        for node in self._nodes:
            mutilated.add_node(node)
        for parent, child in self.edges:
            if child not in intervened:
                mutilated.add_edge(parent, child)
        return mutilated

    def _as_ids(
        self, nodes: Iterable[GroundedAttribute] | GroundedAttribute
    ) -> set[int]:
        # A single node may itself be iterable (a grounded attribute is a
        # NamedTuple); if the argument is a graph node, treat it as one node.
        if isinstance(nodes, Hashable):
            try:
                index = self._node_index.get(nodes)  # type: ignore[arg-type]
            except TypeError:  # unhashable despite the isinstance check
                index = None
            if index is not None:
                return {index}
        if isinstance(nodes, (str, bytes)) or not isinstance(nodes, Iterable):
            return set()
        found = set()
        for node in nodes:
            index = self._node_index.get(node)
            if index is not None:
                found.add(index)
        return found

    def d_separated(
        self,
        x: Iterable[GroundedAttribute] | GroundedAttribute,
        y: Iterable[GroundedAttribute] | GroundedAttribute,
        given: Iterable[GroundedAttribute] = (),
    ) -> bool:
        """d-separation in the grounded graph (used to verify adjustment sets).

        Bayes-ball reachability as boolean-mask frontier sweeps over the CSR
        arrays; semantics match :func:`repro.graph.dseparation.d_separated`.
        """
        given_ids = self._as_ids(given)
        x_ids = self._as_ids(x) - given_ids
        y_ids = self._as_ids(y) - given_ids
        if not x_ids or not y_ids:
            return True
        if x_ids & y_ids:
            return False
        reachable = self.csr().dconnected_mask(sorted(x_ids), sorted(given_ids))
        return not any(reachable[index] for index in y_ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroundedCausalGraph(nodes={len(self._nodes)}, "
            f"edges={self.number_of_edges()}, attributes={len(self._by_attribute)})"
        )
