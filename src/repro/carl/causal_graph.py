"""The grounded relational causal graph ``G(Phi_Delta)``.

Nodes are grounded attributes ``A[x]`` — an attribute-function name plus a
tuple of entity/relationship key constants — and edges run from every atom
in the body of a grounded rule to its head (Section 3.2.3 of the paper).
Aggregated attributes introduced by aggregate rules become additional nodes
whose value is a deterministic function of their parents (Section 3.2.4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, NamedTuple

from repro.graph.dag import DAG
from repro.graph.dseparation import d_separated


class GroundedAttribute(NamedTuple):
    """A grounded attribute node ``A[x]``: attribute name + key constants."""

    attribute: str
    key: tuple[Any, ...]

    def __str__(self) -> str:
        rendered = ", ".join(repr(part) for part in self.key)
        return f"{self.attribute}[{rendered}]"


class GroundedRule(NamedTuple):
    """A grounded rule: head node, body nodes, and the originating rule index."""

    head: GroundedAttribute
    body: tuple[GroundedAttribute, ...]


class GroundedCausalGraph:
    """DAG over grounded attributes with attribute-aware convenience queries."""

    def __init__(self) -> None:
        self.dag = DAG()
        self._by_attribute: dict[str, set[GroundedAttribute]] = defaultdict(set)
        self._aggregates: dict[GroundedAttribute, str] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: GroundedAttribute, aggregate: str | None = None) -> None:
        """Register a grounded attribute node (idempotent)."""
        self.dag.add_node(node)
        self._by_attribute[node.attribute].add(node)
        if aggregate is not None:
            self._aggregates[node] = aggregate

    def add_grounded_rule(self, rule: GroundedRule, aggregate: str | None = None) -> None:
        """Add a grounded rule: nodes for head and body, edges body -> head."""
        self.add_node(rule.head, aggregate=aggregate)
        for parent in rule.body:
            self.add_node(parent)
            if parent != rule.head:
                self.dag.add_edge(parent, rule.head)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: GroundedAttribute) -> bool:
        return node in self.dag

    def __len__(self) -> int:
        return len(self.dag)

    @property
    def nodes(self) -> list[GroundedAttribute]:
        return self.dag.nodes

    @property
    def edges(self) -> list[tuple[GroundedAttribute, GroundedAttribute]]:
        return self.dag.edges

    def number_of_edges(self) -> int:
        return self.dag.number_of_edges()

    def nodes_of(self, attribute: str) -> list[GroundedAttribute]:
        """All groundings of one attribute function (``A_Delta`` in the paper)."""
        return sorted(self._by_attribute.get(attribute, set()), key=lambda node: str(node.key))

    def attribute_names(self) -> list[str]:
        return list(self._by_attribute)

    def is_aggregate(self, node: GroundedAttribute) -> bool:
        return node in self._aggregates

    def aggregate_of(self, node: GroundedAttribute) -> str | None:
        return self._aggregates.get(node)

    def parents(self, node: GroundedAttribute) -> set[GroundedAttribute]:
        return self.dag.parents(node)

    def children(self, node: GroundedAttribute) -> set[GroundedAttribute]:
        return self.dag.children(node)

    def parents_by_attribute(
        self, node: GroundedAttribute
    ) -> dict[str, list[GroundedAttribute]]:
        """Parents of ``node`` grouped by attribute-function name.

        This grouping is what the embedding layer operates on: all parents of
        the same type are collapsed by one embedding function ``psi_A_Aj``
        (Section 4.1).
        """
        grouped: dict[str, list[GroundedAttribute]] = defaultdict(list)
        for parent in self.dag.parents(node):
            grouped[parent.attribute].append(parent)
        return {name: sorted(parents, key=lambda n: str(n.key)) for name, parents in grouped.items()}

    def ancestors(self, node: GroundedAttribute) -> set[GroundedAttribute]:
        return self.dag.ancestors(node)

    def descendants(self, node: GroundedAttribute) -> set[GroundedAttribute]:
        return self.dag.descendants(node)

    def has_directed_path(self, source: GroundedAttribute, target: GroundedAttribute) -> bool:
        return self.dag.has_directed_path(source, target)

    def ancestor_nodes_of_attribute(
        self, node: GroundedAttribute, attribute: str
    ) -> list[GroundedAttribute]:
        """Ancestors of ``node`` restricted to groundings of ``attribute``."""
        return sorted(
            (ancestor for ancestor in self.dag.ancestors(node) if ancestor.attribute == attribute),
            key=lambda n: str(n.key),
        )

    # ------------------------------------------------------------------
    # causal-graph operations
    # ------------------------------------------------------------------
    def validate_acyclic(self) -> None:
        self.dag.validate_acyclic()

    def do(self, nodes: Iterable[GroundedAttribute]) -> DAG:
        """Mutilated DAG for an intervention on ``nodes`` (edges into them removed)."""
        return self.dag.do(nodes)

    def d_separated(
        self,
        x: Iterable[GroundedAttribute] | GroundedAttribute,
        y: Iterable[GroundedAttribute] | GroundedAttribute,
        given: Iterable[GroundedAttribute] = (),
    ) -> bool:
        """d-separation in the grounded graph (used to verify adjustment sets)."""
        return d_separated(self.dag, x, y, given)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GroundedCausalGraph(nodes={len(self.dag)}, edges={self.dag.number_of_edges()}, "
            f"attributes={len(self._by_attribute)})"
        )
