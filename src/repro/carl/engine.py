"""The CaRL query-answering engine.

Ties the whole pipeline of Section 5 together:

1. parse the CaRL program (schema + rules) and bind it to a database;
2. ground the rules into the grounded relational causal graph;
3. for a causal query, unify treated and response units (aggregating the
   response along a relational path when they differ);
4. detect covariates (Theorem 5.2), embed variable-size vectors, and build
   the unit table (Algorithm 1);
5. estimate the requested effect (ATE, aggregated response, or the
   isolated / relational / overall effect triple) with a standard
   single-table estimator, alongside the naive associational quantities.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

import numpy as np

from repro.cache.fingerprint import (
    database_fingerprint,
    model_fingerprint,
    query_fingerprint,
)
from repro.cache.serialization import (
    SerializationError,
    grounding_payload,
    load_grounding,
    load_unit_table,
    unit_table_payload,
)
from repro.cache.store import ArtifactCache, CacheKey
from repro.carl.ast import CausalQuery, PeerCondition, Program, Variable
from repro.carl.batch import BatchScratch
from repro.carl.causal_graph import GroundedAttribute, GroundedCausalGraph
from repro.carl.errors import QueryError
from repro.carl.grounding import Grounder
from repro.carl.model import RelationalCausalModel
from repro.carl.parser import parse_program, parse_query
from repro.carl.peers import build_unifying_aggregate_rule, compute_peers
from repro.carl.queries import ATEResult, EffectsResult, QueryAnswer
from repro.carl.schema import RelationalCausalSchema
from repro.carl.shard import DEFAULT_HANG_TIMEOUT
from repro.carl.unit_table import (
    UNIT_TABLE_BACKENDS,
    UnitTable,
    UnitTableInputs,
    build_unit_table,
    collect_unit_table_inputs,
    materialize_unit_table,
)
from repro.db.aggregates import AGGREGATES, aggregate as apply_aggregate
from repro.db.database import Database
from repro.inference.bootstrap import bootstrap_statistic
from repro.observability.telemetry import get_registry
from repro.inference.correlation import naive_difference, pearson_correlation
from repro.inference.estimators import estimate_ate, estimate_ate_from_unit_table
from repro.inference.outcome import OutcomeModel


class CaRLEngine:
    """End-to-end CaRL engine over a database and a CaRL program.

    Query answering (:meth:`answer`, :meth:`answer_all`, :meth:`unit_table`,
    :meth:`diagnostics`, :meth:`conditional_effects`) is thread-safe: shared
    mutable state is guarded by an internal lock, while the numpy-dominated
    phases run outside it.  Mutating the underlying database concurrently
    with query answering is not supported (see ``docs/batching.md``).
    """

    def __init__(
        self,
        database: Database,
        program: str | Program,
        estimator: str = "regression",
        embedding: str = "mean",
        backend: str = "columnar",
        cache: ArtifactCache | str | Path | None = None,
    ) -> None:
        if backend not in UNIT_TABLE_BACKENDS:
            raise QueryError(
                f"unknown backend {backend!r}; expected one of {UNIT_TABLE_BACKENDS}"
            )
        if isinstance(program, str):
            program = parse_program(program)
        self.program = program
        self.schema = RelationalCausalSchema.from_program(program)
        self.model = RelationalCausalModel(
            self.schema, rules=program.rules, aggregate_rules=program.aggregate_rules
        )
        self.database = database
        self.instance = self.schema.bind(database)
        self.grounder = Grounder(self.model, self.instance, query_backend=backend)
        self.default_estimator = estimator
        self.default_embedding = embedding
        self.backend = backend
        #: Persistent artifact cache (a path enables one rooted there); the
        #: engine probes it before grounding and before unit-table builds.
        self.cache = ArtifactCache(cache) if isinstance(cache, (str, Path)) else cache
        #: Fingerprint of the program as written (schema declarations +
        #: declared rules).  Cache keys are built from this, never from the
        #: session's accumulated rule list, so identical work keys
        #: identically across sessions regardless of query order.
        self._program_fingerprint = model_fingerprint(program, self.model)
        #: Number of times this engine actually ground the program (cache
        #: hits do not count; staleness re-grounds do).
        self.grounding_runs = 0

        self._graph: GroundedCausalGraph | None = None  # guarded-by: _state_lock
        self._values: dict[GroundedAttribute, Any] | None = None  # guarded-by: _state_lock
        self._db_token: tuple[Any, ...] | None = None  # guarded-by: _state_lock
        #: Unifying aggregate rules registered by response resolution whose
        #: groundings have not been spliced into the graph yet (deferred so a
        #: unit-table cache hit never has to touch the graph).
        self._pending_aggregates: list[Any] = []  # guarded-by: _state_lock
        #: Wall-clock seconds of the engine's most recent grounding (or cache
        #: load of one).  Per-answer attribution lives on
        #: :attr:`QueryAnswer.grounding_seconds` instead: an answer is only
        #: charged for grounding work its own call actually performed.
        self.grounding_seconds: float = 0.0
        self._grounding_epoch = 0
        #: Reentrant lock guarding every read or write of shared mutable
        #: state: the grounded graph and its values, the model's rule lists,
        #: pending aggregate splices, and the bound instance's lazy indexes.
        #: Graph walks hold it; numpy-dominated phases (embedding,
        #: binarization, estimation, artifact I/O) run outside it so
        #: concurrent ``answer`` calls overlap where the GIL allows.
        self._state_lock = threading.RLock()
        #: Per-thread accumulator of grounding seconds charged to the answer
        #: currently executing on that thread (see :meth:`answer`).
        self._grounding_charge = threading.local()

    # ------------------------------------------------------------------
    # grounding (lazy, cached)
    # ------------------------------------------------------------------
    @property
    def graph(self) -> GroundedCausalGraph:
        """The grounded relational causal graph ``G(Phi_Delta)``.

        Built lazily; loaded from the artifact cache when one is configured
        and holds a grounding for the current (database fingerprint, model
        fingerprint).  If the database has mutated since the last grounding —
        detected via its version token — the stale graph is dropped and the
        program is re-grounded automatically.

        Thread-safe: concurrent accessors serialize on the engine's state
        lock, so at most one thread grounds (and that thread alone is charged
        the grounding time); the others observe the finished graph.
        """
        with self._state_lock:
            if self._graph is not None and self.database.version_token() != self._db_token:
                self.invalidate()
            if self._graph is None:
                self._db_token = self.database.version_token()
                started = time.perf_counter()
                ground_span = get_registry().start_span("engine.ground")
                loaded = False
                key = self._grounding_key()
                if key is not None:
                    payload = self.cache.load(key)
                    if payload is not None:
                        try:
                            self._graph, self._values = load_grounding(payload)
                            loaded = True
                        except SerializationError:
                            loaded = False
                if not loaded:
                    self._graph = self.grounder.ground()
                    self._values = self.grounder.grounded_attribute_values(self._graph)
                    self.grounding_runs += 1
                    if key is not None:
                        self.cache.store(key, grounding_payload(self._graph, self._values))
                get_registry().finish_span(ground_span, cached=loaded)
                elapsed = time.perf_counter() - started
                self.grounding_seconds = elapsed
                self._grounding_epoch += 1
                self._charge_grounding(elapsed)
            return self._graph

    @property
    def values(self) -> dict[GroundedAttribute, Any]:
        """Observed + aggregated values of every grounded attribute node."""
        self.graph  # noqa: B018 - force grounding
        with self._state_lock:
            assert self._values is not None
            return self._values

    def invalidate(self) -> None:
        """Drop the cached grounded graph and rebind to the database.

        Called automatically when the database's version token moves (every
        insert and table addition bumps it), so a mutated database can never
        silently answer queries from a stale grounding.  Rebinding also
        rebuilds the bound instance, whose per-attribute value indexes and
        unit lists are caches over the same data.
        """
        with self._state_lock:
            self._graph = None
            self._values = None
            self._db_token = None
            self.instance = self.schema.bind(self.database)
            self.grounder = Grounder(self.model, self.instance, query_backend=self.backend)

    # ------------------------------------------------------------------
    # per-answer grounding attribution
    # ------------------------------------------------------------------
    def _charge_grounding(self, seconds: float) -> None:
        """Charge grounding seconds to the answer running on this thread."""
        charge = self._grounding_charge
        charge.seconds = getattr(charge, "seconds", 0.0) + seconds

    def _reset_grounding_charge(self) -> float:
        """Zero this thread's grounding charge, returning the previous value."""
        previous = getattr(self._grounding_charge, "seconds", 0.0)
        self._grounding_charge.seconds = 0.0
        return previous

    def _grounding_charged(self) -> float:
        return getattr(self._grounding_charge, "seconds", 0.0)

    # ------------------------------------------------------------------
    # artifact-cache plumbing
    # ------------------------------------------------------------------
    def _grounding_key(self) -> CacheKey | None:
        """Key of the grounding artifact: (database, program-as-written).

        The artifact stored under this key may include groundings of
        unifying aggregate rules registered before the grounding ran; those
        extra nodes are pure leaves (aggregate heads only receive edges), so
        they are harmless to sessions that never ask for them, and
        :meth:`_apply_pending_aggregates` splices any rule a session *does*
        need on top of whatever was loaded (idempotently).
        """
        if self.cache is None:
            return None
        return CacheKey(
            database=database_fingerprint(self.database),
            program=self._program_fingerprint,
            kind="grounding",
        )

    def _unit_table_key(
        self, query: CausalQuery, embedding: Any, backend: str, response_attribute: str
    ) -> CacheKey | None:
        if self.cache is None:
            return None
        resolution: list[Any] = [response_attribute]
        derived = self.model.derived_attributes.get(response_attribute)
        if derived is not None:
            resolution.append(derived)
        return CacheKey(
            database=database_fingerprint(self.database),
            program=self._program_fingerprint,
            kind="unit_table",
            detail=query_fingerprint(query, embedding, backend, resolution),
        )

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Per-kind hit/miss/store counters of the configured cache (empty
        mapping when the engine runs uncached)."""
        return self.cache.stats.summary() if self.cache is not None else {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def answer(
        self,
        query: str | CausalQuery,
        estimator: str | None = None,
        embedding: str | None = None,
        bootstrap: int = 0,
        seed: int = 0,
        backend: str | None = None,
        _scratch: BatchScratch | None = None,
    ) -> QueryAnswer:
        """Answer a causal query; returns effects, naive contrasts and timings.

        ``backend`` overrides the engine's unit-table backend for this query
        (``"rows"`` or ``"columnar"``); both produce identical answers.

        The reported ``grounding_seconds`` is the grounding work this call
        actually performed: 0.0 when the grounded graph already existed (or
        the answer came straight from a cached unit table), the full
        grounding (or cache-load) time when this call triggered it.

        Safe to call concurrently from multiple threads; ``_scratch`` is the
        batch memo :meth:`answer_all` threads through its workers.
        """
        if isinstance(query, str):
            query = parse_query(query)
        estimator = estimator or self.default_estimator
        embedding = embedding or self.default_embedding

        self._reset_grounding_charge()
        if self.cache is None:
            # Force grounding so its time is not charged to the unit table.
            # With a cache configured, grounding stays lazy: a unit-table
            # cache hit answers the query without touching the graph at all.
            self.graph  # noqa: B018
        charged_before_build = self._grounding_charged()
        started = time.perf_counter()
        unit_table, peers = self._build_unit_table(
            query, embedding, backend=backend, scratch=_scratch
        )
        unit_table_seconds = time.perf_counter() - started
        charged_during_build = self._grounding_charged() - charged_before_build
        if charged_during_build > 0.0:
            # Grounding (or a cache load of it) ran lazily inside the build;
            # keep the reported timings disjoint.
            unit_table_seconds = max(0.0, unit_table_seconds - charged_during_build)

        started = time.perf_counter()
        result = self._estimate_result(query, unit_table, estimator, bootstrap, seed)
        estimation_seconds = time.perf_counter() - started

        return QueryAnswer(
            query=query,
            result=result,
            unit_table_summary=unit_table.summary(),
            unit_table_seconds=unit_table_seconds,
            estimation_seconds=estimation_seconds,
            grounding_seconds=self._grounding_charged(),
        )

    def unit_table(
        self,
        query: str | CausalQuery,
        embedding: str | None = None,
        backend: str | None = None,
    ) -> UnitTable:
        """Build (only) the unit table for a query — useful for inspection and
        for the Table 2 runtime benchmark."""
        if isinstance(query, str):
            query = parse_query(query)
        table, _ = self._build_unit_table(
            query, embedding or self.default_embedding, backend=backend
        )
        return table

    def answer_all(
        self,
        queries: dict[str, str | CausalQuery] | list[str | CausalQuery],
        estimator: str | None = None,
        embedding: str | None = None,
        bootstrap: int = 0,
        seed: int = 0,
        backend: str | None = None,
        jobs: int | None = 1,
        executor: str = "thread",
        shards: int | None = None,
    ) -> dict[str, QueryAnswer]:
        """Answer several queries, returning answers keyed by name (or index).

        Forwards every option :meth:`answer` accepts, so a batch is always
        answer-for-answer identical to issuing the same queries serially with
        the same options.

        ``jobs`` selects the execution strategy.  ``jobs=1`` (the default) is
        the plain serial loop.  ``jobs>1`` (or ``None`` for one job per CPU)
        runs a concurrent batch executor: the program is grounded at most
        once — up front when the engine is uncached; lazily (or not at all,
        when every query hits a cached unit table) with an artifact cache —
        a thread pool overlaps the per-query work, and a batch-scoped
        scratch shares the graph-walk intermediates (relational peers,
        covariate collection) between queries over the same (treatment,
        response) attribute pair.
        Answers are bit-identical to the serial loop either way; only the
        per-answer timing fields reflect the shared work.  ``jobs=1``
        deliberately keeps the exact legacy serial behavior (no sharing, no
        threads); ``jobs>1`` is worthwhile even on a single core because the
        graph-walk sharing alone beats the serial loop on workloads with
        repeated attribute pairs.

        ``executor`` selects the worker kind.  ``"thread"`` (the default) is
        the PR 3 thread pool described above.  ``"process"`` runs the sharded
        process-pool executor (``docs/sharding.md``): the grounded graph and
        the database tables are published once through the artifact cache
        (a private temporary cache when the engine runs uncached), worker
        *processes* memory-map that shared state, and each query's
        graph-walk/collection phase is split into ``shards`` contiguous
        unit-range shards (default: one per job) whose partial collections
        merge back in the dispatching process.  Because the merge is pure
        concatenation, process-sharded answers are bit-identical to serial
        ones — but the pure-Python hot loops now overlap across cores
        instead of serializing on the GIL.  A worker process that dies (or
        raises) fails the batch with a :class:`QueryError`; the batch never
        hangs.
        """
        if isinstance(queries, dict):
            items = list(queries.items())
        else:
            items = [(str(index), query) for index, query in enumerate(queries)]
        # Parse up front so a syntax error surfaces immediately (and once),
        # not from inside a worker thread.
        parsed = [
            (name, parse_query(query) if isinstance(query, str) else query)
            for name, query in items
        ]
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise QueryError(f"jobs must be a positive integer, got {jobs!r}")
        if executor not in ("thread", "process"):
            raise QueryError(
                f"unknown executor {executor!r}; expected 'thread' or 'process'"
            )
        if shards is not None and shards < 1:
            raise QueryError(f"shards must be a positive integer, got {shards!r}")
        options: dict[str, Any] = {
            "estimator": estimator,
            "embedding": embedding,
            "bootstrap": bootstrap,
            "seed": seed,
            "backend": backend,
        }
        if executor == "process":
            from repro.carl.shard import answer_all_process

            # `shards or jobs` would silently turn an (invalid) explicit
            # shards=0 into jobs if it ever slipped past the validation
            # above; spell the default out instead.
            return answer_all_process(
                self, parsed, options, jobs=jobs,
                shards=jobs if shards is None else shards,
            )
        if shards is not None:
            raise QueryError("shards requires executor='process'")
        if jobs == 1 or len(parsed) <= 1:
            return {name: self.answer(query, **options) for name, query in parsed}

        if self.cache is None:
            # Ground once before any worker starts: no query is then charged
            # for shared grounding.  With a cache configured, grounding stays
            # lazy (and lock-guarded) exactly as in a serial run — a batch
            # whose every query hits a cached unit table must keep the PR 2
            # guarantee of never touching the graph at all.
            self._reset_grounding_charge()
            self.graph  # noqa: B018
        scratch = BatchScratch()
        with ThreadPoolExecutor(
            max_workers=min(jobs, len(parsed)), thread_name_prefix="carl-answer"
        ) as pool:
            futures = [
                (name, pool.submit(self.answer, query, _scratch=scratch, **options))
                for name, query in parsed
            ]
            try:
                return {name: future.result() for name, future in futures}
            except BaseException:
                # Fail fast: drop queries that have not started yet instead
                # of building their unit tables just to discard them (threads
                # already running still finish — they cannot be interrupted).
                for _, future in futures:
                    future.cancel()
                raise

    def answer_iter(
        self,
        queries: dict[str, str | CausalQuery] | list[str | CausalQuery],
        estimator: str | None = None,
        embedding: str | None = None,
        bootstrap: int = 0,
        seed: int = 0,
        backend: str | None = None,
        jobs: int | None = 1,
        executor: str = "thread",
        shards: int | None = None,
        retries: int = 2,
        timeout: float | None = None,
        hang_timeout: float | None = DEFAULT_HANG_TIMEOUT,
    ):
        """Answer queries incrementally: yield each answer as it completes.

        The streaming counterpart of :meth:`answer_all`
        (``docs/service.md``): yields ``(key, QueryAnswer | QueryError)``
        pairs in *completion order* — ``key`` is the dict name or list
        position — so an analyst watching a long sweep sees the first
        answer after roughly ``1/len(queries)`` of the batch's wall time
        instead of at the end.  A failing query yields a
        :class:`QueryError` for its key alone; every other query streams
        on.  Each completed answer is bit-identical to the serial
        :meth:`answer` of the same query with the same options.

        ``executor="process"`` runs the shard scheduler: worker faults are
        retried on other workers up to ``retries`` times per task, and
        shard partials are reused from the artifact cache (a warm re-sweep
        performs zero collection work).  ``timeout`` bounds each query's
        wall time; an expired query yields a timeout ``QueryError``.
        ``hang_timeout`` bounds one task's time on one worker: a worker
        over it is killed and replaced, and the task requeues against the
        retry budget (``None`` disables hang detection).  For full control
        (incremental submission, cancellation, per-query options) use
        :meth:`open_session` directly.
        """
        from repro.service.session import answer_iter as _answer_iter

        return _answer_iter(
            self,
            queries,
            estimator=estimator,
            embedding=embedding,
            bootstrap=bootstrap,
            seed=seed,
            backend=backend,
            jobs=jobs,
            executor=executor,
            shards=shards,
            retries=retries,
            timeout=timeout,
            hang_timeout=hang_timeout,
        )

    def open_session(
        self,
        jobs: int | None = 1,
        executor: str = "thread",
        shards: int | None = None,
        retries: int = 2,
        estimator: str | None = None,
        embedding: str | None = None,
        bootstrap: int = 0,
        seed: int = 0,
        backend: str | None = None,
        max_pending: int | None = None,
        submit_timeout: float | None = None,
        hang_timeout: float | None = DEFAULT_HANG_TIMEOUT,
    ):
        """Open a streaming :class:`~repro.service.session.QuerySession`.

        The futures-style surface of the query service: ``submit()`` /
        ``as_completed()`` / ``result()`` / ``cancel()`` with per-query
        timeouts and options.  ``max_pending`` bounds the undelivered
        backlog (``submit`` raises
        :class:`~repro.service.session.QueueFullError` beyond it, after
        blocking up to ``submit_timeout`` seconds when set).  Use as a
        context manager; see ``docs/service.md``.
        """
        from repro.service.session import QuerySession

        return QuerySession(
            self,
            jobs=jobs,
            executor=executor,
            shards=shards,
            retries=retries,
            estimator=estimator,
            embedding=embedding,
            bootstrap=bootstrap,
            seed=seed,
            backend=backend,
            max_pending=max_pending,
            submit_timeout=submit_timeout,
            hang_timeout=hang_timeout,
        )

    def diagnostics(
        self,
        query: str | CausalQuery,
        embedding: str | None = None,
        backend: str | None = None,
    ):
        """Covariate-balance and overlap diagnostics for a query's unit table.

        Returns a :class:`repro.inference.diagnostics.BalanceReport` over the
        adjustment features (embedded covariates + peer-treatment embedding).
        ``backend`` overrides the engine's unit-table backend for this query,
        exactly as it does for :meth:`answer` and :meth:`unit_table`.
        """
        from repro.inference.diagnostics import covariate_balance

        if isinstance(query, str):
            query = parse_query(query)
        unit_table, _ = self._build_unit_table(
            query, embedding or self.default_embedding, backend=backend
        )
        return covariate_balance(
            unit_table.treatment,
            unit_table.adjustment_features(),
            covariate_names=[*unit_table.peer_columns, *unit_table.covariate_columns],
        )

    def conditional_effects(
        self,
        query: str | CausalQuery,
        embedding: str | None = None,
        backend: str | None = None,
    ) -> np.ndarray:
        """Per-unit conditional treatment effects (CATE) under the outcome model.

        Used by the Figure 8 / Figure 10 benchmarks: for every unit, the
        model-predicted contrast between own-treatment 1 and 0 holding the
        unit's peers and covariates at their observed values.

        ``backend`` overrides the engine's unit-table backend for this query,
        exactly as it does for :meth:`answer` and :meth:`unit_table`.
        """
        if isinstance(query, str):
            query = parse_query(query)
        unit_table, _ = self._build_unit_table(
            query, embedding or self.default_embedding, backend=backend
        )
        model = OutcomeModel().fit(
            unit_table.outcome,
            unit_table.treatment,
            unit_table.peer_treatment,
            unit_table.covariates,
        )
        treated = model.predict(
            np.ones(len(unit_table)), unit_table.peer_treatment, unit_table.covariates
        )
        control = model.predict(
            np.zeros(len(unit_table)), unit_table.peer_treatment, unit_table.covariates
        )
        return treated - control

    # ------------------------------------------------------------------
    # unit-table construction for a query
    # ------------------------------------------------------------------
    def _build_unit_table(
        self,
        query: CausalQuery,
        embedding: str,
        backend: str | None = None,
        scratch: BatchScratch | None = None,
    ) -> tuple[UnitTable, dict[tuple[Any, ...], list[tuple[Any, ...]]]]:
        backend = backend or self.backend
        if backend not in UNIT_TABLE_BACKENDS:
            raise QueryError(
                f"unknown backend {backend!r}; expected one of {UNIT_TABLE_BACKENDS}"
            )
        treatment_attribute, treatment_subject = self._validated_treatment(query)

        # Response resolution may register a unifying aggregate rule on the
        # shared model, so it runs under the state lock.
        with self._state_lock:
            response_attribute = self._resolve_response(query, treatment_subject)
            table_key = self._unit_table_key(query, embedding, backend, response_attribute)

        # Probe the artifact cache after response resolution: the resolved
        # response (and its derived-attribute definition, if unification
        # introduced one) is part of the key, so differently-unified
        # requests never alias — while identical requests key identically
        # regardless of what else the session answered before.  The probe
        # itself is lock-free: artifact reads are atomic snapshots.
        if table_key is not None:
            payload = self.cache.load(table_key)
            if payload is not None:
                try:
                    return load_unit_table(payload), {}
                except SerializationError:
                    pass

        # binarize=None lets the builder fall back to the default binarizer
        # itself — and, on the columnar backend, take the vectorized
        # bulk-binarization path instead of a per-value callable.
        binarize = None
        if query.treatment_threshold is not None:
            threshold = query.treatment_threshold
            binarize = lambda value: 1.0 if threshold.evaluate(value) else 0.0  # noqa: E731

        inputs: UnitTableInputs | None = None
        with self._state_lock:
            self.graph  # noqa: B018 - ground before any epoch-keyed memo lookup
            self._apply_pending_aggregates()
            # A batch can share the graph-walk phase between queries over the
            # same (treatment, response) pair when the WHERE clause is trivial
            # (the collected inputs are then independent of the query's
            # threshold, embedding and estimator).
            shareable = (
                scratch is not None and backend == "columnar" and query.condition.is_trivial
            )
            if shareable:
                memo_key = (
                    "unit-table-inputs",
                    treatment_attribute,
                    response_attribute,
                    self._grounding_epoch,
                )
                peers, inputs = scratch.get_or_build(
                    memo_key,
                    lambda: self._collect_inputs(
                        query, treatment_attribute, response_attribute
                    ),
                )
            elif backend == "columnar":
                peers, inputs = self._collect_inputs(
                    query, treatment_attribute, response_attribute
                )
            else:
                # The rows backend (the reference transcription of
                # Algorithm 1) interleaves graph walks with assembly, so it
                # builds entirely under the lock; it is pure Python and would
                # serialize on the GIL anyway.
                values, units, peers = self._prepare_query_state(
                    query, treatment_attribute, response_attribute
                )
                table = build_unit_table(
                    graph=self.graph,
                    values=values,
                    treatment_attribute=treatment_attribute,
                    response_attribute=response_attribute,
                    units=units,
                    peers=peers,
                    is_observed=self.model.is_observed,
                    embedding=embedding,
                    binarize=binarize,
                    backend=backend,
                )
        if inputs is not None:
            # The numpy-dominated phase (binarization, embeddings, assembly)
            # runs outside the state lock so concurrent builds overlap.
            table = materialize_unit_table(inputs, embedding=embedding, binarize=binarize)
        if table_key is not None:
            self.cache.store(table_key, unit_table_payload(table))
        return table, peers

    def _collect_inputs(
        self, query: CausalQuery, treatment_attribute: str, response_attribute: str
    ) -> tuple[dict[tuple[Any, ...], list[tuple[Any, ...]]], UnitTableInputs]:
        """Graph-walk phase of the columnar build (state lock must be held)."""
        values, units, peers = self._prepare_query_state(
            query, treatment_attribute, response_attribute
        )
        inputs = collect_unit_table_inputs(
            self.graph,
            values,
            treatment_attribute,
            response_attribute,
            units,
            peers,
            self.model.is_observed,
        )
        return peers, inputs

    def _validated_treatment(self, query: CausalQuery) -> tuple[str, str]:
        """The query's treatment attribute and its subject predicate, validated."""
        treatment_attribute = query.treatment.name
        if not self.schema.has_attribute(treatment_attribute):
            raise QueryError(f"unknown treatment attribute {treatment_attribute!r}")
        if not self.schema.is_observed(treatment_attribute):
            raise QueryError(
                f"treatment attribute {treatment_attribute!r} is latent; it cannot be used "
                "as a treatment"
            )
        return treatment_attribute, self.schema.subject_of(treatment_attribute)

    def collect_shard_inputs(
        self,
        query: str | CausalQuery,
        start: int,
        stop: int,
        expected_units: int | None = None,
    ) -> UnitTableInputs:
        """One contiguous unit-range shard ``[start, stop)`` of a query's
        columnar collection phase (``docs/sharding.md``).

        This is the task a process-pool shard worker executes: the unit list
        is derived deterministically from the (shared) grounding and
        database, sliced by position, and only the slice is walked — peer
        *membership* still spans the full unit list, so a unit's peers are
        exactly what the unsharded collection would find.  Concatenating the
        collections of consecutive ranges (in order) through
        :func:`~repro.carl.unit_table.merge_unit_table_inputs` reproduces
        the unsharded collection identically.

        ``expected_units`` guards the dispatcher/worker contract: the worker
        recomputes the unit list from shared state rather than shipping it
        across the process boundary, so the length is verified against what
        the dispatcher saw.
        """
        if isinstance(query, str):
            query = parse_query(query)
        treatment_attribute, treatment_subject = self._validated_treatment(query)
        with self._state_lock:
            response_attribute = self._resolve_response(query, treatment_subject)
            self.graph  # noqa: B018 - ground (or cache-load) before walking
            self._apply_pending_aggregates()
            # snapshot=False: a shard worker is single-threaded, so the
            # collection can read the engine's values mapping in place
            # instead of copying ~the whole grounding per task.
            values, units = self._restricted_units(
                query, treatment_attribute, response_attribute, snapshot=False
            )
            if expected_units is not None and len(units) != expected_units:
                raise QueryError(
                    f"shard worker derived {len(units)} units for {query!s} but the "
                    f"dispatcher saw {expected_units}; the shared grounding and "
                    "database state are out of sync"
                )
            selected = units[start:stop]
            peers = compute_peers(
                self.graph, treatment_attribute, response_attribute, selected, within=units
            )
            return collect_unit_table_inputs(
                self.graph,
                values,
                treatment_attribute,
                response_attribute,
                selected,
                peers,
                self.model.is_observed,
                allow_empty=True,
            )

    def _prepare_query_state(
        self, query: CausalQuery, treatment_attribute: str, response_attribute: str
    ) -> tuple[
        dict[GroundedAttribute, Any],
        list[tuple[Any, ...]],
        dict[tuple[Any, ...], list[tuple[Any, ...]]],
    ]:
        """Values snapshot, restricted units and peers for one query (state
        lock must be held)."""
        values, units = self._restricted_units(query, treatment_attribute, response_attribute)
        peers = compute_peers(self.graph, treatment_attribute, response_attribute, units)
        return values, units, peers

    def _restricted_units(
        self,
        query: CausalQuery,
        treatment_attribute: str,
        response_attribute: str,
        snapshot: bool = True,
    ) -> tuple[dict[GroundedAttribute, Any], list[tuple[Any, ...]]]:
        """Values snapshot and restricted unit list for one query (state lock
        must be held).  Deterministic in (database, program, query), which is
        what lets shard workers re-derive the same unit list positionally.

        ``snapshot=False`` returns the engine's live values mapping instead
        of a copy — only safe for single-threaded callers (shard workers):
        the thread executor needs the copy because a concurrent query's
        aggregate splice mutates the shared mapping in place.
        """
        values = dict(self.values) if snapshot else self.values

        # Subject of the *base* response attribute: restrictions on that entity
        # (e.g. "only submissions at single-blind venues") are applied inside
        # the aggregation; restrictions on the treated entity restrict units.
        if self.model.is_derived(response_attribute):
            base_response_subject = self.schema.subject_of(
                self.model.derived_attributes[response_attribute].base
            )
        else:
            base_response_subject = self.schema.subject_of(response_attribute)

        treatment_subject = self.schema.subject_of(treatment_attribute)
        allowed_response, allowed_units = self._query_restrictions(
            query, treatment_subject, base_response_subject
        )

        units = list(self.instance.units(treatment_attribute))
        if allowed_response is not None and self.model.is_derived(response_attribute):
            values = self._restrict_aggregated_response(
                response_attribute, values, allowed_response
            )
        elif allowed_response is not None:
            units = [unit for unit in units if unit in allowed_response]
        if allowed_units is not None:
            units = [unit for unit in units if unit in allowed_units]
        if not units:
            raise QueryError("the query condition excludes every unit")
        return values, units

    def _resolve_response(self, query: CausalQuery, treatment_subject: str) -> str:
        """Resolve (and if needed create) the response attribute over the treated units.

        Implements the unification of Section 4.3: when the response lives on
        a different predicate than the treatment, an aggregated response
        attribute is introduced along a relational path.
        """
        requested = query.response.name

        # Already-known attribute (declared or derived) on the treated units.
        if self.model.is_derived(requested):
            if self.model.subject_of(requested) == treatment_subject:
                return requested
            base = self.model.derived_attributes[requested].base
            aggregate = self.model.derived_attributes[requested].aggregate
            return self._ensure_unifying_aggregate(base, treatment_subject, aggregate)

        if self.schema.has_attribute(requested):
            if self.schema.subject_of(requested) == treatment_subject:
                return requested
            if not self.schema.is_observed(requested):
                raise QueryError(f"response attribute {requested!r} is latent")
            return self._ensure_unifying_aggregate(requested, treatment_subject, "AVG")

        # ``AGG_Base`` style response that is not declared: auto-derive it.
        prefix, _, base = requested.partition("_")
        if base and prefix.upper() in AGGREGATES and self.schema.has_attribute(base):
            return self._ensure_unifying_aggregate(base, treatment_subject, prefix.upper())

        raise QueryError(f"unknown response attribute {requested!r}")

    def _ensure_unifying_aggregate(  # guarded-by: _state_lock
        self, base_attribute: str, treatment_subject: str, aggregate: str
    ) -> str:
        """Register (once) the aggregate rule that unifies response and treated units."""
        if not self.schema.is_observed(base_attribute):
            raise QueryError(f"response attribute {base_attribute!r} is latent")
        if self.schema.subject_of(base_attribute) == treatment_subject:
            return base_attribute

        desired = f"{aggregate}_{base_attribute}"
        existing = self.model.derived_attributes.get(desired)
        if existing is not None:
            if existing.subject == treatment_subject and existing.base == base_attribute:
                return desired
            desired = f"{aggregate}_{base_attribute}__{treatment_subject}"
            existing = self.model.derived_attributes.get(desired)
            if existing is not None:
                return desired

        rule = build_unifying_aggregate_rule(
            self.schema, base_attribute, treatment_subject, aggregate=aggregate
        )
        if rule.head.name != desired:
            rule = type(rule)(
                aggregate=rule.aggregate,
                head=type(rule.head)(name=desired, terms=rule.head.terms),
                body=rule.body,
                condition=rule.condition,
            )
        registered = self.model.add_aggregate_rule(rule)
        self._pending_aggregates.append(registered)
        return desired

    def _apply_pending_aggregates(self) -> None:  # guarded-by: _state_lock
        """Ground rules registered by response unification and splice them in.

        Deferred from :meth:`_ensure_unifying_aggregate` so a unit-table
        cache hit answers without grounding anything.  The extension is
        applied unconditionally: a graph loaded from the (program-keyed)
        cache may or may not already contain these groundings, and splicing
        them again is idempotent — node/edge insertion is set-based and the
        aggregate values recompute to the same result.

        Callers must hold the state lock: splicing mutates the shared graph
        and values in place.
        """
        if not self._pending_aggregates:
            return
        pending, self._pending_aggregates = self._pending_aggregates, []
        self.graph  # noqa: B018 - load or ground before splicing
        for rule in pending:
            self._extend_graph_with_aggregate(rule)

    def _extend_graph_with_aggregate(self, rule: Any) -> None:
        """Ground one new aggregate rule and splice it into the cached graph."""
        graph = self.graph
        values = self.values
        for grounded_rule in self.grounder.ground_aggregate_rule(rule):
            graph.add_grounded_rule(grounded_rule, aggregate=rule.aggregate)
            parent_values = [
                values[parent]
                for parent in graph.parent_nodes(grounded_rule.head)
                if parent in values
            ]
            values[grounded_rule.head] = (
                apply_aggregate(rule.aggregate, parent_values) if parent_values else None
            )

    # ------------------------------------------------------------------
    # query conditions (unit restrictions)
    # ------------------------------------------------------------------
    def _query_restrictions(
        self,
        query: CausalQuery,
        treatment_subject: str,
        base_response_subject: str,
    ) -> tuple[set[tuple[Any, ...]] | None, set[tuple[Any, ...]] | None]:
        """Unit restrictions implied by the query's WHERE clause.

        Returns ``(allowed base-response keys, allowed treated-unit keys)``.
        A condition variable restricts the base response (e.g. only
        submissions to single-blind venues count towards an author's average
        score) when it is bound to the base response entity, and restricts
        the treated units when it is bound to the treatment entity.
        """
        if query.condition.is_trivial:
            return None, None
        bindings = self.grounder.condition_bindings(query.condition)

        variable_entities: dict[str, set[str]] = {}
        for atom in query.condition.atoms:
            info = self.schema.predicate(atom.predicate)
            for position, term in enumerate(atom.terms):
                if not isinstance(term, Variable):
                    continue
                entity = info.name if info.is_entity else info.referenced_entities[position]
                variable_entities.setdefault(term.name, set()).add(entity)

        def allowed_keys(subject: str) -> set[tuple[Any, ...]] | None:
            names = [name for name, entities in variable_entities.items() if subject in entities]
            if not names:
                return None
            name = names[0]
            return {(binding[name],) for binding in bindings}

        allowed_response = (
            allowed_keys(base_response_subject)
            if base_response_subject != treatment_subject
            else None
        )
        allowed_units = allowed_keys(treatment_subject)
        return allowed_response, allowed_units

    def _restrict_aggregated_response(
        self,
        response_attribute: str,
        values: dict[GroundedAttribute, Any],
        allowed_response: set[tuple[Any, ...]],
    ) -> dict[GroundedAttribute, Any]:
        """Recompute aggregated responses using only allowed base-response units.

        Example: ``Score[S] <= Prestige[A] ? WHERE Submitted(S, C), Blind[C] = "single"``
        unifies Score onto authors via AVG, but only submissions to
        single-blind venues may contribute to each author's average.
        """
        if not self.model.is_derived(response_attribute):
            return values
        derived = self.model.derived_attributes[response_attribute]
        graph = self.graph
        updated = dict(values)
        for node in graph.nodes_of(response_attribute):
            parents = [
                parent
                for parent in graph.parent_nodes(node)
                if parent.attribute == derived.base and parent.key in allowed_response
            ]
            parent_values = [updated[parent] for parent in parents if parent in updated]
            updated[node] = (
                apply_aggregate(derived.aggregate, parent_values) if parent_values else None
            )
        return updated

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def _estimate_result(
        self,
        query: CausalQuery,
        unit_table: UnitTable,
        estimator: str,
        bootstrap: int = 0,
        seed: int = 0,
    ) -> ATEResult | EffectsResult:
        """Estimate a query's effect family from its (already built) unit table."""
        if query.is_peer_query:
            return self._estimate_effects(query.peer_condition, unit_table, estimator)
        return self._estimate_ate(unit_table, estimator, bootstrap=bootstrap, seed=seed)

    def _estimate_ate(
        self, unit_table: UnitTable, estimator: str, bootstrap: int = 0, seed: int = 0
    ) -> ATEResult:
        naive = naive_difference(unit_table.treatment, unit_table.outcome)
        correlation = pearson_correlation(unit_table.treatment, unit_table.outcome)

        if estimator == "regression":
            ate = self._regression_ate(unit_table)
            details: dict[str, Any] = {"method": "outcome model over own + peer treatment"}
        else:
            estimate = estimate_ate_from_unit_table(unit_table, estimator=estimator)
            ate = estimate.ate
            details = dict(estimate.details)

        confidence_interval = None
        if bootstrap > 0:
            features = unit_table.adjustment_features()

            def statistic(outcome: np.ndarray, treatment: np.ndarray, covariates: np.ndarray) -> float:
                if estimator == "regression":
                    return estimate_ate(outcome, treatment, covariates, estimator="regression").ate
                return estimate_ate(outcome, treatment, covariates, estimator=estimator).ate

            result = bootstrap_statistic(
                statistic,
                [unit_table.outcome, unit_table.treatment, features],
                n_bootstrap=bootstrap,
                seed=seed,
            )
            confidence_interval = (result.lower, result.upper)
            details["bootstrap_se"] = result.standard_error

        treated_mask = unit_table.treatment > 0.5
        return ATEResult(
            ate=ate,
            naive_difference=naive["difference"],
            treated_mean=naive["treated_mean"],
            control_mean=naive["control_mean"],
            correlation=correlation,
            n_units=len(unit_table),
            n_treated=int(treated_mask.sum()),
            n_control=int((~treated_mask).sum()),
            estimator=estimator,
            confidence_interval=confidence_interval,
            details=details,
        )

    def _regression_ate(self, unit_table: UnitTable) -> float:
        """ATE as AOE(all treated ; none treated) under the outcome model (Eq. 23)."""
        model = OutcomeModel().fit(
            unit_table.outcome,
            unit_table.treatment,
            unit_table.peer_treatment,
            unit_table.covariates,
        )
        all_treated = model.predict_intervention(
            1.0, 1.0, unit_table.peer_treatment, unit_table.peer_counts, unit_table.covariates
        )
        none_treated = model.predict_intervention(
            0.0, 0.0, unit_table.peer_treatment, unit_table.peer_counts, unit_table.covariates
        )
        return float(np.mean(all_treated - none_treated))

    def _estimate_effects(
        self,
        condition: PeerCondition | None,
        unit_table: UnitTable,
        estimator: str,
    ) -> EffectsResult:
        """Isolated / relational / overall effects under the outcome model (Section 4.4.3)."""
        condition = condition or PeerCondition(kind="ALL")
        regression = "ridge" if estimator == "ridge" else "ols"
        model = OutcomeModel(regression=regression).fit(
            unit_table.outcome,
            unit_table.treatment,
            unit_table.peer_treatment,
            unit_table.covariates,
        )

        peer_counts = unit_table.peer_counts
        treated_fraction = np.asarray(
            [condition.treated_fraction(int(count)) for count in peer_counts], dtype=float
        )
        control_fraction = np.zeros(len(unit_table))

        mu_1_treatedpeers = model.predict_intervention(
            1.0, treated_fraction, unit_table.peer_treatment, peer_counts, unit_table.covariates
        )
        mu_0_treatedpeers = model.predict_intervention(
            0.0, treated_fraction, unit_table.peer_treatment, peer_counts, unit_table.covariates
        )
        mu_0_controlpeers = model.predict_intervention(
            0.0, control_fraction, unit_table.peer_treatment, peer_counts, unit_table.covariates
        )

        aie = float(np.mean(mu_1_treatedpeers - mu_0_treatedpeers))
        are = float(np.mean(mu_0_treatedpeers - mu_0_controlpeers))
        aoe = float(np.mean(mu_1_treatedpeers - mu_0_controlpeers))

        naive = naive_difference(unit_table.treatment, unit_table.outcome)
        correlation = pearson_correlation(unit_table.treatment, unit_table.outcome)
        return EffectsResult(
            aie=aie,
            are=are,
            aoe=aoe,
            peer_condition=condition,
            correlation=correlation,
            naive_difference=naive["difference"],
            n_units=len(unit_table),
            mean_peer_count=float(peer_counts.mean()) if len(unit_table) else 0.0,
            estimator=estimator,
            details={"coefficients": model.coefficients},
        )
